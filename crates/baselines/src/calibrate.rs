//! Platform calibration for software baselines.
//!
//! The paper times MKL on a 6-core Core-i7 5930K, cuSPARSE/CUSP on a
//! TITAN Xp, and Armadillo on a 4-core ARM A53. We run the same
//! *algorithm classes* (Gustavson / hash / ESC / naive inner product) in
//! Rust on the build host, then scale measured throughput by a constant
//! per platform class so the absolute axis lands in the paper's regime.
//!
//! The constants are deliberately simple and documented — they do not
//! affect the *shape* of any comparison across matrices (which is
//! algorithmic), only the axis scale; EXPERIMENTS.md reports both raw and
//! calibrated numbers.

use serde::{Deserialize, Serialize};

/// The baseline platform classes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Intel MKL on a 6-core desktop CPU → Gustavson row-wise algorithm.
    Mkl,
    /// NVIDIA cuSPARSE on a TITAN Xp → row-parallel hash-table algorithm.
    CuSparse,
    /// CUSP on a TITAN Xp → ESC (expand–sort–compress) algorithm.
    Cusp,
    /// Armadillo on a 4-core ARM A53 → naive inner-product algorithm.
    Armadillo,
}

impl Platform {
    /// All platforms, in the paper's reporting order.
    pub const ALL: [Platform; 4] = [
        Platform::Mkl,
        Platform::CuSparse,
        Platform::Cusp,
        Platform::Armadillo,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Platform::Mkl => "MKL",
            Platform::CuSparse => "cuSPARSE",
            Platform::Cusp => "CUSP",
            Platform::Armadillo => "Armadillo",
        }
    }

    /// Throughput multiplier from one single-threaded host core to the
    /// paper's platform:
    ///
    /// * MKL: 6 cores with imperfect SpGEMM scaling → ×4,
    /// * cuSPARSE / CUSP: a TITAN Xp sustains roughly an order of
    ///   magnitude over one desktop core on irregular SpGEMM; ×10 keeps
    ///   the GPU libraries in MKL's class, as the paper measures (its
    ///   geomean speedups over MKL/cuSPARSE/CUSP are 19×/18×/17× — all
    ///   the same magnitude),
    /// * Armadillo: a mobile A53 core is several times slower than a
    ///   desktop core and the library is single-threaded → ×0.2; the
    ///   paper measures it ~68× below MKL (1285× vs 19× under SpArch),
    ///   and our heap-class host kernel is already ~2× below Gustavson.
    pub fn throughput_scale(&self) -> f64 {
        match self {
            Platform::Mkl => 4.0,
            Platform::CuSparse => 10.0,
            Platform::Cusp => 10.0,
            Platform::Armadillo => 0.2,
        }
    }

    /// Published average power draw in watts used for the energy
    /// comparison (paper §III-A measures dynamic power: pcm-power for
    /// MKL, nvidia-smi for the GPU libraries, a power meter for the ARM
    /// board; these are representative dynamic figures for those
    /// platforms running SpGEMM).
    pub fn power_w(&self) -> f64 {
        match self {
            Platform::Mkl => 65.0,
            Platform::CuSparse => 120.0,
            Platform::Cusp => 120.0,
            Platform::Armadillo => 2.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_names() {
        let names: Vec<&str> = Platform::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["MKL", "cuSPARSE", "CUSP", "Armadillo"]);
    }

    #[test]
    fn armadillo_is_slowest_class() {
        for p in Platform::ALL {
            assert!(p.throughput_scale() >= Platform::Armadillo.throughput_scale());
        }
    }

    #[test]
    fn power_ordering_is_sane() {
        assert!(Platform::CuSparse.power_w() > Platform::Mkl.power_w());
        assert!(Platform::Armadillo.power_w() < Platform::Mkl.power_w());
    }
}
