//! Timed software baselines.
//!
//! Runs the algorithm class behind each of the paper's software baselines
//! (see [`crate::calibrate::Platform`]) on the host, measuring wall-clock
//! time of the core SpGEMM only — mirroring the paper's methodology of
//! discarding "memory allocation and transportation time" and timing
//! `mkl_sparse_spmm` / `cusparseDcsrgemm` / `generalized_spgemm` /
//! the overloaded `*` alone.

use crate::calibrate::Platform;
use serde::{Deserialize, Serialize};
use sparch_sparse::{algo, Csr};
use std::time::Instant;

/// Outcome of one timed software run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftwareResult {
    /// Which platform class ran.
    pub platform: Platform,
    /// Host wall-clock seconds of the kernel.
    pub host_seconds: f64,
    /// Raw host GFLOP/s (2 FLOPs per multiply).
    pub host_gflops: f64,
    /// Calibrated GFLOP/s on the paper's platform class
    /// (`host × throughput_scale`).
    pub calibrated_gflops: f64,
    /// Modelled energy on the paper's platform in joules
    /// (`power × calibrated time`).
    pub energy_j: f64,
    /// FLOPs of the task.
    pub flops: u64,
    /// Result non-zeros.
    pub output_nnz: u64,
}

/// Runs the platform's algorithm class on the host and calibrates.
///
/// The result matrix itself is validated in tests and then discarded; only
/// the measurements are returned.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn run_software(platform: Platform, a: &Csr, b: &Csr) -> SoftwareResult {
    let flops = 2 * algo::multiply_flops(a, b);
    let start = Instant::now();
    let result = match platform {
        Platform::Mkl => algo::gustavson(a, b),
        Platform::CuSparse => algo::hash_spgemm(a, b),
        Platform::Cusp => algo::sort_merge(a, b),
        // Armadillo's sparse `*` is an ordered-accumulator algorithm of
        // the heap class — algorithmically sane; the platform (one mobile
        // A53 core) is what makes it slow. Mapping it to the naive inner
        // product would be unfairly pessimistic.
        Platform::Armadillo => algo::heap_spgemm(a, b),
    };
    let host_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let host_gflops = flops as f64 / host_seconds / 1e9;
    let calibrated_gflops = host_gflops * platform.throughput_scale();
    let calibrated_seconds = host_seconds / platform.throughput_scale();
    SoftwareResult {
        platform,
        host_seconds,
        host_gflops,
        calibrated_gflops,
        energy_j: platform.power_w() * calibrated_seconds,
        flops,
        output_nnz: result.nnz() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    #[test]
    fn all_platforms_produce_measurements() {
        let a = gen::uniform_random(80, 80, 400, 1);
        for p in Platform::ALL {
            let r = run_software(p, &a, &a);
            assert!(r.host_seconds > 0.0, "{p:?}");
            assert!(r.host_gflops > 0.0, "{p:?}");
            assert_eq!(r.flops, 2 * algo::multiply_flops(&a, &a));
            assert!(r.output_nnz > 0);
            assert!((r.calibrated_gflops - r.host_gflops * p.throughput_scale()).abs() < 1e-9);
        }
    }

    #[test]
    fn naive_class_does_far_more_work() {
        // Wall-clock comparisons are flaky under parallel test load, so
        // compare the deterministic work counts behind the platform
        // classes instead: the naive inner product performs far more
        // index comparisons than Gustavson performs multiplies.
        let a = gen::rmat_graph500(1024, 8, 4);
        let useful = algo::multiply_flops(&a, &a);
        let (_, stats) = algo::inner_product_stats(&a, &a);
        assert!(
            stats.comparisons > 10 * useful,
            "inner product comparisons {} vs useful multiplies {}",
            stats.comparisons,
            useful
        );
    }

    #[test]
    fn energy_scales_with_time_and_power() {
        let a = gen::uniform_random(60, 60, 300, 2);
        let r = run_software(Platform::Mkl, &a, &a);
        let expected = 65.0 * (r.host_seconds / 4.0);
        assert!((r.energy_j - expected).abs() < expected * 1e-6);
    }
}
