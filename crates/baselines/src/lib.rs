//! Baselines for the SpArch reproduction.
//!
//! The paper compares against five systems (§III-A):
//!
//! * **OuterSPACE** (Pal et al., HPCA'18) — the prior-state-of-the-art
//!   outer-product ASIC; modelled analytically in [`outerspace`] from its
//!   published dataflow and bandwidth utilization,
//! * **Intel MKL** (desktop CPU), **cuSPARSE** and **CUSP** (GPU), and
//!   **ARM Armadillo** (mobile CPU) — software libraries whose *algorithm
//!   classes* we implement in `sparch-sparse::algo` and time on the host
//!   in [`software`], with platform calibration constants documented in
//!   [`calibrate`].
//!
//! The substitution rationale (DESIGN.md §5): speedup *shapes* across
//! matrices track the algorithms (hash tables degrade on power-law rows,
//! ESC sorting drowns in intermediate products, naive inner product
//! collapses); the calibration constant only scales the axis to the
//! paper's platform classes.

pub mod calibrate;
pub mod outerspace;
pub mod software;

pub use calibrate::Platform;
pub use outerspace::{OuterSpaceModel, OuterSpaceReport};
pub use software::{run_software, SoftwareResult};
