//! Analytical model of OuterSPACE (Pal et al., HPCA 2018) — the paper's
//! primary comparison point.
//!
//! OuterSPACE executes the outer product in two *separate* phases: the
//! multiply phase writes **every** partial product to DRAM, and the merge
//! phase reads them all back to produce the result. The paper's §III-C
//! model: with `M` multiplications and ≈ `0.5 M` final results, "the
//! memory access is roughly 2.5M" elements — M partial writes, M partial
//! reads, 0.5 M final writes — plus both input matrices once.
//!
//! Published characteristics (Table II): 128 GB/s HBM at 48.3 % bandwidth
//! utilization, 87 mm² at 32 nm, 12.39 W, 4.95 nJ/FLOP (Table III),
//! reaching ≈ 2.5 GFLOP/s on the evaluation suite (10.4 % of its
//! theoretical peak, §I).

use serde::{Deserialize, Serialize};
use sparch_mem::{TrafficCategory, TrafficCounter};
use sparch_sparse::{algo, Csr};

/// The OuterSPACE performance/energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OuterSpaceModel {
    /// DRAM bandwidth in GB/s (shared with SpArch for fairness: 128).
    pub bandwidth_gbs: f64,
    /// Published sustained bandwidth utilization (0.483).
    pub utilization: f64,
    /// Published energy per FLOP in nJ (Table III: 4.95).
    pub nj_per_flop: f64,
    /// Published area in mm² (Table II: 87, at 32 nm).
    pub area_mm2: f64,
    /// Published power in watts (Table II: 12.39).
    pub power_w: f64,
}

impl Default for OuterSpaceModel {
    fn default() -> Self {
        OuterSpaceModel {
            bandwidth_gbs: 128.0,
            utilization: 0.483,
            nj_per_flop: 4.95,
            area_mm2: 87.0,
            power_w: 12.39,
        }
    }
}

/// Modelled outcome of one OuterSPACE run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OuterSpaceReport {
    /// Per-category DRAM traffic.
    pub traffic: TrafficCounter,
    /// Modelled execution time in seconds.
    pub seconds: f64,
    /// Attained GFLOP/s (2 FLOPs per scalar multiply).
    pub gflops: f64,
    /// Scalar multiplications `M`.
    pub multiplies: u64,
    /// FLOPs (`2M`).
    pub flops: u64,
    /// Result non-zeros.
    pub output_nnz: u64,
    /// Modelled energy in joules.
    pub energy_j: f64,
}

impl OuterSpaceModel {
    /// Models `C = A × B` on OuterSPACE.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn run(&self, a: &Csr, b: &Csr) -> OuterSpaceReport {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let multiplies = algo::multiply_flops(a, b);
        let output_nnz = algo::product_nnz(a, b);
        let flops = 2 * multiplies;

        // Multiply phase: inputs once (perfect reuse), all partial
        // products out. Merge phase: all partial products back in, final
        // result out. Partial products are COO (16 B), inputs/outputs CSR
        // (12 B per element + row pointers).
        let mut traffic = TrafficCounter::new();
        traffic.record(TrafficCategory::MatA, a.dram_bytes());
        traffic.record(TrafficCategory::MatB, b.dram_bytes());
        traffic.record(TrafficCategory::PartialWrite, multiplies * 16);
        traffic.record(TrafficCategory::PartialRead, multiplies * 16);
        traffic.record(
            TrafficCategory::FinalWrite,
            output_nnz * 12 + (a.rows() as u64 + 1) * 8,
        );

        // Memory-bound timing at the published sustained utilization.
        let effective_bw = self.bandwidth_gbs * 1e9 * self.utilization;
        let seconds = traffic.total_bytes() as f64 / effective_bw;
        let gflops = if seconds > 0.0 {
            flops as f64 / seconds / 1e9
        } else {
            0.0
        };
        OuterSpaceReport {
            traffic,
            seconds,
            gflops,
            multiplies,
            flops,
            output_nnz,
            energy_j: flops as f64 * self.nj_per_flop * 1e-9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    #[test]
    fn traffic_matches_2_5m_model() {
        // On a task with compression factor ~2 the element traffic is
        // ~2.5M (2M partials at 16B + 0.5M finals at 12B) plus inputs.
        let a = gen::uniform_random(400, 400, 2400, 1);
        let r = OuterSpaceModel::default().run(&a, &a);
        let partial_elems = 2 * r.multiplies;
        assert_eq!(r.traffic.partial_bytes(), partial_elems * 16);
        let expected_min = partial_elems * 16 + r.output_nnz * 12;
        assert!(r.traffic.total_bytes() as f64 > expected_min as f64 * 0.99);
    }

    #[test]
    fn gflops_in_published_ballpark() {
        // The paper quotes ~2.5 GFLOP/s average. Accept the magnitude.
        let a = gen::rmat_graph500(2048, 8, 2);
        let r = OuterSpaceModel::default().run(&a, &a);
        assert!(r.gflops > 0.5 && r.gflops < 8.0, "gflops = {}", r.gflops);
    }

    #[test]
    fn energy_tracks_flops() {
        let a = gen::uniform_random(100, 100, 600, 3);
        let r = OuterSpaceModel::default().run(&a, &a);
        assert!((r.energy_j - r.flops as f64 * 4.95e-9).abs() < 1e-12);
    }

    #[test]
    fn empty_task() {
        let z = Csr::zero(8, 8);
        let r = OuterSpaceModel::default().run(&z, &z);
        assert_eq!(r.multiplies, 0);
        assert_eq!(r.gflops, 0.0);
        assert!(r.traffic.total_bytes() > 0, "row pointers still move");
    }
}
