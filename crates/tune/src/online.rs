//! Online calibration: an EWMA feedback layer over predicted-vs-measured
//! step costs.
//!
//! The serving layer's dispatch model prices each multiply step in
//! abstract work units and multiplies by a per-backend seconds-per-unit
//! table measured once at service start. That table goes stale: the
//! machine's load changes, the traffic's structure drifts away from the
//! startup probes. This module closes the loop — each served step yields
//! one observation `actual_seconds / model_units` (exactly a
//! seconds-per-unit sample for the backend that ran it), an exponentially
//! weighted moving average smooths the samples per slot, and
//! [`OnlineCalibration::fold_into`] writes the smoothed estimates back
//! over the table *between* batches, so every within-batch dispatch
//! decision still sees one frozen table.
//!
//! The layer is index-based — it never names backends — so it layers
//! under any table shaped like "seconds per unit per slot" without a
//! dependency cycle back into the serving crate.

use serde::{Deserialize, Serialize};

/// Per-slot EWMA of observed seconds-per-model-unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineCalibration {
    alpha: f64,
    estimates: Vec<Option<f64>>,
    samples: Vec<u64>,
}

impl OnlineCalibration {
    /// A calibration layer over `slots` table entries with smoothing
    /// factor `alpha` (clamped into `(0, 1]`): each new observation moves
    /// a slot's estimate by `alpha` toward the sample, so `alpha = 1`
    /// always trusts the latest step and small `alpha` averages over a
    /// long horizon. The first observation of a slot seeds its estimate
    /// directly.
    pub fn new(alpha: f64, slots: usize) -> Self {
        OnlineCalibration {
            alpha: if alpha.is_finite() {
                alpha.clamp(f64::MIN_POSITIVE, 1.0)
            } else {
                1.0
            },
            estimates: vec![None; slots],
            samples: vec![0; slots],
        }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of table slots this layer covers.
    pub fn slots(&self) -> usize {
        self.estimates.len()
    }

    /// Feeds one predicted-vs-measured observation for `slot`: a step the
    /// model priced at `model_units` abstract units took
    /// `actual_seconds`. Observations with non-positive or non-finite
    /// units or seconds are ignored (a zero-unit step carries no
    /// per-unit information).
    pub fn observe(&mut self, slot: usize, model_units: f64, actual_seconds: f64) {
        if slot >= self.estimates.len()
            || !(model_units.is_finite() && model_units > 0.0)
            || !(actual_seconds.is_finite() && actual_seconds >= 0.0)
        {
            return;
        }
        let sample = actual_seconds / model_units;
        self.estimates[slot] = Some(match self.estimates[slot] {
            None => sample,
            Some(est) => (1.0 - self.alpha) * est + self.alpha * sample,
        });
        self.samples[slot] += 1;
    }

    /// The current seconds-per-unit estimate for `slot`, if it has ever
    /// been observed.
    pub fn estimate(&self, slot: usize) -> Option<f64> {
        self.estimates.get(slot).copied().flatten()
    }

    /// Observations folded into `slot` so far.
    pub fn samples(&self, slot: usize) -> u64 {
        self.samples.get(slot).copied().unwrap_or(0)
    }

    /// Total observations across all slots.
    pub fn total_samples(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Writes the smoothed estimates over `table`: every slot with at
    /// least one observation is replaced by its EWMA estimate, unobserved
    /// slots keep their prior value. Call between batches — never
    /// mid-batch — so dispatch decisions inside one batch share a frozen
    /// table.
    pub fn fold_into(&self, table: &mut [f64]) {
        for (entry, est) in table.iter_mut().zip(&self.estimates) {
            if let Some(est) = est {
                *entry = *est;
            }
        }
    }

    /// Drops all estimates and sample counts — the companion to a full
    /// recalibration, which replaces the table the estimates were
    /// relative to.
    pub fn reset(&mut self) {
        self.estimates.iter_mut().for_each(|e| *e = None);
        self.samples.iter_mut().for_each(|s| *s = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_seeds_the_estimate() {
        let mut c = OnlineCalibration::new(0.25, 4);
        assert_eq!(c.estimate(1), None);
        c.observe(1, 100.0, 2.0);
        assert_eq!(c.estimate(1), Some(0.02));
        assert_eq!(c.samples(1), 1);
        assert_eq!(c.samples(0), 0);
    }

    #[test]
    fn later_observations_move_by_alpha() {
        let mut c = OnlineCalibration::new(0.5, 1);
        c.observe(0, 1.0, 4.0);
        c.observe(0, 1.0, 8.0);
        // 0.5 * 4 + 0.5 * 8.
        assert_eq!(c.estimate(0), Some(6.0));
        assert_eq!(c.samples(0), 2);
    }

    #[test]
    fn fold_replaces_only_observed_slots() {
        let mut c = OnlineCalibration::new(1.0, 3);
        c.observe(0, 10.0, 1.0);
        c.observe(2, 10.0, 3.0);
        let mut table = vec![7.0, 7.0, 7.0];
        c.fold_into(&mut table);
        assert_eq!(table, vec![0.1, 7.0, 0.3]);
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut c = OnlineCalibration::new(0.5, 2);
        c.observe(0, 0.0, 1.0);
        c.observe(0, -3.0, 1.0);
        c.observe(0, f64::NAN, 1.0);
        c.observe(0, 1.0, f64::INFINITY);
        c.observe(5, 1.0, 1.0); // out of range
        assert_eq!(c.total_samples(), 0);
        assert_eq!(c.estimate(0), None);
    }

    #[test]
    fn alpha_is_clamped_and_reset_clears() {
        let c = OnlineCalibration::new(f64::NAN, 1);
        assert_eq!(c.alpha(), 1.0);
        let c = OnlineCalibration::new(7.0, 1);
        assert_eq!(c.alpha(), 1.0);
        let mut c = OnlineCalibration::new(0.5, 2);
        c.observe(0, 1.0, 1.0);
        c.reset();
        assert_eq!(c.total_samples(), 0);
        assert_eq!(c.estimate(0), None);
        assert_eq!(c.slots(), 2);
    }

    #[test]
    fn serde_round_trips() {
        let mut c = OnlineCalibration::new(0.3, 3);
        c.observe(1, 4.0, 2.0);
        let json = serde_json::to_string(&c).unwrap();
        let back: OnlineCalibration = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
