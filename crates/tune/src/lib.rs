//! Auto-tuning for the SpArch reproduction's streaming and serving
//! layers.
//!
//! SpArch's headline numbers come from picking the right configuration —
//! merge fan-in, partition granularity, buffer split — per matrix (the
//! paper's fig17 design-space sweep). This crate closes that loop in
//! software, with two independent halves:
//!
//! * [`KnobPlanner`] — the *offline* oracle: from a
//!   [`MemoryBudget`](sparch_stream::MemoryBudget), an operand's
//!   column-nnz histogram ([`OperandStats`], one API for in-memory and
//!   on-disk operands) and a thread count, deterministically derive a
//!   full [`StreamConfig`](sparch_stream::StreamConfig) — panel count
//!   from the ROADMAP formula (largest projected partial ≈
//!   budget / merge_ways), fan-in from the Huffman plan's projected round
//!   costs, codec from projected spill volume, balance from column skew.
//!   Exposed as `--panels auto` / `--tune` on `sparch-cli` and as
//!   `ServiceConfig::auto_tune` in `sparch-serve`.
//! * [`OnlineCalibration`] — the *online* feedback layer: an EWMA over
//!   each served step's predicted-vs-measured cost that folds back into
//!   the serving layer's per-backend calibration table between batches,
//!   so a long-lived service tracks the machine it is actually running
//!   on. Index-based, so it has no dependency on the serving crate.
//!
//! Every streaming invariant (bit-identity to `gustavson` at any panel
//! count, budget, fan-in, codec, balance or thread count) holds at any
//! knob setting, so tuning can only ever change *timing*, never results —
//! pinned by `tests/planner_props.rs`.

mod online;
mod planner;

pub use online::OnlineCalibration;
pub use planner::{row_nnz_histogram, BRows, KnobPlanner, OperandStats, Plan};
