//! The deterministic knob planner: from operand structure and a memory
//! budget to a full [`StreamConfig`].
//!
//! The paper's fig17 design-space sweep shows that the right merge fan-in
//! and partition granularity are a function of the matrix; this module is
//! the closed-form version of that sweep. Given `A`'s column-nnz
//! histogram (one stats API for in-memory and on-disk operands — see
//! [`OperandStats`]), `B`'s row fill, and the [`MemoryBudget`], the
//! planner projects every candidate configuration's partial sizes and
//! merge traffic with the same machinery the executor itself uses
//! (`panel_ranges_by_nnz` for the split, the k-ary Huffman plan's
//! internal-node weight for merge traffic) and picks the cheapest — no
//! timing anywhere, so a plan is a pure function of matrix structure and
//! the planned run stays bit-identical to any other configuration.

use serde::{Deserialize, Serialize};
use sparch_core::sched::huffman_plan;
use sparch_sparse::{mm, panel_ranges, panel_ranges_by_nnz, Csr, SparseError};
use sparch_stream::{MemoryBudget, PanelBalance, SpillCodec, StreamConfig};
use std::ops::Range;
use std::path::Path;

/// Structural statistics of one operand, as consumed by the planner:
/// shape, entry count, and the per-column non-zero histogram the
/// nnz-balanced panel splitter works from.
///
/// The two constructors are the "one stats API" for both operand homes:
/// [`OperandStats::from_csr`] reads an in-memory matrix
/// ([`Csr::col_nnz`]), [`OperandStats::scan_file`] streams a Matrix
/// Market file ([`mm::scan_col_nnz`]) without materializing it. The
/// parity test in `tests/stats_parity.rs` pins that both paths produce
/// the same histogram for the same matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperandStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Stored entries.
    pub nnz: u64,
    /// Non-zeros per column (`cols` entries).
    pub col_nnz: Vec<usize>,
}

impl OperandStats {
    /// Stats of an in-memory matrix. `O(nnz)` for the histogram pass.
    pub fn from_csr(m: &Csr) -> Self {
        OperandStats {
            rows: m.rows(),
            cols: m.cols(),
            nnz: m.nnz() as u64,
            col_nnz: m.col_nnz(),
        }
    }

    /// Stats of an on-disk Matrix Market file, via one streaming
    /// histogram pass — the operand is never materialized.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] if the file cannot be read or parsed.
    pub fn scan_file<P: AsRef<Path>>(path: P) -> Result<Self, SparseError> {
        let probe = mm::read_panels(&path, 1)?;
        let (rows, cols, nnz) = (probe.rows(), probe.cols(), probe.declared_nnz() as u64);
        let col_nnz = mm::scan_col_nnz(&path)?;
        Ok(OperandStats {
            rows,
            cols,
            nnz,
            col_nnz,
        })
    }

    /// Column skew: the heaviest column's non-zeros over the mean
    /// (counting empty columns), `1.0` for empty or uniform matrices.
    /// This is what decides [`PanelBalance::Nnz`] vs `Uniform` on a
    /// multi-threaded plan — a skewed histogram concentrates
    /// partial-product mass in a few uniform panels, so the nnz-balanced
    /// splitter pays for itself once there are workers to balance.
    pub fn col_skew(&self) -> f64 {
        let max = self.col_nnz.iter().copied().max().unwrap_or(0);
        if max == 0 || self.cols == 0 {
            return 1.0;
        }
        max as f64 * self.cols as f64 / self.nnz.max(1) as f64
    }
}

/// `B`'s row fill, as the planner consumes it: either the exact
/// per-row histogram (in-memory operands) or the average fill
/// (streamed operands, where only the declared entry count is known
/// without a second file scan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BRows<'a> {
    /// Exact non-zeros per row of `B` (`inner_dim` entries).
    Histogram(&'a [usize]),
    /// Only `B`'s total entry count is known; every row is assumed to
    /// carry the average fill.
    Average {
        /// Stored entries of `B`.
        nnz: u64,
    },
}

/// Non-zeros per row of a CSR matrix — the histogram to pass as
/// [`BRows::Histogram`] for an in-memory right operand. `O(rows)`.
pub fn row_nnz_histogram(m: &Csr) -> Vec<usize> {
    m.row_ptr().windows(2).map(|w| w[1] - w[0]).collect()
}

/// The planner's output: the derived [`StreamConfig`] plus the
/// projections it was chosen from, so callers (and the property tests)
/// can audit the decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// The derived configuration: budget, panel count and balance, merge
    /// fan-in, spill codec. `threads` is pinned to the planner's thread
    /// count; `merge_workers` and `spill_dir` are left at their defaults
    /// for the caller to override.
    pub config: StreamConfig,
    /// Projected bytes of each panel's partial matrix (flops upper
    /// bound × 12 B per entry + the row-pointer array), largest first
    /// panel order preserved.
    pub projected_partial_bytes: Vec<u64>,
    /// The largest entry of [`Plan::projected_partial_bytes`].
    pub projected_largest_partial_bytes: u64,
    /// Sum of [`Plan::projected_partial_bytes`].
    pub projected_total_partial_bytes: u64,
    /// The Huffman plan's internal-node weight (elements) for the chosen
    /// configuration — the paper's proxy for partial-result traffic.
    pub projected_merge_weight: u64,
    /// Projected spilled bytes: the pre-root merge traffic when the
    /// partials do not all fit in the budget, `0` when they do.
    pub projected_spill_bytes: u64,
    /// `A`'s column skew ([`OperandStats::col_skew`]).
    pub col_skew: f64,
    /// Whether the ROADMAP budget formula was achievable: the chosen
    /// split keeps the largest projected partial within
    /// `budget / merge_ways`. When even the finest split cannot (a hub
    /// column alone overflows, or the budget is zero), the planner falls
    /// back to the cheapest projected configuration and reports `false`.
    pub budget_satisfied: bool,
}

/// Derives a full [`StreamConfig`] from operand statistics and a memory
/// budget — the ROADMAP formula ("pick panel count from the memory
/// budget and the `scan_col_nnz` histogram, so the largest partial ≈
/// budget / merge_ways") plus a projected-cost argmin over merge fan-ins.
///
/// Deterministic by construction: the projection uses flops upper bounds
/// and the Huffman plan's weight estimates, never timing, so the same
/// stats and budget always produce the same plan. And because every
/// streaming-pipeline invariant holds at *any* knob setting, a planned
/// run is bit-identical to any fixed configuration — tuning moves
/// timing, never bits.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobPlanner {
    budget: MemoryBudget,
    threads: usize,
    max_panels: usize,
    skew_threshold: f64,
}

/// Merge fan-ins the planner prices. Capped at 16: the snapshot-scale
/// partial counts never reward the paper's full 64-way tree, and a
/// smaller fan-in keeps merge rounds fine-grained for the worker pool.
const WAYS_CANDIDATES: [usize; 4] = [2, 4, 8, 16];

impl KnobPlanner {
    /// A planner for the given budget, single-threaded, with the default
    /// panel cap (256) and skew threshold (2.0).
    pub fn new(budget: MemoryBudget) -> Self {
        KnobPlanner {
            budget,
            threads: 1,
            max_panels: 256,
            skew_threshold: 2.0,
        }
    }

    /// Sets the multiply-stage thread count the plan targets: the panel
    /// count never drops below it (each worker gets work) and the
    /// derived config pins `threads` to it.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The budget the planner plans against.
    pub fn budget(&self) -> MemoryBudget {
        self.budget
    }

    /// Plans a configuration for `A × B` from `A`'s stats and `B`'s row
    /// fill.
    ///
    /// For each candidate fan-in, the panel count is the smallest that
    /// keeps the largest projected partial within `budget / ways`
    /// (falling back to a projected-cost argmin over a panel grid when no
    /// count can); candidates are then priced as
    /// `12·huffman_internal_weight + row_ptr_bytes·panels +
    /// 2·projected_spill_bytes` and the cheapest wins, ties breaking
    /// toward the smaller fan-in. Balance comes from `A`'s column skew
    /// when the multiply runs multi-threaded (uniform otherwise), codec
    /// from whether the projection spills at all.
    pub fn plan(&self, a: &OperandStats, b: &BRows<'_>) -> Plan {
        let inner = a.cols;
        let weights = inner_flops(a, b);
        let skew = a.col_skew();
        // Nnz balancing exists to equalize worker shares; on one thread
        // it only warps panel boundaries, so uniform contiguous ranges
        // (cheaper splits, better locality) win regardless of skew.
        let balance = if self.threads > 1 && skew > self.skew_threshold {
            PanelBalance::Nnz
        } else {
            PanelBalance::Uniform
        };
        let row_ptr_bytes = (a.rows as u64 + 1) * 8;
        let cap = inner.max(1).min(self.max_panels.max(1));
        // At least two panels whenever the matrix allows: one monolithic
        // partial forfeits the streaming pipeline structure entirely (no
        // merge plan, one giant spill), and the per-panel overhead of a
        // second panel is noise next to that.
        let floor = self.threads.max(2).clamp(1, cap);
        let budget = self.budget.bytes();

        let mut best: Option<(u128, bool, Candidate)> = None;
        for ways in WAYS_CANDIDATES {
            let (candidate, satisfied) = self.panels_for(
                ways,
                floor,
                cap,
                budget,
                row_ptr_bytes,
                balance,
                a,
                &weights,
            );
            let cost = candidate.projected_cost(row_ptr_bytes);
            // A candidate that honors the budget formula always outranks
            // one that does not; within a tier the cheapest projection
            // wins, ties breaking toward the earlier (smaller) fan-in.
            let better = match &best {
                None => true,
                Some((best_cost, best_sat, _)) => {
                    (!best_sat && satisfied) || (satisfied == *best_sat && cost < *best_cost)
                }
            };
            if better {
                best = Some((cost, satisfied, candidate));
            }
        }
        let (_, satisfied, chosen) = best.expect("WAYS_CANDIDATES is non-empty");

        let spills = chosen.total_bytes > budget;
        let config = StreamConfig {
            budget: self.budget,
            panels: chosen.panels,
            balance,
            merge_ways: chosen.ways,
            spill_codec: if spills {
                SpillCodec::Varint
            } else {
                SpillCodec::Raw
            },
            threads: Some(self.threads),
            ..StreamConfig::default()
        };
        Plan {
            config,
            projected_largest_partial_bytes: chosen.largest_bytes,
            projected_total_partial_bytes: chosen.total_bytes,
            projected_merge_weight: chosen.merge_weight,
            projected_spill_bytes: chosen.spill_bytes,
            projected_partial_bytes: chosen.partial_bytes,
            col_skew: skew,
            budget_satisfied: satisfied,
        }
    }

    /// For one fan-in: the smallest panel count whose largest projected
    /// partial fits `budget / ways`, or — when none does — the panel
    /// count with the cheapest projection (ties toward the smaller
    /// largest partial).
    #[allow(clippy::too_many_arguments)]
    fn panels_for(
        &self,
        ways: usize,
        floor: usize,
        cap: usize,
        budget: u64,
        row_ptr_bytes: u64,
        balance: PanelBalance,
        a: &OperandStats,
        weights: &[u64],
    ) -> (Candidate, bool) {
        let mut fallback: Option<(u128, u64, Candidate)> = None;
        for panels in floor..=cap {
            let candidate =
                Candidate::project(panels, ways, balance, a, weights, row_ptr_bytes, budget);
            if candidate.largest_bytes.saturating_mul(ways as u64) <= budget {
                return (candidate, true);
            }
            // No count may fit at all (a hub column alone can overflow
            // `budget / ways`, and a near-zero budget fits nothing).
            // Residency is then off the table — the store spills the
            // overflow whatever the split — so splitting finer only adds
            // per-panel overhead: fall back to the cheapest projection
            // (spill round-trips are already priced into the cost).
            let cost = candidate.projected_cost(row_ptr_bytes);
            if fallback
                .as_ref()
                .is_none_or(|(c, l, _)| (cost, candidate.largest_bytes) < (*c, *l))
            {
                fallback = Some((cost, candidate.largest_bytes, candidate));
            }
        }
        let (_, _, fallback) = fallback.expect("floor..=cap is non-empty");
        (fallback, false)
    }
}

/// Per-inner-column multiply work: `a_col_nnz[k] * b_row_nnz[k]` — the
/// flops (and the partial-entry upper bound) column `k` contributes.
fn inner_flops(a: &OperandStats, b: &BRows<'_>) -> Vec<u64> {
    match b {
        BRows::Histogram(rows) => {
            debug_assert_eq!(
                rows.len(),
                a.cols,
                "B row histogram must span the inner dim"
            );
            a.col_nnz
                .iter()
                .zip(rows.iter())
                .map(|(&ac, &br)| ac as u64 * br as u64)
                .collect()
        }
        BRows::Average { nnz } => {
            let avg = *nnz as f64 / a.cols.max(1) as f64;
            a.col_nnz
                .iter()
                .map(|&ac| {
                    if ac == 0 {
                        0
                    } else {
                        ((ac as f64 * avg).round() as u64).max(1)
                    }
                })
                .collect()
        }
    }
}

/// One priced (panels, ways) point.
struct Candidate {
    panels: usize,
    ways: usize,
    partial_bytes: Vec<u64>,
    largest_bytes: u64,
    total_bytes: u64,
    merge_weight: u64,
    spill_bytes: u64,
}

impl Candidate {
    /// Projects partial sizes and merge traffic for one configuration,
    /// mirroring the executor's own split (`panel_ranges_by_nnz` over
    /// `A`'s column histogram for [`PanelBalance::Nnz`], uniform column
    /// counts otherwise).
    fn project(
        panels: usize,
        ways: usize,
        balance: PanelBalance,
        a: &OperandStats,
        weights: &[u64],
        row_ptr_bytes: u64,
        budget: u64,
    ) -> Candidate {
        let ranges: Vec<Range<usize>> = match balance {
            PanelBalance::Uniform => panel_ranges(a.cols, panels),
            PanelBalance::Nnz => panel_ranges_by_nnz(&a.col_nnz, panels),
        };
        let panel_flops: Vec<u64> = ranges
            .iter()
            .map(|r| weights[r.clone()].iter().sum::<u64>())
            .collect();
        let partial_bytes: Vec<u64> = panel_flops
            .iter()
            .map(|&f| f * 12 + row_ptr_bytes)
            .collect();
        let largest_bytes = partial_bytes.iter().copied().max().unwrap_or(row_ptr_bytes);
        let total_bytes = partial_bytes.iter().sum();
        let ways = ways.clamp(2, ranges.len().max(2));
        let plan = huffman_plan(&panel_flops, ways);
        let merge_weight = plan.estimated_internal_weight();
        // When everything fits in the budget nothing round-trips disk;
        // otherwise the overflow itself must leave RAM at least once and
        // the pre-root merge traffic round-trips on top of it.
        let spill_bytes = if total_bytes > budget {
            (total_bytes - budget) + plan.estimated_spill_weight() * 12
        } else {
            0
        };
        Candidate {
            panels: ranges.len(),
            ways,
            partial_bytes,
            largest_bytes,
            total_bytes,
            merge_weight,
            spill_bytes,
        }
    }

    /// Projected traffic in bytes: merged elements (12 B each), one
    /// row-pointer array per partial, and spilled bytes paying the
    /// write + read round-trip.
    fn projected_cost(&self, row_ptr_bytes: u64) -> u128 {
        self.merge_weight as u128 * 12
            + row_ptr_bytes as u128 * self.panels as u128
            + self.spill_bytes as u128 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    fn stats(seed: u64) -> OperandStats {
        OperandStats::from_csr(&gen::rmat_graph500(128, 6, seed))
    }

    #[test]
    fn stats_from_csr_match_manual_histogram() {
        let m = gen::uniform_random(40, 56, 300, 3);
        let s = OperandStats::from_csr(&m);
        assert_eq!(s.rows, 40);
        assert_eq!(s.cols, 56);
        assert_eq!(s.nnz, m.nnz() as u64);
        assert_eq!(s.col_nnz, m.col_nnz());
        assert_eq!(s.col_nnz.iter().sum::<usize>() as u64, s.nnz);
    }

    #[test]
    fn skew_separates_uniform_from_powerlaw() {
        let banded = OperandStats::from_csr(&gen::banded(256, 2, 0, 1));
        let rmat = stats(7);
        assert!(banded.col_skew() < 2.0, "banded skew {}", banded.col_skew());
        assert!(rmat.col_skew() > 2.0, "rmat skew {}", rmat.col_skew());
        let empty = OperandStats {
            rows: 4,
            cols: 4,
            nnz: 0,
            col_nnz: vec![0; 4],
        };
        assert_eq!(empty.col_skew(), 1.0);
    }

    #[test]
    fn plan_is_deterministic() {
        let a = stats(3);
        let b = gen::rmat_graph500(128, 6, 3);
        let rows = row_nnz_histogram(&b);
        let planner = KnobPlanner::new(MemoryBudget::from_kb(32)).with_threads(2);
        let p1 = planner.plan(&a, &BRows::Histogram(&rows));
        let p2 = planner.plan(&a, &BRows::Histogram(&rows));
        assert_eq!(p1, p2);
    }

    #[test]
    fn unbounded_budget_never_spills_and_stays_coarse() {
        let a = stats(5);
        let plan = KnobPlanner::new(MemoryBudget::unbounded())
            .with_threads(2)
            .plan(&a, &BRows::Average { nnz: a.nnz });
        assert!(plan.budget_satisfied);
        assert_eq!(plan.projected_spill_bytes, 0);
        assert_eq!(plan.config.spill_codec, SpillCodec::Raw);
        // Everything fits at the parallelism floor.
        assert_eq!(plan.config.panels, 2);
    }

    #[test]
    fn tight_budget_drives_panels_up() {
        // Uniform column mass: the budget formula is achievable, so the
        // planner must split finer until the working set fits.
        let m = gen::banded(256, 2, 0, 1);
        let a = OperandStats::from_csr(&m);
        let rows = row_nnz_histogram(&m);
        let loose = KnobPlanner::new(MemoryBudget::unbounded()).plan(&a, &BRows::Histogram(&rows));
        let total = loose.projected_total_partial_bytes;
        let tight = KnobPlanner::new(MemoryBudget::from_bytes(total / 4))
            .plan(&a, &BRows::Histogram(&rows));
        assert!(tight.budget_satisfied);
        assert!(
            tight.config.panels > loose.config.panels,
            "tight {} !> loose {}",
            tight.config.panels,
            loose.config.panels
        );
        assert!(
            tight.projected_largest_partial_bytes * tight.config.merge_ways as u64 <= total / 4
        );
        assert_eq!(tight.config.spill_codec, SpillCodec::Varint);
        assert!(tight.projected_spill_bytes > 0);
    }

    #[test]
    fn unachievable_budget_falls_back_to_the_cheapest_projection() {
        // A hub-dominated matrix under a tiny (but non-zero) budget: no
        // split fits, residency is impossible, and the fallback must not
        // burn panel overhead chasing it — the projected-cost argmin
        // stays coarse.
        let a = stats(5);
        let plan =
            KnobPlanner::new(MemoryBudget::from_bytes(64)).plan(&a, &BRows::Average { nnz: a.nnz });
        assert!(!plan.budget_satisfied);
        assert!(
            plan.config.panels <= 4,
            "fallback split finer than the projection justifies: {} panels",
            plan.config.panels
        );
        assert_eq!(plan.config.spill_codec, SpillCodec::Varint);
    }

    #[test]
    fn zero_budget_falls_back_without_satisfying() {
        let a = stats(9);
        let plan =
            KnobPlanner::new(MemoryBudget::from_bytes(0)).plan(&a, &BRows::Average { nnz: a.nnz });
        assert!(!plan.budget_satisfied);
        assert!(plan.config.panels >= 1);
        assert!(plan.config.merge_ways >= 2);
    }

    #[test]
    fn skewed_matrices_get_nnz_balance_once_there_are_workers() {
        let rmat = stats(11);
        let plan = KnobPlanner::new(MemoryBudget::from_kb(64))
            .with_threads(2)
            .plan(&rmat, &BRows::Average { nnz: rmat.nnz });
        assert_eq!(plan.config.balance, PanelBalance::Nnz);
        // Single-threaded there is nothing to balance: uniform ranges
        // win on split cost and locality even under heavy skew.
        let plan = KnobPlanner::new(MemoryBudget::from_kb(64))
            .plan(&rmat, &BRows::Average { nnz: rmat.nnz });
        assert_eq!(plan.config.balance, PanelBalance::Uniform);
        let banded = OperandStats::from_csr(&gen::banded(256, 2, 0, 1));
        let plan = KnobPlanner::new(MemoryBudget::from_kb(64))
            .with_threads(2)
            .plan(&banded, &BRows::Average { nnz: banded.nnz });
        assert_eq!(plan.config.balance, PanelBalance::Uniform);
    }

    #[test]
    fn threads_floor_the_panel_count() {
        let a = stats(13);
        for threads in [1usize, 2, 4, 8] {
            let plan = KnobPlanner::new(MemoryBudget::unbounded())
                .with_threads(threads)
                .plan(&a, &BRows::Average { nnz: a.nnz });
            assert!(plan.config.panels >= threads.min(a.cols));
            assert_eq!(plan.config.threads, Some(threads));
        }
    }

    #[test]
    fn plan_serializes() {
        let a = stats(1);
        let plan =
            KnobPlanner::new(MemoryBudget::from_kb(16)).plan(&a, &BRows::Average { nnz: a.nnz });
        let json = serde_json::to_string(&plan).unwrap();
        let back: Plan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
