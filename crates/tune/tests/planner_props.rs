//! The planner's contract, pinned over the shared `gen::arb` grid:
//!
//! 1. **Budget invariant** — the chosen config always has `panels ≥ 1`
//!    and `merge_ways ≥ 2`, carries the planner's budget verbatim, and
//!    whenever the plan claims `budget_satisfied` the largest projected
//!    partial fits `budget / merge_ways`. When it does not claim it, the
//!    formula was genuinely unachievable: even the finest split leaves a
//!    single column over `budget / 2`.
//! 2. **Bit-identity** — a run under the planned config is bit-identical
//!    to `gustavson` (knobs change timing, never bits), at any budget or
//!    thread count the planner was pointed at.

use proptest::prelude::*;
use sparch_sparse::gen::arb::{self, ValueClass};
use sparch_sparse::{algo, Csr};
use sparch_stream::{MemoryBudget, StreamingExecutor};
use sparch_tune::{row_nnz_histogram, BRows, KnobPlanner, OperandStats, Plan};

/// Budgets swept: fits-nothing, tight, roomy, in-core.
const BUDGETS: [u64; 4] = [0, 4 << 10, 64 << 10, u64::MAX];

fn check_plan(plan: &Plan, budget: MemoryBudget, a: &Csr, b: &Csr) {
    let config = &plan.config;
    assert!(config.panels >= 1);
    assert!(config.merge_ways >= 2);
    assert_eq!(config.budget, budget);
    assert_eq!(
        plan.projected_largest_partial_bytes,
        plan.projected_partial_bytes
            .iter()
            .copied()
            .max()
            .unwrap_or((a.rows() as u64 + 1) * 8)
    );
    assert_eq!(
        plan.projected_total_partial_bytes,
        plan.projected_partial_bytes.iter().sum::<u64>()
    );

    if plan.budget_satisfied {
        assert!(
            plan.projected_largest_partial_bytes
                .saturating_mul(config.merge_ways as u64)
                <= budget.bytes(),
            "satisfied plan violates largest ({} B) * ways ({}) <= budget ({} B)",
            plan.projected_largest_partial_bytes,
            config.merge_ways,
            budget.bytes()
        );
    } else {
        // The formula must really be unachievable: even a lone column —
        // the finest possible split — overflows budget / 2.
        let row_ptr_bytes = (a.rows() as u64 + 1) * 8;
        let b_rows = row_nnz_histogram(b);
        let finest_largest = a
            .col_nnz()
            .iter()
            .zip(&b_rows)
            .map(|(&ac, &br)| ac as u64 * br as u64 * 12 + row_ptr_bytes)
            .max()
            .unwrap_or(row_ptr_bytes);
        assert!(
            finest_largest.saturating_mul(2) > budget.bytes(),
            "planner gave up although a split with largest {} B fits budget {} B",
            finest_largest,
            budget.bytes()
        );
    }
}

fn assert_planned_run_is_bit_identical(a: &Csr, b: &Csr, plan: &Plan) {
    let expected = algo::gustavson(a, b);
    let (c, report) = StreamingExecutor::new(plan.config.clone())
        .multiply(a, b)
        .expect("planned streaming run failed");
    assert_eq!(
        c, expected,
        "planned config {:?} changed result bits",
        plan.config
    );
    assert!(report.panels >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn planned_configs_satisfy_the_budget_invariant_and_bits(
        pair in arb::spgemm_pair(20, 70, ValueClass::SmallInt),
        budget in prop_oneof![
            Just(BUDGETS[0]), Just(BUDGETS[1]), Just(BUDGETS[2]), Just(BUDGETS[3])
        ],
        threads in 1usize..3,
    ) {
        let (a, b) = pair;
        let budget = MemoryBudget::from_bytes(budget);
        let stats = OperandStats::from_csr(&a);
        let b_rows = row_nnz_histogram(&b);
        let plan = KnobPlanner::new(budget)
            .with_threads(threads)
            .plan(&stats, &BRows::Histogram(&b_rows));
        check_plan(&plan, budget, &a, &b);
        assert_planned_run_is_bit_identical(&a, &b, &plan);
    }
}

/// The deterministic tour the property test samples: seeds × budgets ×
/// threads, so failures name their reproducer. Also pins that the
/// average-fill projection (the disk path, where `B`'s row histogram is
/// unknown) obeys the same invariants.
#[test]
fn deterministic_grid_sweep() {
    let pairs = arb::spgemm_pair(24, 90, ValueClass::SmallInt);
    for seed in 0..6u64 {
        let (a, b) = arb::sample(&pairs, seed);
        let stats = OperandStats::from_csr(&a);
        let b_rows = row_nnz_histogram(&b);
        for bytes in BUDGETS {
            for threads in [1usize, 2] {
                let budget = MemoryBudget::from_bytes(bytes);
                let planner = KnobPlanner::new(budget).with_threads(threads);
                for b_view in [
                    BRows::Histogram(&b_rows),
                    BRows::Average {
                        nnz: b.nnz() as u64,
                    },
                ] {
                    let plan = planner.plan(&stats, &b_view);
                    assert!(plan.config.panels >= 1 && plan.config.merge_ways >= 2);
                    assert_eq!(plan.config.budget, budget);
                    if plan.budget_satisfied {
                        assert!(
                            plan.projected_largest_partial_bytes
                                .saturating_mul(plan.config.merge_ways as u64)
                                <= bytes,
                            "seed {seed} budget {bytes} threads {threads}"
                        );
                    }
                }
                let plan = planner.plan(&stats, &BRows::Histogram(&b_rows));
                check_plan(&plan, budget, &a, &b);
                assert_planned_run_is_bit_identical(&a, &b, &plan);
            }
        }
    }
}
