//! Satellite: one stats API, two operand homes. The planner consumes
//! [`OperandStats`] whether the operand lives in memory
//! ([`OperandStats::from_csr`]) or on disk
//! ([`OperandStats::scan_file`]); this suite pins that both paths
//! report the same shape, entry count, and column histogram — and that
//! the histogram is exactly what `mm::scan_col_nnz` (the panel reader's
//! own pass) sees.

use sparch_sparse::{gen, mm};
use sparch_tune::OperandStats;
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sparch-tune-parity-{}-{}.mtx",
        std::process::id(),
        tag
    ))
}

#[test]
fn scan_file_matches_from_csr() {
    let matrices = [
        ("rmat", gen::rmat_graph500(96, 5, 3)),
        ("rect", gen::uniform_random(40, 56, 300, 7)),
        ("banded", gen::banded(64, 2, 10, 9)),
    ];
    for (tag, m) in &matrices {
        let path = temp_path(tag);
        mm::write_file(&path, &m.to_coo()).expect("write matrix");

        let disk = OperandStats::scan_file(&path).expect("scan matrix");
        let memory = OperandStats::from_csr(m);
        assert_eq!(disk, memory, "disk vs in-memory stats diverge for {tag}");
        assert_eq!(
            disk.col_nnz,
            mm::scan_col_nnz(&path).expect("scan histogram"),
            "stats histogram diverges from mm::scan_col_nnz for {tag}"
        );
        assert_eq!(disk.nnz, disk.col_nnz.iter().sum::<usize>() as u64);

        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn scan_file_reports_io_errors() {
    let missing = temp_path("does-not-exist");
    assert!(OperandStats::scan_file(&missing).is_err());
}
