//! The coordinator ↔ worker wire protocol.
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! magic   u32   0x5350_4431 ("SPD1", little-endian)
//! kind    u8    message discriminant
//! len     u64   payload length in bytes (checked before allocation)
//! payload len bytes
//! ```
//!
//! Matrices inside a payload travel as **SPM blocks** — a `u64` length
//! followed by exactly the bytes [`spill::encode_partial`] produces, so
//! the wire format *is* the spill codec: the same delta+varint encoding
//! (with its per-file raw fallback), the same untrusting decoder
//! ([`spill::decode_partial`]) validating shape, order and exact length.
//! A truncated, corrupted or oversized frame therefore surfaces as a
//! typed [`DistError`] — never a panic, a hang, or an unbounded
//! allocation.
//!
//! [`read_message`] distinguishes three ends of a stream: a clean EOF at
//! a frame boundary (`Ok(None)`, the peer closed deliberately), a
//! timeout ([`DistError::Timeout`], mapped from `TimedOut`/`WouldBlock`
//! so a socket read deadline doubles as the heartbeat monitor), and
//! everything else ([`DistError::Frame`]/[`DistError::Io`]).

use crate::DistError;
use sparch_obs::WireSpan;
use sparch_sparse::Csr;
use sparch_stream::spill;
use sparch_stream::SpillCodec;
use std::io::{ErrorKind, Read, Write};

/// Frame magic: "SPD1" in little-endian byte order.
pub const MAGIC: u32 = 0x5350_4431;

/// Upper bound on one frame's declared payload length. Checked before
/// any allocation sized by the header, so a corrupt length cannot
/// provoke an out-of-memory abort.
pub const MAX_FRAME_BYTES: u64 = 1 << 30;

const KIND_HELLO: u8 = 0;
const KIND_MULTIPLY: u8 = 1;
const KIND_MERGE: u8 = 2;
const KIND_RESULT: u8 = 3;
const KIND_HEARTBEAT: u8 = 4;
const KIND_SHUTDOWN: u8 = 5;

/// One protocol message. The coordinator sends `Multiply`, `Merge` and
/// `Shutdown`; a worker sends `Hello` once, then `Heartbeat`s and
/// `Result`s.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A worker announcing itself after connecting; `worker` echoes the
    /// generation id the coordinator spawned it with.
    Hello { worker: u64 },
    /// One idempotent panel job: multiply `a · b` (an A column panel,
    /// condensed, times the matching B row panel) and reply with
    /// `Result { job, .. }`.
    Multiply { job: u64, leaf: u64, a: Csr, b: Csr },
    /// One idempotent merge job: fold `children` — in exactly this
    /// order, the Huffman plan's child order — into one `rows × cols`
    /// partial and reply with `Result { job, .. }`.
    Merge {
        job: u64,
        round: u64,
        rows: u64,
        cols: u64,
        children: Vec<Csr>,
    },
    /// A finished job's partial product, plus the worker-side trace
    /// spans for that job (empty unless the coordinator asked for
    /// tracing). Span timestamps are relative to the *worker's* clock
    /// anchor; the coordinator re-bases them onto its own timeline.
    Result {
        job: u64,
        partial: Csr,
        spans: Vec<WireSpan>,
    },
    /// Liveness beacon, sent on an interval by a worker-side thread so
    /// the coordinator's read deadline only fires when the worker is
    /// actually gone or wedged.
    Heartbeat,
    /// Orderly end of stream; the worker exits.
    Shutdown,
}

impl Message {
    /// Short name for logs and errors.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::Multiply { .. } => "multiply",
            Message::Merge { .. } => "merge",
            Message::Result { .. } => "result",
            Message::Heartbeat => "heartbeat",
            Message::Shutdown => "shutdown",
        }
    }
}

/// Serializes and writes one frame, returning the bytes put on the
/// wire. The frame is assembled in memory first and written with a
/// single `write_all`, so concurrent writers serialized by a lock can
/// never interleave partial frames.
pub fn write_message<W: Write>(
    w: &mut W,
    msg: &Message,
    codec: SpillCodec,
) -> Result<u64, DistError> {
    let (kind, payload) = encode_payload(msg, codec);
    let mut frame = Vec::with_capacity(13 + payload.len());
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&payload);
    w.write_all(&frame).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    Ok(frame.len() as u64)
}

fn encode_payload(msg: &Message, codec: SpillCodec) -> (u8, Vec<u8>) {
    let mut p = Vec::new();
    let kind = match msg {
        Message::Hello { worker } => {
            p.extend_from_slice(&worker.to_le_bytes());
            KIND_HELLO
        }
        Message::Multiply { job, leaf, a, b } => {
            p.extend_from_slice(&job.to_le_bytes());
            p.extend_from_slice(&leaf.to_le_bytes());
            push_block(&mut p, a, codec);
            push_block(&mut p, b, codec);
            KIND_MULTIPLY
        }
        Message::Merge {
            job,
            round,
            rows,
            cols,
            children,
        } => {
            p.extend_from_slice(&job.to_le_bytes());
            p.extend_from_slice(&round.to_le_bytes());
            p.extend_from_slice(&rows.to_le_bytes());
            p.extend_from_slice(&cols.to_le_bytes());
            p.extend_from_slice(&(children.len() as u64).to_le_bytes());
            for child in children {
                push_block(&mut p, child, codec);
            }
            KIND_MERGE
        }
        Message::Result {
            job,
            partial,
            spans,
        } => {
            p.extend_from_slice(&job.to_le_bytes());
            push_block(&mut p, partial, codec);
            // Spans ride *after* the partial block so a span-free frame
            // is byte-compatible with the old layout plus a zero count.
            p.extend_from_slice(&(spans.len() as u64).to_le_bytes());
            for s in spans {
                push_str(&mut p, &s.name);
                push_str(&mut p, &s.cat);
                p.extend_from_slice(&s.start_ns.to_le_bytes());
                p.extend_from_slice(&s.end_ns.to_le_bytes());
                p.extend_from_slice(&u64::from(s.depth).to_le_bytes());
            }
            KIND_RESULT
        }
        Message::Heartbeat => KIND_HEARTBEAT,
        Message::Shutdown => KIND_SHUTDOWN,
    };
    (kind, p)
}

fn push_block(p: &mut Vec<u8>, csr: &Csr, codec: SpillCodec) {
    let bytes = spill::encode_partial(csr, codec);
    p.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    p.extend_from_slice(&bytes);
}

fn push_str(p: &mut Vec<u8>, s: &str) {
    p.extend_from_slice(&(s.len() as u64).to_le_bytes());
    p.extend_from_slice(s.as_bytes());
}

/// Reads one frame. `Ok(None)` is a clean EOF *at a frame boundary*;
/// EOF mid-frame is [`DistError::Frame`]; a read deadline expiring is
/// [`DistError::Timeout`]. The declared payload length is validated
/// against [`MAX_FRAME_BYTES`] before any allocation.
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<Message>, DistError> {
    let mut magic = [0u8; 4];
    match read_full(r, &mut magic)? {
        0 => return Ok(None),
        4 => {}
        n => {
            return Err(DistError::Frame(format!(
                "stream ended {n} bytes into a frame header"
            )))
        }
    }
    let magic = u32::from_le_bytes(magic);
    if magic != MAGIC {
        return Err(DistError::Frame(format!(
            "bad frame magic {magic:#010x} (expected {MAGIC:#010x})"
        )));
    }
    let mut kind = [0u8; 1];
    read_exact_frame(r, &mut kind, "frame kind")?;
    let mut len = [0u8; 8];
    read_exact_frame(r, &mut len, "frame length")?;
    let len = u64::from_le_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(DistError::Frame(format!(
            "frame declares {len} payload bytes (limit {MAX_FRAME_BYTES})"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_frame(r, &mut payload, "frame payload")?;
    decode_payload(kind[0], &payload)
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Option<Message>, DistError> {
    let mut p = payload;
    let msg = match kind {
        KIND_HELLO => Message::Hello {
            worker: take_u64(&mut p)?,
        },
        KIND_MULTIPLY => Message::Multiply {
            job: take_u64(&mut p)?,
            leaf: take_u64(&mut p)?,
            a: take_block(&mut p)?,
            b: take_block(&mut p)?,
        },
        KIND_MERGE => {
            let job = take_u64(&mut p)?;
            let round = take_u64(&mut p)?;
            let rows = take_u64(&mut p)?;
            let cols = take_u64(&mut p)?;
            let count = take_u64(&mut p)?;
            // Each child block costs at least its 8-byte length prefix,
            // so a lying count is rejected before the loop allocates.
            if count.saturating_mul(8) > p.len() as u64 {
                return Err(DistError::Frame(format!(
                    "merge frame declares {count} children in {} bytes",
                    p.len()
                )));
            }
            let mut children = Vec::with_capacity(count as usize);
            for _ in 0..count {
                children.push(take_block(&mut p)?);
            }
            Message::Merge {
                job,
                round,
                rows,
                cols,
                children,
            }
        }
        KIND_RESULT => {
            let job = take_u64(&mut p)?;
            let partial = take_block(&mut p)?;
            let count = take_u64(&mut p)?;
            // Each span costs at least its five fixed u64 fields (two
            // empty-string length prefixes, both timestamps, the
            // depth), so a lying count is rejected before allocating.
            if count.saturating_mul(40) > p.len() as u64 {
                return Err(DistError::Frame(format!(
                    "result frame declares {count} spans in {} bytes",
                    p.len()
                )));
            }
            let mut spans = Vec::with_capacity(count as usize);
            for _ in 0..count {
                spans.push(take_span(&mut p)?);
            }
            Message::Result {
                job,
                partial,
                spans,
            }
        }
        KIND_HEARTBEAT => Message::Heartbeat,
        KIND_SHUTDOWN => Message::Shutdown,
        other => return Err(DistError::Frame(format!("unknown frame kind {other}"))),
    };
    if !p.is_empty() {
        return Err(DistError::Frame(format!(
            "{} bytes of trailing garbage after a {} frame",
            p.len(),
            msg.kind_name()
        )));
    }
    Ok(Some(msg))
}

fn take_u64(p: &mut &[u8]) -> Result<u64, DistError> {
    if p.len() < 8 {
        return Err(DistError::Frame("frame payload truncated mid-field".into()));
    }
    let (head, rest) = p.split_at(8);
    *p = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

fn take_str(p: &mut &[u8]) -> Result<String, DistError> {
    let len = take_u64(p)?;
    if len > p.len() as u64 {
        return Err(DistError::Frame(format!(
            "span label declares {len} bytes but only {} remain",
            p.len()
        )));
    }
    let (head, rest) = p.split_at(len as usize);
    *p = rest;
    String::from_utf8(head.to_vec()).map_err(|_| DistError::Frame("span label is not UTF-8".into()))
}

fn take_span(p: &mut &[u8]) -> Result<WireSpan, DistError> {
    let name = take_str(p)?;
    let cat = take_str(p)?;
    let start_ns = take_u64(p)?;
    let end_ns = take_u64(p)?;
    let depth = u32::try_from(take_u64(p)?)
        .map_err(|_| DistError::Frame("span depth exceeds u32".into()))?;
    Ok(WireSpan {
        name,
        cat,
        start_ns,
        end_ns,
        depth,
    })
}

fn take_block(p: &mut &[u8]) -> Result<Csr, DistError> {
    let len = take_u64(p)?;
    if len > p.len() as u64 {
        return Err(DistError::Frame(format!(
            "matrix block declares {len} bytes but only {} remain",
            p.len()
        )));
    }
    let (head, rest) = p.split_at(len as usize);
    *p = rest;
    spill::decode_partial(head).map_err(DistError::Codec)
}

/// Reads until `buf` is full or EOF; returns the bytes read. A timeout
/// or interrupt maps to the typed errors before any data is consumed
/// ambiguously (a deadline mid-frame aborts the whole read).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, DistError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(got)
}

fn read_exact_frame<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), DistError> {
    let got = read_full(r, buf)?;
    if got < buf.len() {
        return Err(DistError::Frame(format!(
            "stream ended mid-{what} ({got} of {} bytes)",
            buf.len()
        )));
    }
    Ok(())
}

/// Maps an I/O error to the typed split the read loops rely on: a
/// deadline expiring is [`DistError::Timeout`], everything else
/// [`DistError::Io`].
pub(crate) fn io_err(e: std::io::Error) -> DistError {
    match e.kind() {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => {
            DistError::Timeout(format!("socket deadline expired: {e}"))
        }
        _ => DistError::Io(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    fn sample_messages() -> Vec<Message> {
        let a = gen::uniform_random(12, 9, 40, 3);
        let b = gen::uniform_random(9, 14, 50, 4);
        let c = gen::uniform_random(12, 14, 30, 5);
        vec![
            Message::Hello { worker: 7 },
            Message::Multiply {
                job: 1,
                leaf: 0,
                a: a.clone(),
                b,
            },
            Message::Merge {
                job: 2,
                round: 0,
                rows: 12,
                cols: 14,
                children: vec![c.clone(), c.clone(), c],
            },
            Message::Result {
                job: 1,
                partial: a.clone(),
                spans: vec![],
            },
            Message::Result {
                job: 4,
                partial: a,
                spans: vec![
                    WireSpan {
                        name: "compute-multiply".into(),
                        cat: "dist".into(),
                        start_ns: 100,
                        end_ns: 2_500,
                        depth: 0,
                    },
                    WireSpan {
                        name: "kernel".into(),
                        cat: "dist".into(),
                        start_ns: 150,
                        end_ns: 2_400,
                        depth: 1,
                    },
                ],
            },
            Message::Heartbeat,
            Message::Shutdown,
        ]
    }

    #[test]
    fn messages_round_trip_in_memory() {
        for codec in [SpillCodec::Raw, SpillCodec::Varint] {
            let mut buf = Vec::new();
            let msgs = sample_messages();
            let mut written = 0u64;
            for m in &msgs {
                written += write_message(&mut buf, m, codec).unwrap();
            }
            assert_eq!(written, buf.len() as u64);
            let mut r = buf.as_slice();
            for m in &msgs {
                assert_eq!(read_message(&mut r).unwrap().as_ref(), Some(m), "{codec}");
            }
            assert_eq!(read_message(&mut r).unwrap(), None, "clean EOF");
        }
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let mut buf = Vec::new();
        let m = Message::Result {
            job: 3,
            partial: gen::uniform_random(6, 6, 12, 1),
            spans: vec![WireSpan {
                name: "compute-multiply".into(),
                cat: "dist".into(),
                start_ns: 5,
                end_ns: 95,
                depth: 0,
            }],
        };
        write_message(&mut buf, &m, SpillCodec::Varint).unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            match read_message(&mut r) {
                Err(DistError::Frame(_) | DistError::Codec(_)) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = MAGIC.to_le_bytes().to_vec();
        buf.push(KIND_HEARTBEAT);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        // No payload follows; if the length were believed this would
        // try to allocate 2^64 bytes before noticing.
        match read_message(&mut buf.as_slice()) {
            Err(DistError::Frame(msg)) => assert!(msg.contains("limit")),
            other => panic!("expected Frame error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_magic_and_kind_and_trailing_garbage_are_rejected() {
        let mut bad_magic = vec![0xde, 0xad, 0xbe, 0xef];
        bad_magic.extend_from_slice(&[KIND_HEARTBEAT]);
        bad_magic.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_message(&mut bad_magic.as_slice()),
            Err(DistError::Frame(_))
        ));

        let mut bad_kind = MAGIC.to_le_bytes().to_vec();
        bad_kind.push(99);
        bad_kind.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_message(&mut bad_kind.as_slice()),
            Err(DistError::Frame(_))
        ));

        let mut trailing = MAGIC.to_le_bytes().to_vec();
        trailing.push(KIND_HEARTBEAT);
        trailing.extend_from_slice(&3u64.to_le_bytes());
        trailing.extend_from_slice(b"xyz");
        assert!(matches!(
            read_message(&mut trailing.as_slice()),
            Err(DistError::Frame(_))
        ));
    }

    #[test]
    fn merge_frame_with_lying_child_count_is_rejected() {
        let mut payload = Vec::new();
        for v in [0u64, 0, 4, 4, u64::MAX] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let mut frame = MAGIC.to_le_bytes().to_vec();
        frame.push(KIND_MERGE);
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(matches!(
            read_message(&mut frame.as_slice()),
            Err(DistError::Frame(_))
        ));
    }

    #[test]
    fn result_frame_with_lying_span_count_is_rejected() {
        // A valid result frame whose span count claims more spans than
        // the remaining payload could possibly hold.
        let mut buf = Vec::new();
        let m = Message::Result {
            job: 2,
            partial: gen::uniform_random(4, 4, 6, 9),
            spans: vec![],
        };
        write_message(&mut buf, &m, SpillCodec::Raw).unwrap();
        // The span count is the payload's final 8 bytes.
        let at = buf.len() - 8;
        buf[at..].copy_from_slice(&u64::MAX.to_le_bytes());
        match read_message(&mut buf.as_slice()) {
            Err(DistError::Frame(msg)) => assert!(msg.contains("spans"), "{msg}"),
            other => panic!("expected Frame error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_matrix_block_surfaces_as_codec_error() {
        let mut buf = Vec::new();
        let m = Message::Result {
            job: 1,
            partial: gen::uniform_random(6, 6, 12, 2),
            spans: vec![],
        };
        write_message(&mut buf, &m, SpillCodec::Raw).unwrap();
        // Flip a byte inside the SPM block's entry region: offsets past
        // frame header (13) + job (8) + block len (8) + SPM header (28).
        let i = 13 + 8 + 8 + 28 + 4;
        buf[i] ^= 0xff;
        match read_message(&mut buf.as_slice()) {
            Err(DistError::Codec(_) | DistError::Frame(_)) => {}
            other => panic!("expected Codec/Frame error, got {other:?}"),
        }
    }
}
