//! The coordinator: placement, liveness, retry, and the global plan.
//!
//! [`DistCoordinator::multiply`] owns the run end to end. It splits the
//! operands into (A-column-panel, B-row-panel) pairs with *exactly* the
//! split [`StreamingExecutor::multiply`](sparch_stream::StreamingExecutor::multiply)
//! uses — same [`PanelBalance`], same deterministic pruning of all-empty
//! `A` panels — and builds the same Huffman merge plan from the same
//! per-panel non-zero weights. Multiplies and merge rounds become
//! idempotent **jobs**; shard worker processes claim one at a time over
//! Unix sockets. Because the plan fixes every round's children and the
//! workers run the single-node kernels on the same inputs in the same
//! fold order, the final CSR is bit-identical to the single-node run at
//! every shard count, whatever the dispatch interleaving.
//!
//! **Liveness** is the per-worker reader thread's read deadline: a
//! healthy worker heartbeats every [`DistConfig::heartbeat_interval`],
//! so a socket silent for [`DistConfig::heartbeat_timeout`] means the
//! worker is dead or wedged. Either way the coordinator kills the
//! process, requeues whatever it held, and spawns a clean replacement —
//! the same path handles EOF mid-frame (death, truncated result),
//! corrupt frames, and protocol violations. Per-job retries are bounded
//! by [`DistConfig::max_retries`]. A job outstanding longer than
//! [`DistConfig::straggler_after`] while a worker sits idle is
//! *duplicated* onto the idle worker, not killed; results are
//! deterministic, so whichever copy lands first is the result and the
//! race is benign.

use crate::wire::{read_message, write_message, Message};
use crate::worker::FAULT_ENV;
use crate::DistError;
use serde::{Deserialize, Serialize};
use sparch_core::sched::{huffman_plan, MergePlan, PlanNode};
use sparch_obs::{Counter, Recorder, ThreadRecorder, WireSpan};
use sparch_sparse::{panel_ranges, panel_ranges_by_nnz, Csr};
use sparch_stream::{PanelBalance, StreamConfig};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// How long a freshly spawned worker gets to connect and say `Hello`.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(10);

/// Main-loop tick: straggler checks run at least this often even when
/// no worker traffic arrives.
const TICK: Duration = Duration::from_millis(50);

/// Distinguishes socket directories of coordinators in one process.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Configuration for a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistConfig {
    /// Shard worker processes to spawn (at least 1; capped at the leaf
    /// count, since a worker holds one job at a time).
    pub shards: usize,
    /// Pipeline configuration shipped to every worker — the panel split
    /// and merge plan derive from it exactly as on a single node.
    pub stream: StreamConfig,
    /// How often workers heartbeat.
    pub heartbeat_interval: Duration,
    /// Read deadline on each worker socket; silence past this means the
    /// worker is declared dead and its jobs are retried.
    pub heartbeat_timeout: Duration,
    /// Duplicate a job outstanding longer than this onto an idle worker
    /// (`None` disables straggler re-dispatch).
    pub straggler_after: Option<Duration>,
    /// Times a single job may be requeued after worker failures before
    /// the run fails with [`DistError::Job`].
    pub max_retries: u64,
    /// Explicit path to the `sparch-dist-worker` binary. `None` falls
    /// back to `SPARCH_DIST_WORKER` in the environment, then to the
    /// coordinator executable's own directory.
    pub worker: Option<PathBuf>,
    /// Fault spec passed to *initial* workers via [`FAULT_ENV`]
    /// (tests only — respawned workers never inherit it).
    pub fault: Option<String>,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            shards: 2,
            stream: StreamConfig::default(),
            heartbeat_interval: Duration::from_millis(25),
            heartbeat_timeout: Duration::from_secs(2),
            straggler_after: None,
            max_retries: 3,
            worker: None,
            fault: None,
        }
    }
}

impl DistConfig {
    /// A deterministic-by-pinning config: `shards` workers, each running
    /// the single-threaded pipeline ([`StreamConfig::pinned`]). Bit
    /// identity does not require pinning — this just makes failures
    /// easier to reason about in tests and benches.
    pub fn pinned(shards: usize) -> Self {
        DistConfig {
            shards,
            stream: StreamConfig::pinned(),
            ..DistConfig::default()
        }
    }
}

/// What a distributed run did — the coordinator's flight record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistReport {
    /// Stable layout version of this report
    /// ([`DistReport::SCHEMA_VERSION`]); bump on any field change so
    /// archived snapshot JSONs stay diffable across PRs.
    pub schema_version: u32,
    /// Worker processes requested (the fleet actually spawned is capped
    /// at `partials`).
    pub shards: usize,
    /// Panel pairs in the split, including pruned all-empty `A` panels.
    pub panels: usize,
    /// Merge leaves (non-empty panels) — multiply jobs in the run.
    pub partials: usize,
    /// Merge rounds in the Huffman plan — merge jobs in the run.
    pub merge_rounds: u64,
    /// Merger ways the plan was built with.
    pub merge_ways: usize,
    /// Total job dispatches, counting retries and straggler duplicates.
    pub dispatches: u64,
    /// Jobs requeued after a worker failure.
    pub retries: u64,
    /// Replacement workers spawned after failures.
    pub respawns: u64,
    /// Worker failures detected by heartbeat silence (read deadline).
    pub heartbeat_timeouts: u64,
    /// Jobs duplicated onto an idle worker past `straggler_after`.
    pub straggler_redispatches: u64,
    /// Frame bytes the coordinator wrote to workers.
    pub wire_bytes_sent: u64,
    /// Frame bytes the coordinator read from workers.
    pub wire_bytes_received: u64,
    /// Stored entries of the result.
    pub output_nnz: u64,
}

impl DistReport {
    /// Current value of [`DistReport::schema_version`].
    pub const SCHEMA_VERSION: u32 = 1;

    /// A deterministic view for snapshot diffing: the same report with
    /// every scheduling-dependent quantity zeroed — dispatch, retry and
    /// liveness counters, and the wire traffic (which counts
    /// heartbeats, so it varies with run duration).
    pub fn without_timing(&self) -> DistReport {
        DistReport {
            dispatches: 0,
            retries: 0,
            respawns: 0,
            heartbeat_timeouts: 0,
            straggler_redispatches: 0,
            wire_bytes_sent: 0,
            wire_bytes_received: 0,
            ..self.clone()
        }
    }
}

/// Distributed SpGEMM front end — see the [module docs](self).
#[derive(Debug, Clone)]
pub struct DistCoordinator {
    config: DistConfig,
    recorder: Recorder,
}

impl DistCoordinator {
    /// A coordinator with the given configuration and tracing disabled.
    pub fn new(config: DistConfig) -> Self {
        DistCoordinator {
            config,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a recorder. Subsequent runs record a per-worker lane of
    /// dispatch/job spans, re-based worker-side compute spans (shipped
    /// back in each `Result` frame — workers are spawned with the extra
    /// `trace` argument), instant events for heartbeat timeouts,
    /// retries and straggler re-dispatches, and wire-byte counters.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The coordinator's recorder (disabled unless set by
    /// [`with_recorder`](Self::with_recorder)).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The coordinator's configuration.
    pub fn config(&self) -> &DistConfig {
        &self.config
    }

    /// Computes `C = A · B` across the shard fleet. Bit-identical to
    /// [`StreamingExecutor::multiply`](sparch_stream::StreamingExecutor::multiply)
    /// under `self.config().stream` at every shard count, including runs
    /// that recover from worker failures.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()` — the same contract as every
    /// `sparch_sparse::algo` kernel.
    ///
    /// # Errors
    ///
    /// [`DistError::Job`] when a job exhausts `max_retries`;
    /// [`DistError::Worker`]/[`DistError::Io`] when the fleet cannot be
    /// spawned or replaced. A corrupt frame or dead socket never aborts
    /// the run by itself — it fails its worker, whose jobs are retried.
    pub fn multiply(&self, a: &Csr, b: &Csr) -> Result<(Csr, DistReport), DistError> {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let cfg = &self.config.stream;
        let ranges = match cfg.balance {
            PanelBalance::Uniform => panel_ranges(a.cols(), cfg.panels),
            PanelBalance::Nnz => panel_ranges_by_nnz(&a.col_nnz(), cfg.panels),
        };
        let panels = ranges.len();
        let mut pairs: Vec<(Csr, Csr)> = Vec::new();
        let mut weights: Vec<u64> = Vec::new();
        for r in ranges {
            let (a_panel, _live) = a.col_panel_condensed(r.clone());
            if a_panel.nnz() == 0 {
                // Same deterministic pruning as the pipeline's reader
                // stage: an empty A panel never becomes a merge leaf.
                continue;
            }
            weights.push(a_panel.nnz() as u64);
            pairs.push((a_panel, b.row_panel(r)));
        }
        let ways = cfg.merge_ways.max(2);
        let mut report = DistReport {
            schema_version: DistReport::SCHEMA_VERSION,
            shards: self.config.shards.max(1),
            panels,
            partials: pairs.len(),
            merge_rounds: 0,
            merge_ways: ways,
            dispatches: 0,
            retries: 0,
            respawns: 0,
            heartbeat_timeouts: 0,
            straggler_redispatches: 0,
            wire_bytes_sent: 0,
            wire_bytes_received: 0,
            output_nnz: 0,
        };
        if pairs.is_empty() {
            // Nothing to compute; do not spawn a fleet to agree on it.
            return Ok((Csr::zero(a.rows(), b.cols()), report));
        }
        let plan = huffman_plan(&weights, ways);
        report.merge_rounds = plan.rounds.len() as u64;

        let (evt_tx, evt_rx) = channel();
        let mut run = Run {
            config: &self.config,
            a_rows: a.rows(),
            b_cols: b.cols(),
            pairs,
            plan: &plan,
            cluster: Cluster::new(&self.config, evt_tx, self.recorder.is_enabled())?,
            evt_rx,
            jobs: Vec::new(),
            results: Vec::new(),
            ready: VecDeque::new(),
            done: 0,
            report: &mut report,
            recorder: &self.recorder,
            lanes: HashMap::new(),
            wire_sent: self.recorder.counter("dist.wire_bytes_sent"),
            wire_received: self.recorder.counter("dist.wire_bytes_received"),
        };
        let result = run.drive()?;
        drop(run);
        report.output_nnz = result.nnz() as u64;
        Ok((result, report))
    }
}

/// One job of the run: a leaf multiply or a plan merge round. The job
/// id doubles as the plan node id (`leaf` for leaves, `num_leaves +
/// round` for rounds), so results index one flat table.
#[derive(Debug, Clone, Copy)]
enum JobSpec {
    Multiply { leaf: usize },
    Merge { round: usize },
}

/// Dispatch bookkeeping for one job.
#[derive(Debug)]
struct JobState {
    spec: JobSpec,
    done: bool,
    retries: u64,
    /// Sitting in the ready queue right now.
    queued: bool,
    /// Worker generations currently holding a copy of this job.
    assigned: Vec<u64>,
    /// When the oldest still-outstanding dispatch happened.
    dispatched_at: Option<Instant>,
    /// The same moment in recorder-anchor nanoseconds — start of the
    /// synthesized dispatch→reply "job" span (0 when tracing is off).
    dispatch_ns: u64,
    /// A straggler duplicate was already issued for this dispatch.
    duplicated: bool,
}

/// What a reader thread reports about its worker.
enum EvKind {
    /// A decoded frame plus the wire bytes it occupied.
    Msg(Message, u64),
    /// The socket closed: `None` for clean EOF, `Some` for a read error
    /// (a [`DistError::Timeout`] here is a missed heartbeat deadline).
    Closed(Option<DistError>),
}

struct Ev {
    gen: u64,
    kind: EvKind,
}

/// Byte-counting [`Read`] adapter so reader threads can report each
/// frame's wire footprint.
struct CountingReader<R> {
    inner: R,
    count: u64,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.count += n as u64;
        Ok(n)
    }
}

/// A worker process (live or killed) and the write half of its socket.
struct Shard {
    gen: u64,
    child: Child,
    stream: UnixStream,
    /// Job ids currently outstanding on this worker (at most one).
    busy: Vec<u64>,
    alive: bool,
}

/// The spawned fleet plus the socket it listens on. Dropping the
/// cluster kills every child and removes the socket directory, so every
/// early-error path cleans up for free.
struct Cluster<'a> {
    config: &'a DistConfig,
    bin: PathBuf,
    dir: PathBuf,
    socket: PathBuf,
    listener: UnixListener,
    evt_tx: Sender<Ev>,
    shards: Vec<Shard>,
    next_gen: u64,
    stream_json: String,
    /// Spawn workers with the extra `trace` argument so they record and
    /// ship per-job compute spans in their `Result` frames.
    trace: bool,
}

impl Drop for Cluster<'_> {
    fn drop(&mut self) {
        for s in &mut self.shards {
            let _ = s.child.kill();
            let _ = s.child.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl<'a> Cluster<'a> {
    fn new(config: &'a DistConfig, evt_tx: Sender<Ev>, trace: bool) -> Result<Self, DistError> {
        let bin = resolve_worker_bin(config)?;
        let dir = std::env::temp_dir().join(format!(
            "sparch-dist-{}-{}",
            std::process::id(),
            RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)
            .map_err(|e| DistError::Io(format!("create socket dir {}: {e}", dir.display())))?;
        let socket = dir.join("sock");
        let listener = UnixListener::bind(&socket)
            .and_then(|l| {
                // Non-blocking accept lets the spawn loop poll the child
                // for an early exit instead of hanging on a worker that
                // never connects.
                l.set_nonblocking(true)?;
                Ok(l)
            })
            .map_err(|e| {
                let _ = std::fs::remove_dir_all(&dir);
                DistError::Io(format!("bind {}: {e}", socket.display()))
            })?;
        let stream_json = serde_json::to_string(&config.stream).map_err(|e| {
            let _ = std::fs::remove_dir_all(&dir);
            DistError::Worker(format!("serialize stream config: {e}"))
        })?;
        Ok(Cluster {
            config,
            bin,
            dir,
            socket,
            listener,
            evt_tx,
            shards: Vec::new(),
            next_gen: 0,
            stream_json,
            trace,
        })
    }

    /// Spawns one worker, waits for it to connect and identify itself,
    /// and starts its reader thread. Only initial workers (the first
    /// `shards` generations) see the injected fault spec — respawns get
    /// a scrubbed environment, which is what "retries land on a fresh
    /// worker" means.
    fn spawn_worker(&mut self) -> Result<(), DistError> {
        let gen = self.next_gen;
        self.next_gen += 1;
        let initial = gen < self.config.shards as u64;
        let mut cmd = Command::new(&self.bin);
        cmd.arg(&self.socket)
            .arg(gen.to_string())
            .arg(self.config.heartbeat_interval.as_millis().to_string())
            .arg(&self.stream_json)
            .stdin(Stdio::null());
        if self.trace {
            cmd.arg("trace");
        }
        match &self.config.fault {
            Some(spec) if initial => {
                cmd.env(FAULT_ENV, spec);
            }
            _ => {
                cmd.env_remove(FAULT_ENV);
            }
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| DistError::Worker(format!("spawn {}: {e}", self.bin.display())))?;

        let stream = match self.accept_worker(&mut child, gen) {
            Ok(s) => s,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };

        let reader = stream
            .try_clone()
            .map_err(|e| DistError::Io(format!("clone worker {gen} socket: {e}")))?;
        reader
            .set_read_timeout(Some(self.config.heartbeat_timeout))
            .map_err(|e| DistError::Io(format!("worker {gen} read deadline: {e}")))?;
        // A wedged worker stops draining its socket; bound writes too so
        // dispatch cannot hang past the liveness deadline.
        stream
            .set_write_timeout(Some(
                self.config.heartbeat_timeout.max(Duration::from_secs(1)),
            ))
            .map_err(|e| DistError::Io(format!("worker {gen} write deadline: {e}")))?;
        let tx = self.evt_tx.clone();
        std::thread::spawn(move || {
            let mut r = CountingReader {
                inner: reader,
                count: 0,
            };
            loop {
                let before = r.count;
                let kind = match read_message(&mut r) {
                    Ok(Some(msg)) => EvKind::Msg(msg, r.count - before),
                    Ok(None) => EvKind::Closed(None),
                    Err(e) => EvKind::Closed(Some(e)),
                };
                let closed = matches!(kind, EvKind::Closed(_));
                if tx.send(Ev { gen, kind }).is_err() || closed {
                    return;
                }
            }
        });

        self.shards.push(Shard {
            gen,
            child,
            stream,
            busy: Vec::new(),
            alive: true,
        });
        Ok(())
    }

    /// Accepts the connection for generation `gen` and validates its
    /// `Hello`. Workers are spawned one at a time, so the next accepted
    /// connection is the worker just spawned.
    fn accept_worker(&self, child: &mut Child, gen: u64) -> Result<UnixStream, DistError> {
        let deadline = Instant::now() + SPAWN_TIMEOUT;
        let stream = loop {
            match self.listener.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if let Ok(Some(status)) = child.try_wait() {
                        return Err(DistError::Worker(format!(
                            "worker {gen} exited before connecting: {status}"
                        )));
                    }
                    if Instant::now() >= deadline {
                        return Err(DistError::Timeout(format!(
                            "worker {gen} did not connect within {SPAWN_TIMEOUT:?}"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(DistError::Io(format!("accept worker {gen}: {e}"))),
            }
        };
        stream
            .set_nonblocking(false)
            .and_then(|()| stream.set_read_timeout(Some(SPAWN_TIMEOUT)))
            .map_err(|e| DistError::Io(format!("worker {gen} socket setup: {e}")))?;
        let mut hello_side = stream
            .try_clone()
            .map_err(|e| DistError::Io(format!("clone worker {gen} socket: {e}")))?;
        match read_message(&mut hello_side)? {
            Some(Message::Hello { worker }) if worker == gen => Ok(stream),
            Some(Message::Hello { worker }) => Err(DistError::Worker(format!(
                "worker announced generation {worker}, expected {gen}"
            ))),
            Some(other) => Err(DistError::Frame(format!(
                "expected Hello, got {} frame",
                other.kind_name()
            ))),
            None => Err(DistError::Worker(format!(
                "worker {gen} closed its socket before Hello"
            ))),
        }
    }

    fn shard_index(&self, gen: u64) -> Option<usize> {
        self.shards.iter().position(|s| s.gen == gen)
    }

    fn idle_shard(&self) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.alive && s.busy.is_empty())
    }

    /// Kills a worker process and reaps it. Idempotent.
    fn kill_shard(&mut self, idx: usize) {
        let s = &mut self.shards[idx];
        s.alive = false;
        let _ = s.child.kill();
        let _ = s.child.wait();
    }
}

/// Locates the `sparch-dist-worker` binary: explicit config, then the
/// `SPARCH_DIST_WORKER` environment variable, then next to (or one
/// directory above) the current executable — which covers both cargo
/// test binaries (`target/debug/deps/…`) and installed CLIs.
fn resolve_worker_bin(config: &DistConfig) -> Result<PathBuf, DistError> {
    if let Some(p) = &config.worker {
        return Ok(p.clone());
    }
    if let Ok(p) = std::env::var("SPARCH_DIST_WORKER") {
        return Ok(PathBuf::from(p));
    }
    if let Ok(exe) = std::env::current_exe() {
        let parents = [exe.parent(), exe.parent().and_then(|p| p.parent())];
        for dir in parents.into_iter().flatten() {
            let cand = dir.join("sparch-dist-worker");
            if cand.is_file() {
                return Ok(cand);
            }
        }
    }
    Err(DistError::Worker(
        "sparch-dist-worker binary not found: set DistConfig.worker, export \
         SPARCH_DIST_WORKER, or build it with `cargo build -p sparch-dist`"
            .into(),
    ))
}

/// Node id of a plan node in the flat job/result table.
fn node_id(node: PlanNode, num_leaves: usize) -> usize {
    match node {
        PlanNode::Leaf(l) => l,
        PlanNode::Round(r) => num_leaves + r,
    }
}

/// All the state of one in-flight distributed multiply.
struct Run<'a> {
    config: &'a DistConfig,
    a_rows: usize,
    b_cols: usize,
    /// Leaf panel pairs, retained for the lifetime of the run so any
    /// multiply can be re-dispatched after a failure.
    pairs: Vec<(Csr, Csr)>,
    plan: &'a MergePlan,
    cluster: Cluster<'a>,
    evt_rx: Receiver<Ev>,
    jobs: Vec<JobState>,
    /// Result per plan node; children stay resident until the run ends
    /// so a failed merge can be re-dispatched too.
    results: Vec<Option<Csr>>,
    ready: VecDeque<u64>,
    done: usize,
    report: &'a mut DistReport,
    recorder: &'a Recorder,
    /// One trace lane per worker generation, created on first use; each
    /// carries that worker's dispatch spans, synthesized dispatch→reply
    /// "job" spans, re-based compute spans, and failure events.
    lanes: HashMap<u64, ThreadRecorder>,
    wire_sent: Counter,
    wire_received: Counter,
}

/// The lane for worker generation `gen`, created on demand. A free
/// function over the two fields so callers can hold the lane and other
/// `Run` fields mutably at once.
fn lane_for<'l>(
    lanes: &'l mut HashMap<u64, ThreadRecorder>,
    recorder: &Recorder,
    gen: u64,
) -> &'l mut ThreadRecorder {
    lanes
        .entry(gen)
        .or_insert_with(|| recorder.thread_for("worker", gen))
}

impl Run<'_> {
    /// Spawns the fleet, drives the job graph to completion, and hands
    /// back the final node's result.
    fn drive(&mut self) -> Result<Csr, DistError> {
        let n = self.plan.num_leaves;
        // No point keeping more workers than leaves — a worker holds one
        // job at a time and the graph is never wider than its leaf row.
        let fleet = self.config.shards.clamp(1, n);
        for _ in 0..fleet {
            self.cluster.spawn_worker()?;
        }

        self.jobs = (0..n)
            .map(|leaf| JobSpec::Multiply { leaf })
            .chain((0..self.plan.rounds.len()).map(|round| JobSpec::Merge { round }))
            .map(|spec| JobState {
                spec,
                done: false,
                retries: 0,
                queued: false,
                assigned: Vec::new(),
                dispatched_at: None,
                dispatch_ns: 0,
                duplicated: false,
            })
            .collect();
        self.results = (0..self.jobs.len()).map(|_| None).collect();
        self.ready = (0..n as u64).collect();
        self.jobs[..n].iter_mut().for_each(|j| j.queued = true);

        while self.done < self.jobs.len() {
            self.dispatch_ready()?;
            self.duplicate_stragglers()?;
            match self.evt_rx.recv_timeout(TICK) {
                Ok(ev) => self.handle_event(ev)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while the cluster owns an evt_tx clone,
                    // but a lost channel must not become a busy loop.
                    return Err(DistError::Io("coordinator event channel closed".into()));
                }
            }
        }

        // Courteous shutdown; the cluster's Drop then reaps everything,
        // including wedged workers that will never read the frame.
        let codec = self.config.stream.spill_codec;
        for s in self.cluster.shards.iter_mut().filter(|s| s.alive) {
            let _ = write_message(&mut s.stream, &Message::Shutdown, codec);
        }

        let final_node = if self.plan.rounds.is_empty() {
            0
        } else {
            n + self.plan.rounds.len() - 1
        };
        self.results[final_node]
            .take()
            .ok_or_else(|| DistError::Job("run finished without a final result".into()))
    }

    /// Hands ready jobs to idle workers, one job per worker.
    fn dispatch_ready(&mut self) -> Result<(), DistError> {
        while !self.ready.is_empty() {
            let Some(idx) = self.cluster.idle_shard() else {
                return Ok(());
            };
            let job = self.ready.pop_front().expect("checked non-empty");
            self.jobs[job as usize].queued = false;
            self.send_job(idx, job)?;
        }
        Ok(())
    }

    /// Issues at most one duplicate of each overdue job to idle workers.
    fn duplicate_stragglers(&mut self) -> Result<(), DistError> {
        let Some(after) = self.config.straggler_after else {
            return Ok(());
        };
        let overdue: Vec<u64> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| {
                !j.done
                    && !j.duplicated
                    && !j.assigned.is_empty()
                    && j.dispatched_at.is_some_and(|t| t.elapsed() >= after)
            })
            .map(|(id, _)| id as u64)
            .collect();
        for job in overdue {
            let Some(idx) = self.cluster.idle_shard() else {
                return Ok(());
            };
            self.jobs[job as usize].duplicated = true;
            self.report.straggler_redispatches += 1;
            let gen = self.cluster.shards[idx].gen;
            lane_for(&mut self.lanes, self.recorder, gen).event_with(
                "dist",
                "straggler-redispatch",
                &[("job", job)],
            );
            self.send_job(idx, job)?;
        }
        Ok(())
    }

    /// Writes one job to one worker. A failed write fails the worker
    /// (requeue + respawn) instead of the run.
    fn send_job(&mut self, idx: usize, job: u64) -> Result<(), DistError> {
        let msg = match self.jobs[job as usize].spec {
            JobSpec::Multiply { leaf } => {
                let (a, b) = &self.pairs[leaf];
                Message::Multiply {
                    job,
                    leaf: leaf as u64,
                    a: a.clone(),
                    b: b.clone(),
                }
            }
            JobSpec::Merge { round } => Message::Merge {
                job,
                round: round as u64,
                rows: self.a_rows as u64,
                cols: self.b_cols as u64,
                children: self.plan.rounds[round]
                    .children
                    .iter()
                    .map(|&c| {
                        self.results[node_id(c, self.plan.num_leaves)]
                            .clone()
                            .expect("merge dispatched before its children finished")
                    })
                    .collect(),
            },
        };
        // Book the assignment first so a failed write finds the job on
        // the worker's manifest and requeues it like any other failure.
        let gen = self.cluster.shards[idx].gen;
        self.cluster.shards[idx].busy.push(job);
        let lane = lane_for(&mut self.lanes, self.recorder, gen);
        let state = &mut self.jobs[job as usize];
        state.assigned.push(gen);
        if state.dispatched_at.is_none() {
            state.dispatched_at = Some(Instant::now());
            state.dispatch_ns = lane.now_ns();
        }
        let codec = self.config.stream.spill_codec;
        let span = lane.begin("dist", "dispatch");
        let written = write_message(&mut self.cluster.shards[idx].stream, &msg, codec);
        lane.end_with(span, &[("job", job)]);
        match written {
            Ok(bytes) => {
                self.report.wire_bytes_sent += bytes;
                self.wire_sent.add(bytes);
                self.report.dispatches += 1;
                Ok(())
            }
            Err(e) => self.fail_worker(idx, Some(e)),
        }
    }

    /// One event from a worker's reader thread.
    fn handle_event(&mut self, ev: Ev) -> Result<(), DistError> {
        let Some(idx) = self.cluster.shard_index(ev.gen) else {
            return Ok(());
        };
        if !self.cluster.shards[idx].alive {
            // Stale traffic from a worker already failed (e.g. the
            // reader's Closed after a write error killed it).
            return Ok(());
        }
        match ev.kind {
            EvKind::Msg(Message::Heartbeat, bytes) => {
                // The heartbeat's real work happened already: it reset
                // the reader thread's read deadline.
                self.report.wire_bytes_received += bytes;
                self.wire_received.add(bytes);
                Ok(())
            }
            EvKind::Msg(
                Message::Result {
                    job,
                    partial,
                    spans,
                },
                bytes,
            ) => {
                self.report.wire_bytes_received += bytes;
                self.wire_received.add(bytes);
                self.complete_job(idx, job, partial, spans)
            }
            EvKind::Msg(other, bytes) => {
                self.report.wire_bytes_received += bytes;
                self.wire_received.add(bytes);
                self.fail_worker(
                    idx,
                    Some(DistError::Frame(format!(
                        "worker {} sent an unexpected {} frame",
                        ev.gen,
                        other.kind_name()
                    ))),
                )
            }
            EvKind::Closed(reason) => self.fail_worker(idx, reason),
        }
    }

    /// Records a worker's result, frees the worker, and unblocks any
    /// merge round whose children are now all present.
    fn complete_job(
        &mut self,
        idx: usize,
        job: u64,
        partial: Csr,
        spans: Vec<WireSpan>,
    ) -> Result<(), DistError> {
        let gen = self.cluster.shards[idx].gen;
        self.cluster.shards[idx].busy.retain(|&j| j != job);
        let Some(state) = self.jobs.get_mut(job as usize) else {
            return self.fail_worker(
                idx,
                Some(DistError::Frame(format!(
                    "worker {gen} answered unknown job {job}"
                ))),
            );
        };
        state.assigned.retain(|&g| g != gen);
        if state.done {
            // The slow copy of a straggler-duplicated job: the bits are
            // identical by construction, so dropping them loses nothing.
            return Ok(());
        }
        if partial.rows() != self.a_rows || partial.cols() != self.b_cols {
            return self.fail_worker(
                idx,
                Some(DistError::Shape(format!(
                    "job {job} result is {}x{}, expected {}x{}",
                    partial.rows(),
                    partial.cols(),
                    self.a_rows,
                    self.b_cols
                ))),
            );
        }
        state.done = true;
        state.dispatched_at = None;
        let dispatch_ns = state.dispatch_ns;
        self.results[job as usize] = Some(partial);
        self.done += 1;

        if self.recorder.is_enabled() {
            let lane = lane_for(&mut self.lanes, self.recorder, gen);
            let reply_ns = lane.now_ns();
            // The worker's clock anchor differs from ours; align its
            // spans so the latest one ends at the reply's arrival —
            // a lower bound on the true offset (wire latency shifts
            // spans slightly late, never early).
            if let Some(max_end) = spans.iter().map(|s| s.end_ns).max() {
                let base = reply_ns.saturating_sub(max_end);
                lane.import_rebased(&spans, base);
            }
            // The dispatch→reply interval as one synthesized span on
            // our own timeline; the compute span nests inside it, and
            // the difference between the two is wire + queue time.
            lane.import_rebased(
                &[WireSpan {
                    name: "job".into(),
                    cat: "dist".into(),
                    start_ns: dispatch_ns,
                    end_ns: reply_ns,
                    depth: 0,
                }],
                0,
            );
        }

        // A finished node can complete the child set of exactly the
        // rounds that consume it; scanning all rounds keeps this simple.
        let n = self.plan.num_leaves;
        for (r, round) in self.plan.rounds.iter().enumerate() {
            let id = n + r;
            let state = &self.jobs[id];
            if state.done || state.queued || !state.assigned.is_empty() {
                continue;
            }
            if round
                .children
                .iter()
                .all(|&c| self.results[node_id(c, n)].is_some())
            {
                self.jobs[id].queued = true;
                self.ready.push_back(id as u64);
            }
        }
        Ok(())
    }

    /// Declares a worker dead: kills the process, requeues everything it
    /// held (bounded by `max_retries` per job), and spawns a clean
    /// replacement.
    fn fail_worker(&mut self, idx: usize, reason: Option<DistError>) -> Result<(), DistError> {
        if !self.cluster.shards[idx].alive {
            return Ok(());
        }
        let gen = self.cluster.shards[idx].gen;
        if matches!(reason, Some(DistError::Timeout(_))) {
            self.report.heartbeat_timeouts += 1;
            lane_for(&mut self.lanes, self.recorder, gen).event("dist", "heartbeat-timeout");
        }
        self.cluster.kill_shard(idx);
        let held = std::mem::take(&mut self.cluster.shards[idx].busy);
        for job in held {
            let state = &mut self.jobs[job as usize];
            state.assigned.retain(|&g| g != gen);
            if state.done || state.queued || !state.assigned.is_empty() {
                // A straggler duplicate still runs elsewhere, or the
                // result already landed — nothing to recover.
                continue;
            }
            state.retries += 1;
            self.report.retries += 1;
            lane_for(&mut self.lanes, self.recorder, gen).event_with(
                "dist",
                "retry",
                &[("job", job)],
            );
            if state.retries > self.config.max_retries {
                return Err(DistError::Job(format!(
                    "job {job} failed {} times (last worker error: {})",
                    state.retries,
                    reason.map_or_else(|| "socket closed".into(), |e| e.to_string())
                )));
            }
            state.dispatched_at = None;
            state.duplicated = false;
            state.queued = true;
            // Retried work goes to the queue's front: it is the oldest
            // and most likely to be blocking merge rounds.
            self.ready.push_front(job);
        }
        self.report.respawns += 1;
        self.cluster.spawn_worker()
    }
}
