//! The shard worker: one process, one socket, the existing pipeline.
//!
//! A worker connects to the coordinator's Unix socket, announces itself
//! with `Hello`, starts a heartbeat thread, and then serves jobs until
//! `Shutdown` or EOF:
//!
//! * **Multiply** — runs the panel pair through the *existing*
//!   [`StreamingExecutor`] pipeline as a single-panel ingest: one leaf,
//!   zero merge rounds, so the partial is exactly the bits the
//!   single-node run computes for that leaf (budget and spill settings
//!   from the shipped [`StreamConfig`] apply per shard — a zero budget
//!   spills the partial locally and streams it back, bit-exactly).
//! * **Merge** — folds the children with the same
//!   [`merge_sources`](sparch_stream::merge::merge_sources) kernel the
//!   single-node merge stage runs, in the coordinator-given child order
//!   (the Huffman plan's order), reusing one scratch across rounds.
//!
//! Both job kinds are pure functions of their message, which is what
//! makes the coordinator's retry/duplicate logic sound.
//!
//! **Fault injection** (tests only): `SPARCH_DIST_FAULT=<id>:<kind>[:<ms>]`
//! arms a fault on the worker whose generation id matches `<id>`:
//! `die` exits mid-panel after claiming a job, `mute` suppresses all
//! heartbeats and wedges on the first job (only the read deadline can
//! notice), `truncate` computes the result but writes only half its
//! frame before exiting, and `stall:<ms>` sleeps before each job while
//! heartbeats continue — a straggler, not a corpse. Respawned workers
//! never inherit the variable, so retries always land on a clean
//! process.

use crate::wire::{read_message, write_message, Message};
use crate::DistError;
use sparch_obs::{Recorder, WireSpan};
use sparch_stream::merge::{merge_sources, MergeScratch, PartialSource};
use sparch_stream::{SpillCodec, StreamConfig, StreamingExecutor};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable carrying a fault spec (see module docs).
pub const FAULT_ENV: &str = "SPARCH_DIST_FAULT";

/// An injected failure mode, parsed from [`FAULT_ENV`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Exit(3) immediately after claiming a job — death mid-panel.
    Die,
    /// Never heartbeat; wedge forever on the first job.
    Mute,
    /// Compute the result, write half its frame, exit(4).
    Truncate,
    /// Sleep this long before each job; keep heartbeating (straggler).
    Stall(Duration),
}

fn fault_for(worker: u64) -> Option<Fault> {
    let spec = std::env::var(FAULT_ENV).ok()?;
    let mut parts = spec.splitn(3, ':');
    let id: u64 = parts.next()?.parse().ok()?;
    if id != worker {
        return None;
    }
    match (parts.next()?, parts.next()) {
        ("die", _) => Some(Fault::Die),
        ("mute", _) => Some(Fault::Mute),
        ("truncate", _) => Some(Fault::Truncate),
        ("stall", Some(ms)) => Some(Fault::Stall(Duration::from_millis(ms.parse().ok()?))),
        _ => None,
    }
}

/// Entry point behind the `sparch-dist-worker` binary:
/// `<socket> <worker_id> <heartbeat_ms> <stream_config_json> [trace]`.
/// The optional trailing `trace` literal turns on per-job span
/// recording; spans ship back inside each `Result` frame.
pub fn run_from_args(args: &[String]) -> Result<(), DistError> {
    if args.len() != 4 && args.len() != 5 {
        return Err(DistError::Worker(format!(
            "expected <socket> <worker_id> <heartbeat_ms> <stream_config_json> [trace], \
             got {} args",
            args.len()
        )));
    }
    let trace = match args.get(4).map(String::as_str) {
        None => false,
        Some("trace") => true,
        Some(other) => {
            return Err(DistError::Worker(format!(
                "unknown trailing argument {other:?} (expected \"trace\")"
            )))
        }
    };
    let worker: u64 = args[1]
        .parse()
        .map_err(|_| DistError::Worker(format!("bad worker id {:?}", args[1])))?;
    let heartbeat_ms: u64 = args[2]
        .parse()
        .map_err(|_| DistError::Worker(format!("bad heartbeat interval {:?}", args[2])))?;
    let config: StreamConfig = serde_json::from_str(&args[3])
        .map_err(|e| DistError::Worker(format!("bad stream config: {e}")))?;
    run(
        Path::new(&args[0]),
        worker,
        Duration::from_millis(heartbeat_ms),
        config,
        trace,
    )
}

/// Connects to the coordinator and serves jobs until shutdown. With
/// `trace` on, each job's compute interval is recorded as a span
/// (worker-clock timestamps) and shipped in the job's `Result` frame.
pub fn run(
    socket: &Path,
    worker: u64,
    heartbeat: Duration,
    config: StreamConfig,
    trace: bool,
) -> Result<(), DistError> {
    let fault = fault_for(worker);
    let codec = config.spill_codec;
    let mut read_side = UnixStream::connect(socket)
        .map_err(|e| DistError::Io(format!("connect {}: {e}", socket.display())))?;
    let write_side = Arc::new(Mutex::new(
        read_side
            .try_clone()
            .map_err(|e| DistError::Io(e.to_string()))?,
    ));

    send(&write_side, &Message::Hello { worker }, codec)?;

    if fault != Some(Fault::Mute) {
        // The heartbeat thread shares the write lock with result sends,
        // so frames never interleave. It dies with the process (or when
        // the peer closes and the write errors out).
        let beat_side = Arc::clone(&write_side);
        std::thread::spawn(move || loop {
            std::thread::sleep(heartbeat);
            let mut w = beat_side.lock().unwrap_or_else(|e| e.into_inner());
            if write_message(&mut *w, &Message::Heartbeat, SpillCodec::Raw).is_err() {
                break;
            }
        });
    }

    let recorder = if trace {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let mut lane = recorder.thread_for("shard", worker);
    let executor = StreamingExecutor::new(config);
    let mut scratch = MergeScratch::new();
    loop {
        let msg = match read_message(&mut read_side)? {
            None | Some(Message::Shutdown) => return Ok(()),
            Some(m) => m,
        };
        match msg {
            Message::Multiply { job, leaf: _, a, b } => {
                on_job_claimed(fault);
                let span = lane.begin("dist", "compute-multiply");
                let width = a.cols();
                let (partial, _report) = executor
                    .multiply_from_panels(a.rows(), width, vec![(0..width, a)], &b)
                    .map_err(DistError::Codec)?;
                lane.end(span);
                reply(
                    &write_side,
                    job,
                    partial,
                    lane.take_wire_spans(),
                    codec,
                    fault,
                )?;
            }
            Message::Merge {
                job,
                round: _,
                rows,
                cols,
                children,
            } => {
                on_job_claimed(fault);
                let span = lane.begin("dist", "compute-merge");
                let sources: Vec<PartialSource> =
                    children.into_iter().map(PartialSource::from_csr).collect();
                let partial = merge_sources(rows as usize, cols as usize, sources, &mut scratch)
                    .map_err(DistError::Codec)?;
                lane.end(span);
                reply(
                    &write_side,
                    job,
                    partial,
                    lane.take_wire_spans(),
                    codec,
                    fault,
                )?;
            }
            other => {
                return Err(DistError::Frame(format!(
                    "worker received unexpected {} frame",
                    other.kind_name()
                )));
            }
        }
    }
}

/// Applies pre-compute faults the moment a job is claimed.
fn on_job_claimed(fault: Option<Fault>) {
    match fault {
        // Death mid-panel: the job was claimed, no result will come.
        Some(Fault::Die) => std::process::exit(3),
        // Heartbeats are already suppressed; wedge so the only signal
        // the coordinator ever gets is the read deadline expiring.
        Some(Fault::Mute) => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        Some(Fault::Stall(delay)) => std::thread::sleep(delay),
        _ => {}
    }
}

fn send(
    write_side: &Arc<Mutex<UnixStream>>,
    msg: &Message,
    codec: SpillCodec,
) -> Result<u64, DistError> {
    let mut w = write_side.lock().unwrap_or_else(|e| e.into_inner());
    write_message(&mut *w, msg, codec)
}

fn reply(
    write_side: &Arc<Mutex<UnixStream>>,
    job: u64,
    partial: sparch_sparse::Csr,
    spans: Vec<WireSpan>,
    codec: SpillCodec,
    fault: Option<Fault>,
) -> Result<(), DistError> {
    let msg = Message::Result {
        job,
        partial,
        spans,
    };
    if fault == Some(Fault::Truncate) {
        // Serialize the full frame, put half of it on the wire, vanish:
        // the coordinator sees a mid-frame EOF on a claimed job.
        let mut frame = Vec::new();
        write_message(&mut frame, &msg, codec)?;
        use std::io::Write;
        let mut w = write_side.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.write_all(&frame[..frame.len() / 2]);
        let _ = w.flush();
        std::process::exit(4);
    }
    send(write_side, &msg, codec)?;
    Ok(())
}
