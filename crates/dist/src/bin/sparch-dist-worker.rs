//! Shard worker process for `sparch-dist`.
//!
//! Spawned by [`sparch_dist::DistCoordinator`]; not meant to be invoked
//! by hand. Usage:
//!
//! ```text
//! sparch-dist-worker <socket> <worker_id> <heartbeat_ms> <stream_config_json>
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = sparch_dist::worker::run_from_args(&args) {
        eprintln!("sparch-dist-worker: {e}");
        std::process::exit(1);
    }
}
