//! Distributed panel sharding for the SpArch reproduction.
//!
//! The streaming executor already decomposes `A · B` into the paper's
//! outer-product panels — `A`'s column panels times `B`'s matching row
//! panels — and folds the partials with a k-ary Huffman merge plan whose
//! weights (per-panel `A` non-zeros) are fixed by the split alone. That
//! structure is what makes distribution safe: this crate ships the same
//! panel pairs to **shard worker processes** over Unix sockets, runs the
//! same per-panel multiply pipeline on each shard, and tree-reduces the
//! shard partials with the *same* Huffman plan — so the result is
//! **bit-identical to the single-node run at every shard count**, under
//! every fault the coordinator can recover from.
//!
//! ```text
//!  DistCoordinator                         sparch-dist-worker (× shards)
//!  ├─ split A/B into panel pairs   ──────▶ connect, Hello, heartbeat thread
//!  ├─ huffman_plan(per-panel nnz)  jobs    loop {
//!  ├─ dispatch Multiply/Merge jobs ──────▶   Multiply → StreamingExecutor
//!  │    (idempotent, 1 per worker)           Merge    → merge_sources
//!  ├─ per-worker reader thread     ◀──────   Result / Heartbeat
//!  │    (read deadline = heartbeat loss)   }
//!  └─ retry / respawn / straggler dup      Shutdown → exit
//! ```
//!
//! **Fault model.** Every job is idempotent — a multiply is a pure
//! function of its panel pair, a merge of its ordered children — so the
//! coordinator recovers from any worker failure by re-running the job on
//! a fresh worker: process death (socket EOF mid-job), heartbeat loss
//! (read deadline with no traffic), and truncated/corrupt result frames
//! all follow the same requeue-and-respawn path, bounded by
//! `max_retries` per job. A straggler (job outstanding past
//! `straggler_after` with an idle worker available) is *duplicated*, not
//! killed: first result wins, and because jobs are deterministic both
//! copies carry identical bits, so the race is benign by construction.
//!
//! **Wire format.** Frames are length-prefixed ([`wire`]) and matrices
//! travel as SPM2 spill-codec blocks ([`sparch_stream::spill`]) decoded
//! by an untrusting validator — corruption surfaces as a typed
//! [`DistError`], never a panic or a hang.

pub mod coordinator;
pub mod wire;
pub mod worker;

pub use coordinator::{DistConfig, DistCoordinator, DistReport};
pub use wire::{read_message, write_message, Message};

use sparch_stream::StreamError;
use std::fmt;

/// Errors from the distributed layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A wire frame was malformed: bad magic, unknown kind, truncated
    /// mid-frame, oversized declared length, or trailing garbage.
    Frame(String),
    /// A matrix block inside a frame failed the spill codec's
    /// untrusting validation.
    Codec(StreamError),
    /// Socket or process I/O failed outside a frame boundary.
    Io(String),
    /// A worker process could not be spawned, found, or identified.
    Worker(String),
    /// A read deadline expired — the worker stopped heartbeating.
    Timeout(String),
    /// A job exhausted its retries or the run lost all workers.
    Job(String),
    /// Shard inputs disagree with the declared operand shapes.
    Shape(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Frame(msg) => write!(f, "dist frame error: {msg}"),
            DistError::Codec(e) => write!(f, "dist codec error: {e}"),
            DistError::Io(msg) => write!(f, "dist i/o error: {msg}"),
            DistError::Worker(msg) => write!(f, "dist worker error: {msg}"),
            DistError::Timeout(msg) => write!(f, "dist timeout: {msg}"),
            DistError::Job(msg) => write!(f, "dist job error: {msg}"),
            DistError::Shape(msg) => write!(f, "dist shape error: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<StreamError> for DistError {
    fn from(e: StreamError) -> Self {
        DistError::Codec(e)
    }
}
