//! Fault-injection harness: every failure class the coordinator claims
//! to survive, exercised against a real fleet.
//!
//! Each test arms one fault on worker 0 via the `SPARCH_DIST_FAULT`
//! environment variable (only initial workers inherit it — respawns are
//! clean by construction) and then asserts two things: the final CSR is
//! **bit-identical** to the single-node streaming run, and the
//! coordinator's report records the recovery it performed (retries,
//! respawns, heartbeat timeouts, straggler duplicates).

mod common;

use common::{assert_bits_equal, dist_config};
use sparch_dist::{DistConfig, DistCoordinator};
use sparch_sparse::{gen, Csr};
use sparch_stream::{StreamConfig, StreamingExecutor};
use std::time::Duration;

fn operands() -> (Csr, Csr) {
    (
        gen::uniform_random(48, 40, 520, 81),
        gen::uniform_random(40, 44, 480, 82),
    )
}

/// Single-node reference under the same stream config.
fn reference(a: &Csr, b: &Csr, stream: &StreamConfig) -> Csr {
    StreamingExecutor::new(stream.clone())
        .multiply(a, b)
        .expect("single-node reference run")
        .0
}

fn faulty_config(fault: &str) -> DistConfig {
    DistConfig {
        stream: StreamConfig {
            panels: 4,
            ..StreamConfig::pinned()
        },
        fault: Some(fault.into()),
        ..dist_config(2)
    }
}

#[test]
fn worker_killed_mid_panel_is_retried_on_a_fresh_worker() {
    let (a, b) = operands();
    let cfg = faulty_config("0:die");
    let expected = reference(&a, &b, &cfg.stream);
    let (c, report) = DistCoordinator::new(cfg)
        .multiply(&a, &b)
        .expect("run must survive a worker death");
    assert_bits_equal(&c, &expected, "death mid-panel");
    assert!(
        report.retries >= 1,
        "the dead worker's job must be retried, report: {report:?}"
    );
    assert!(
        report.respawns >= 1,
        "a replacement worker must be spawned, report: {report:?}"
    );
}

#[test]
fn dropped_heartbeat_is_detected_by_the_read_deadline() {
    let (a, b) = operands();
    // The mute worker never heartbeats and wedges on its first job, so
    // the *only* signal is the reader's deadline expiring. Short
    // timeout keeps the test quick; the interval stays well under it so
    // healthy workers are never misdeclared.
    let cfg = DistConfig {
        heartbeat_interval: Duration::from_millis(20),
        heartbeat_timeout: Duration::from_millis(300),
        ..faulty_config("0:mute")
    };
    let expected = reference(&a, &b, &cfg.stream);
    let (c, report) = DistCoordinator::new(cfg)
        .multiply(&a, &b)
        .expect("run must survive a muted worker");
    assert_bits_equal(&c, &expected, "dropped heartbeat");
    assert!(
        report.heartbeat_timeouts >= 1,
        "silence must be detected as a timeout, report: {report:?}"
    );
    assert!(report.retries >= 1, "report: {report:?}");
    assert!(report.respawns >= 1, "report: {report:?}");
}

#[test]
fn truncated_result_stream_is_a_typed_failure_and_retried() {
    let (a, b) = operands();
    // The worker computes the right answer, writes half the result
    // frame, and exits: the coordinator must treat the mid-frame EOF as
    // that worker's failure — never parse a partial frame — and rerun
    // the job elsewhere.
    let cfg = faulty_config("0:truncate");
    let expected = reference(&a, &b, &cfg.stream);
    let (c, report) = DistCoordinator::new(cfg)
        .multiply(&a, &b)
        .expect("run must survive a truncated result");
    assert_bits_equal(&c, &expected, "truncated result stream");
    assert!(report.retries >= 1, "report: {report:?}");
    assert!(report.respawns >= 1, "report: {report:?}");
}

#[test]
fn recovery_survives_every_budgeted_spill_path_too() {
    // Same death fault, but with a zero budget the surviving workers
    // spill every partial locally and stream it back — recovery and
    // out-of-core operation compose.
    let (a, b) = operands();
    let mut cfg = faulty_config("0:die");
    cfg.stream.budget = sparch_stream::MemoryBudget::from_bytes(0);
    let expected = reference(&a, &b, &cfg.stream);
    let (c, report) = DistCoordinator::new(cfg)
        .multiply(&a, &b)
        .expect("run must survive death with spilling enabled");
    assert_bits_equal(&c, &expected, "death with zero budget");
    assert!(report.retries >= 1, "report: {report:?}");
}

#[test]
fn job_that_always_fails_exhausts_retries_with_a_typed_error() {
    let (a, b) = operands();
    // A single shard with a die fault and zero retries: the first
    // failure must surface as DistError::Job, not a hang or a panic.
    let cfg = DistConfig {
        max_retries: 0,
        ..faulty_config("0:die")
    };
    let cfg = DistConfig { shards: 1, ..cfg };
    match DistCoordinator::new(cfg).multiply(&a, &b) {
        Err(sparch_dist::DistError::Job(msg)) => {
            assert!(msg.contains("failed"), "job error should say so: {msg}");
        }
        other => panic!("expected DistError::Job, got {other:?}"),
    }
}
