//! Bit-identity of the distributed backend against the single-node
//! streaming pipeline — the property the whole design exists to keep.
//!
//! The coordinator splits panels and builds the Huffman plan exactly as
//! [`StreamingExecutor::multiply`] does, and the workers run the same
//! kernels in the plan's fold order, so the result must match the
//! single-node run *bit for bit* — not to tolerance — at every shard
//! count, panel count, merge-worker count and memory budget, and even
//! when a straggler forces a duplicate dispatch.

mod common;

use common::{assert_bits_equal, dist_config};
use sparch_dist::{DistConfig, DistCoordinator};
use sparch_sparse::{algo, gen, Csr};
use sparch_stream::{MemoryBudget, StreamConfig, StreamingExecutor};
use std::time::Duration;

/// Float-valued operands: panel regrouping would drift through a naive
/// reduction, so bit-equality here certifies the shared fold order.
fn float_pair() -> (Csr, Csr) {
    (
        gen::uniform_random(48, 40, 500, 71),
        gen::uniform_random(40, 44, 450, 72),
    )
}

#[test]
fn grid_of_shards_panels_workers_and_budgets_is_bit_identical() {
    let (a, b) = float_pair();
    for budget in [MemoryBudget::from_bytes(0), MemoryBudget::unbounded()] {
        for panels in 1..=6 {
            let base = StreamConfig {
                budget,
                panels,
                ..StreamConfig::pinned()
            };
            let tag = format!("budget={:?} panels={panels}", budget.bytes());
            let (reference, _) = StreamingExecutor::new(StreamConfig {
                merge_workers: Some(1),
                ..base.clone()
            })
            .multiply(&a, &b)
            .expect("single-node reference run");
            let (two_merge_workers, _) = StreamingExecutor::new(StreamConfig {
                merge_workers: Some(2),
                ..base.clone()
            })
            .multiply(&a, &b)
            .expect("two-merge-worker run");
            assert_bits_equal(&reference, &two_merge_workers, &format!("{tag} mw=2"));

            for shards in [1usize, 2, 4, 8] {
                let cfg = DistConfig {
                    stream: base.clone(),
                    ..dist_config(shards)
                };
                let (c, report) = DistCoordinator::new(cfg)
                    .multiply(&a, &b)
                    .unwrap_or_else(|e| panic!("{tag} shards={shards}: {e}"));
                assert_bits_equal(&c, &reference, &format!("{tag} shards={shards}"));
                assert_eq!(report.output_nnz as usize, reference.nnz());
                assert_eq!(report.retries, 0, "{tag}: clean runs never retry");
                assert_eq!(report.respawns, 0, "{tag}: clean runs never respawn");
            }
        }
    }
}

#[test]
fn integer_operands_match_gustavson_exactly_through_the_fleet() {
    // Integer-valued entries make every fold order exact, so the
    // distributed result must equal the dense-reference product — and
    // the single-node pipeline — with zero tolerance.
    let strategy = gen::arb::spgemm_pair(40, 400, gen::arb::ValueClass::SmallInt);
    for seed in [5u64, 17, 23] {
        let (a, b) = gen::arb::sample(&strategy, seed);
        let (c, _) = DistCoordinator::new(dist_config(3))
            .multiply(&a, &b)
            .expect("distributed run");
        let (single, _) = StreamingExecutor::new(StreamConfig::pinned())
            .multiply(&a, &b)
            .expect("single-node run");
        assert_bits_equal(&c, &single, &format!("seed {seed} dist vs single-node"));
        assert_eq!(c, algo::gustavson(&a, &b), "seed {seed} dist vs gustavson");
    }
}

#[test]
fn empty_and_degenerate_shapes_short_circuit() {
    // An all-empty A prunes every panel: no fleet is spawned, and the
    // result is the empty product, same as the single-node executor.
    let a = Csr::zero(9, 7);
    let b = gen::uniform_random(7, 5, 20, 3);
    let (c, report) = DistCoordinator::new(dist_config(4))
        .multiply(&a, &b)
        .expect("empty product");
    assert_eq!(c, Csr::zero(9, 5));
    assert_eq!(report.partials, 0);
    assert_eq!(report.dispatches, 0);
}

#[test]
fn injected_straggler_changes_timing_but_not_bits() {
    let (a, b) = float_pair();
    let base = StreamConfig {
        panels: 4,
        ..StreamConfig::pinned()
    };
    let (reference, _) = StreamingExecutor::new(base.clone())
        .multiply(&a, &b)
        .expect("single-node reference run");
    // Worker 0 sleeps 400 ms before every job while heartbeating
    // normally; the coordinator must route around it by duplicating the
    // overdue job onto an idle worker — never by killing it.
    let cfg = DistConfig {
        stream: base,
        straggler_after: Some(Duration::from_millis(50)),
        fault: Some("0:stall:400".into()),
        ..dist_config(2)
    };
    let (c, report) = DistCoordinator::new(cfg)
        .multiply(&a, &b)
        .expect("straggler run");
    assert_bits_equal(&c, &reference, "straggler run");
    assert!(
        report.straggler_redispatches >= 1,
        "expected at least one straggler duplicate, report: {report:?}"
    );
    assert_eq!(
        report.heartbeat_timeouts, 0,
        "a heartbeating straggler must not be declared dead"
    );
}
