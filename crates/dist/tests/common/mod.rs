//! Shared helpers for the `sparch-dist` integration suites.

use sparch_dist::DistConfig;
use sparch_sparse::Csr;
use std::path::PathBuf;

/// The worker binary cargo built for this test run — handed to the
/// coordinator explicitly so tests never depend on `$PATH` or the
/// executable-adjacent fallback.
pub fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sparch-dist-worker"))
}

/// A pinned distributed config wired to the test worker binary.
pub fn dist_config(shards: usize) -> DistConfig {
    DistConfig {
        worker: Some(worker_bin()),
        ..DistConfig::pinned(shards)
    }
}

/// Asserts two matrices are equal down to the bit pattern of every
/// stored value — stricter than `==` (which would accept `0.0 == -0.0`)
/// and the whole point of the shared-plan design.
pub fn assert_bits_equal(x: &Csr, y: &Csr, what: &str) {
    assert_eq!(x.rows(), y.rows(), "{what}: row count");
    assert_eq!(x.cols(), y.cols(), "{what}: col count");
    assert_eq!(x.nnz(), y.nnz(), "{what}: nnz");
    for r in 0..x.rows() {
        let (xc, xv) = x.row(r);
        let (yc, yv) = y.row(r);
        assert_eq!(xc, yc, "{what}: row {r} column pattern");
        for (i, (a, b)) in xv.iter().zip(yv.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what}: row {r} entry {i} ({a} vs {b})"
            );
        }
    }
}
