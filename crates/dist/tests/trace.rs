//! End-to-end tracing for a distributed run.
//!
//! A two-shard run with an enabled recorder must record, per worker
//! lane: a `dispatch` span per job write, a synthesized `job` span
//! covering dispatch→reply, and the worker-side `compute-multiply` /
//! `compute-merge` spans shipped back in `Result` frames and re-based
//! onto the coordinator's timeline. Wire-byte counters must equal the
//! report's wire accounting, and the Chrome export must parse.

mod common;

use common::{assert_bits_equal, dist_config};
use serde_json::Value;
use sparch_dist::DistCoordinator;
use sparch_obs::{chrome_trace_json, Recorder};
use sparch_sparse::{algo, gen, linalg};

#[test]
fn two_shard_run_traces_dispatch_compute_and_reply() {
    let a = linalg::map_values(&gen::uniform_random(72, 72, 500, 51), |v| (v * 4.0).round());
    let b = linalg::map_values(&gen::uniform_random(72, 60, 400, 52), |v| (v * 4.0).round());

    let mut config = dist_config(2);
    config.stream.panels = 6;
    let coordinator = DistCoordinator::new(config).with_recorder(Recorder::enabled());
    let (c, report) = coordinator.multiply(&a, &b).unwrap();
    assert_bits_equal(&c, &algo::gustavson(&a, &b), "traced dist run");
    assert_eq!(
        report.schema_version,
        sparch_dist::DistReport::SCHEMA_VERSION
    );

    let trace = coordinator.recorder().drain("dist");

    // Every dispatch wrote one dispatch span; every job produced one
    // dispatch→reply span; every job's compute span came back over the
    // wire (multiply leaves + merge rounds).
    let jobs = report.partials as u64 + report.merge_rounds;
    assert_eq!(trace.count_named("dispatch") as u64, report.dispatches);
    assert_eq!(trace.count_named("job") as u64, jobs);
    assert!(trace.count_named("compute-multiply") >= report.partials);
    assert!(trace.count_named("compute-merge") as u64 >= report.merge_rounds);

    // Re-based worker spans sit inside their job span's interval: for
    // each lane, every compute span is contained in *some* job span.
    for compute in trace
        .spans
        .iter()
        .filter(|s| s.name.starts_with("compute-"))
    {
        assert!(
            trace.spans.iter().any(|j| j.name == "job"
                && j.tid == compute.tid
                && j.start_ns <= compute.start_ns
                && compute.end_ns <= j.end_ns),
            "re-based {} span escapes every job span on its lane",
            compute.name
        );
    }

    // One lane per worker generation, labelled worker-<gen>.
    assert!(
        trace
            .threads
            .iter()
            .filter(|t| t.label.starts_with("worker-"))
            .count()
            >= 2
    );

    // Wire counters mirror the report's byte accounting exactly.
    assert_eq!(
        trace.metrics.counter("dist.wire_bytes_sent"),
        report.wire_bytes_sent
    );
    assert_eq!(
        trace.metrics.counter("dist.wire_bytes_received"),
        report.wire_bytes_received
    );

    // The Chrome export parses and carries the dist categories.
    let json = chrome_trace_json(&trace);
    let root: Value = serde_json::from_str(&json).expect("exporter must emit valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    for name in ["dispatch", "job", "compute-multiply"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Value::as_str) == Some(name)),
            "no {name} event in the Chrome export"
        );
    }

    // The deterministic view drops the scheduling-dependent counters.
    let view = report.without_timing();
    assert_eq!(view.dispatches, 0);
    assert_eq!(view.wire_bytes_sent, 0);
    assert_eq!(view.output_nnz, report.output_nnz);
}

#[test]
fn untraced_run_ships_no_spans_and_empty_trace() {
    let a = linalg::map_values(&gen::uniform_random(32, 32, 150, 53), |v| (v * 4.0).round());
    let coordinator = DistCoordinator::new(dist_config(2));
    let (c, _) = coordinator.multiply(&a, &a).unwrap();
    assert_bits_equal(&c, &algo::gustavson(&a, &a), "untraced dist run");
    let trace = coordinator.recorder().drain("dist");
    assert!(trace.spans.is_empty() && trace.threads.is_empty());
}
