//! Wire-framing properties across a *real* process boundary, plus the
//! read-deadline guarantee the liveness detector rests on.
//!
//! The in-memory corruption grid (truncation at every byte, bad magic,
//! lying lengths, corrupt matrix blocks) lives in `src/wire.rs`'s unit
//! tests; these tests put actual Unix sockets and worker processes on
//! the other end of the frame.

mod common;

use common::{assert_bits_equal, dist_config};
use sparch_dist::{read_message, DistCoordinator, DistError};
use sparch_sparse::gen;
use sparch_stream::StreamConfig;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

#[test]
fn frames_round_trip_through_a_worker_process_over_the_arb_grid() {
    // Every panel pair crosses the socket to a worker and every partial
    // crosses back, so a 1-shard distributed run over the shared `arb`
    // strategies is an end-to-end SPM2 round-trip at process scope:
    // any wire corruption or codec asymmetry would break bit-equality
    // with the in-process pipeline.
    let strategy = gen::arb::spgemm_pair(24, 220, gen::arb::ValueClass::Float);
    let exec = sparch_stream::StreamingExecutor::new(StreamConfig::pinned());
    for seed in 0..6u64 {
        let (a, b) = gen::arb::sample(&strategy, seed);
        let (expected, _) = exec.multiply(&a, &b).expect("single-node run");
        let coordinator = DistCoordinator::new(dist_config(1));
        let (c, report) = coordinator
            .multiply(&a, &b)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_bits_equal(&c, &expected, &format!("arb seed {seed}"));
        if report.partials > 0 {
            assert!(
                report.wire_bytes_sent > 0 && report.wire_bytes_received > 0,
                "seed {seed}: the result did not cross the wire? report: {report:?}"
            );
        }
    }
}

#[test]
fn read_deadline_turns_silence_into_a_typed_timeout() {
    // The coordinator's liveness detector is exactly this: read_message
    // on a socket with a read timeout. A silent peer must produce
    // DistError::Timeout at (roughly) the deadline — not a hang, and
    // not a generic I/O error.
    let (reader, _writer) = UnixStream::pair().expect("socketpair");
    reader
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("set read timeout");
    let mut reader = reader;
    let start = Instant::now();
    match read_message(&mut reader) {
        Err(DistError::Timeout(_)) => {}
        other => panic!("expected a timeout, got {other:?}"),
    }
    let waited = start.elapsed();
    assert!(
        waited >= Duration::from_millis(80),
        "deadline fired early: {waited:?}"
    );
    assert!(
        waited < Duration::from_secs(5),
        "deadline nowhere near the configured 100ms: {waited:?}"
    );
}

#[test]
fn mid_frame_silence_also_hits_the_deadline() {
    // A peer that sends half a header and stalls must not pin the
    // reader: each read in the frame assembly inherits the deadline.
    let (reader, mut writer) = UnixStream::pair().expect("socketpair");
    reader
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("set read timeout");
    writer.write_all(&[0x31, 0x44]).expect("partial magic");
    writer.flush().expect("flush");
    let mut reader = reader;
    match read_message(&mut reader) {
        Err(DistError::Timeout(_)) => {}
        other => panic!("expected a timeout, got {other:?}"),
    }
}

#[test]
fn garbage_from_a_peer_is_a_typed_frame_error() {
    let (reader, mut writer) = UnixStream::pair().expect("socketpair");
    writer
        .write_all(b"this is not a SPD1 frame at all........")
        .expect("write garbage");
    writer.flush().expect("flush");
    drop(writer);
    let mut reader = reader;
    match read_message(&mut reader) {
        Err(DistError::Frame(msg)) => {
            assert!(msg.contains("magic"), "should blame the magic: {msg}");
        }
        other => panic!("expected a frame error, got {other:?}"),
    }
}
