//! Bounded FIFO with occupancy statistics.
//!
//! FIFOs appear throughout the paper's datapath: every merge-tree node is
//! "a FIFO on the hardware" (§II-A3), the look-ahead FIFO feeds the
//! distance-list builder (8192 elements, Table I), and the partial-matrix
//! writer buffers 1024 elements before DRAM. The simulator uses this type
//! for all of them; the recorded statistics feed the SRAM energy model.

/// A bounded FIFO queue instrumented with push/pop counts and a high-water
/// mark.
///
/// # Example
///
/// ```
/// use sparch_mem::Fifo;
///
/// let mut f: Fifo<u32> = Fifo::new(2);
/// assert!(f.push(1).is_ok());
/// assert!(f.push(2).is_ok());
/// assert!(f.push(3).is_err()); // full: the value comes back
/// assert_eq!(f.pop(), Some(1));
/// assert_eq!(f.high_water_mark(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    queue: std::collections::VecDeque<T>,
    capacity: usize,
    pushes: u64,
    pops: u64,
    rejected: u64,
    high_water: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Fifo {
            queue: std::collections::VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            pushes: 0,
            pops: 0,
            rejected: 0,
            high_water: 0,
        }
    }

    /// Maximum number of items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the FIFO holds no items.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Remaining slots.
    pub fn free(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Pushes an item, returning it back as `Err` if the FIFO is full
    /// (hardware backpressure — the producer must stall).
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(item);
        }
        self.queue.push_back(item);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.queue.len());
        Ok(())
    }

    /// Pops the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.queue.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Peeks at the oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Drains up to `n` items from the front.
    pub fn pop_n(&mut self, n: usize) -> Vec<T> {
        let take = n.min(self.queue.len());
        self.pops += take as u64;
        self.queue.drain(..take).collect()
    }

    /// Total successful pushes (feeds the SRAM write-energy model).
    pub fn total_pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful pops (feeds the SRAM read-energy model).
    pub fn total_pops(&self) -> u64 {
        self.pops
    }

    /// Pushes rejected due to a full queue (backpressure events).
    pub fn total_rejected(&self) -> u64 {
        self.rejected
    }

    /// Highest occupancy ever observed.
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }
}

impl<T> Extend<T> for Fifo<T> {
    /// Pushes items until the FIFO fills; excess items are dropped and
    /// counted as rejected.
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            let _ = self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_fifo() {
        let mut f = Fifo::new(4);
        f.push(10).unwrap();
        f.push(20).unwrap();
        f.push(30).unwrap();
        assert_eq!(f.pop(), Some(10));
        assert_eq!(f.pop(), Some(20));
        assert_eq!(f.peek(), Some(&30));
        assert_eq!(f.pop(), Some(30));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn backpressure_and_stats() {
        let mut f = Fifo::new(2);
        assert!(f.push(1).is_ok());
        assert!(f.push(2).is_ok());
        assert_eq!(f.push(3), Err(3));
        assert_eq!(f.total_rejected(), 1);
        assert_eq!(f.total_pushes(), 2);
        assert!(f.is_full());
        f.pop();
        assert!(!f.is_full());
        assert_eq!(f.free(), 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = Fifo::new(10);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        f.push(3).unwrap();
        assert_eq!(f.high_water_mark(), 2);
    }

    #[test]
    fn pop_n_drains_in_order() {
        let mut f = Fifo::new(8);
        f.extend(0..5);
        assert_eq!(f.pop_n(3), vec![0, 1, 2]);
        assert_eq!(f.pop_n(10), vec![3, 4]);
        assert_eq!(f.total_pops(), 5);
    }

    #[test]
    fn extend_drops_overflow() {
        let mut f = Fifo::new(3);
        f.extend(0..10);
        assert_eq!(f.len(), 3);
        assert_eq!(f.total_rejected(), 7);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new(0);
    }
}
