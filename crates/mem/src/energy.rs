//! Energy model.
//!
//! The paper's methodology (§III-A) is *constants × activity counts*:
//! Design Compiler + SAIF toggle rates for the merger logic, Galal &
//! Horowitz for the floating-point units, CACTI for SRAM/FIFOs, and the
//! published HBM2 figure of 42.6 GB/s/W for DRAM. We keep that structure:
//! the simulator produces [`ActivityCounts`], and [`EnergyModel`] applies
//! per-event constants calibrated to reproduce the paper's Table III and
//! Figure 13(b) breakdowns at the default configuration.

use serde::{Deserialize, Serialize};

/// Event counts produced by a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// Double-precision multiplications in the multiplier array.
    pub multiplies: u64,
    /// Double-precision additions (the adder stage after each merger).
    pub adds: u64,
    /// 64-bit comparator evaluations inside the comparator arrays.
    pub comparator_ops: u64,
    /// Elements moved through merge-tree FIFOs (one push + one pop each).
    pub merge_tree_elements: u64,
    /// Bytes read or written in the prefetch row buffer.
    pub buffer_bytes: u64,
    /// Elements through the MatA column fetcher (look-ahead FIFO).
    pub fetcher_elements: u64,
    /// Elements through the partial-matrix writer FIFO.
    pub writer_elements: u64,
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
}

impl ActivityCounts {
    /// Sums two activity profiles.
    pub fn merge(&mut self, other: &ActivityCounts) {
        self.multiplies += other.multiplies;
        self.adds += other.adds;
        self.comparator_ops += other.comparator_ops;
        self.merge_tree_elements += other.merge_tree_elements;
        self.buffer_bytes += other.buffer_bytes;
        self.fetcher_elements += other.fetcher_elements;
        self.writer_elements += other.writer_elements;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
    }
}

/// Per-event energy constants in picojoules.
///
/// Defaults are calibrated for TSMC 40 nm as in the paper: floating-point
/// constants follow Galal & Horowitz [30]; SRAM/FIFO constants are
/// CACTI-class numbers for the small (KB-range) buffers in Table I; DRAM
/// uses the paper's 42.6 GB/s/W (≈ 23.5 pJ/B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// pJ per double-precision multiply.
    pub pj_per_multiply: f64,
    /// pJ per double-precision add.
    pub pj_per_add: f64,
    /// pJ per 64-bit comparator evaluation (including the mux/output path).
    pub pj_per_comparator_op: f64,
    /// pJ per element pushed+popped through a merge-tree FIFO
    /// (16-byte stream element, read + write).
    pub pj_per_merge_element: f64,
    /// pJ per byte accessed in the prefetch row buffer.
    pub pj_per_buffer_byte: f64,
    /// pJ per element through the column fetcher's look-ahead FIFO.
    pub pj_per_fetcher_element: f64,
    /// pJ per element through the partial-matrix writer FIFO.
    pub pj_per_writer_element: f64,
    /// pJ per DRAM byte (read or write).
    pub pj_per_dram_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Calibrated so a suite-average run reproduces the component
        // proportions of Figure 13(b) (merge tree ~55 %, HBM ~26 %,
        // prefetcher ~14 %) and Table III's 0.89 nJ/FLOP overall. The
        // merge-element and buffer constants are *effective* values: they
        // amortize tag lookups, next-use reduction trees and partially
        // used line fills over the useful bytes the simulator counts.
        EnergyModel {
            pj_per_multiply: 12.0,
            pj_per_add: 13.0,
            pj_per_comparator_op: 2.5,
            pj_per_merge_element: 55.0,
            pj_per_buffer_byte: 6.0,
            pj_per_fetcher_element: 400.0,
            pj_per_writer_element: 30.0,
            pj_per_dram_byte: 1e12 / 42.6e9, // 42.6 GB/s/W
        }
    }
}

/// Energy attributed to each architectural component, in joules, following
/// the paper's Figure 13(b) component list.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MatA column fetcher.
    pub column_fetcher: f64,
    /// MatB row prefetcher (buffer accesses).
    pub row_prefetcher: f64,
    /// Multiplier array.
    pub multiplier_array: f64,
    /// Merge tree (comparators + adders + FIFOs) — the dominant consumer.
    pub merge_tree: f64,
    /// Partial-matrix writer.
    pub partial_writer: f64,
    /// HBM dynamic energy.
    pub hbm: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.column_fetcher
            + self.row_prefetcher
            + self.multiplier_array
            + self.merge_tree
            + self.partial_writer
            + self.hbm
    }

    /// Table III style aggregation: (computation, SRAM, DRAM) in joules.
    /// Computation = multipliers + merge-tree logic; SRAM = fetcher,
    /// prefetcher and writer buffers.
    pub fn by_category(&self) -> (f64, f64, f64) {
        (
            self.multiplier_array + self.merge_tree,
            self.column_fetcher + self.row_prefetcher + self.partial_writer,
            self.hbm,
        )
    }
}

impl EnergyModel {
    /// Applies the constants to an activity profile.
    pub fn estimate(&self, a: &ActivityCounts) -> EnergyBreakdown {
        let pj = EnergyBreakdown {
            column_fetcher: a.fetcher_elements as f64 * self.pj_per_fetcher_element,
            row_prefetcher: a.buffer_bytes as f64 * self.pj_per_buffer_byte,
            multiplier_array: a.multiplies as f64 * self.pj_per_multiply,
            merge_tree: a.comparator_ops as f64 * self.pj_per_comparator_op
                + a.adds as f64 * self.pj_per_add
                + a.merge_tree_elements as f64 * self.pj_per_merge_element,
            partial_writer: a.writer_elements as f64 * self.pj_per_writer_element,
            hbm: (a.dram_read_bytes + a.dram_write_bytes) as f64 * self.pj_per_dram_byte,
        };
        // pJ → J
        EnergyBreakdown {
            column_fetcher: pj.column_fetcher * 1e-12,
            row_prefetcher: pj.row_prefetcher * 1e-12,
            multiplier_array: pj.multiplier_array * 1e-12,
            merge_tree: pj.merge_tree * 1e-12,
            partial_writer: pj.partial_writer * 1e-12,
            hbm: pj.hbm * 1e-12,
        }
    }

    /// Energy per FLOP in nanojoules given total flops (the paper counts
    /// one multiply + one add per intermediate product, Table III).
    pub fn nj_per_flop(&self, a: &ActivityCounts, flops: u64) -> f64 {
        if flops == 0 {
            0.0
        } else {
            self.estimate(a).total() * 1e9 / flops as f64
        }
    }

    /// The paper's published per-component *power* breakdown in milliwatts
    /// (Figure 13(b)), for report comparison columns.
    pub fn paper_power_breakdown_mw() -> [(&'static str, f64); 6] {
        [
            ("column_fetcher", 101.39),
            ("row_prefetcher", 1155.72),
            ("multiplier_array", 73.10),
            ("merge_tree", 4738.47),
            ("partial_writer", 243.04),
            ("hbm", 2240.4),
        ]
    }

    /// The paper's published Table III per-FLOP energies in nJ for SpArch:
    /// (computation, SRAM, DRAM, overall).
    pub fn paper_nj_per_flop() -> (f64, f64, f64, f64) {
        (0.26, 0.34, 0.29, 0.89)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_activity() -> ActivityCounts {
        ActivityCounts {
            multiplies: 1000,
            adds: 500,
            comparator_ops: 250_000,
            merge_tree_elements: 12_000,
            buffer_bytes: 120_000,
            fetcher_elements: 1000,
            writer_elements: 1500,
            dram_read_bytes: 1_000_000,
            dram_write_bytes: 500_000,
        }
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let model = EnergyModel::default();
        let b = model.estimate(&sample_activity());
        let sum = b.column_fetcher
            + b.row_prefetcher
            + b.multiplier_array
            + b.merge_tree
            + b.partial_writer
            + b.hbm;
        assert!((b.total() - sum).abs() < 1e-18);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn dram_constant_matches_42_6_gbs_per_watt() {
        let model = EnergyModel::default();
        // 42.6 GB moved should cost ~1 J.
        let a = ActivityCounts {
            dram_read_bytes: 42_600_000_000,
            ..Default::default()
        };
        let e = model.estimate(&a);
        assert!((e.hbm - 1.0).abs() < 1e-6, "got {}", e.hbm);
    }

    #[test]
    fn category_split_is_partition() {
        let model = EnergyModel::default();
        let b = model.estimate(&sample_activity());
        let (comp, sram, dram) = b.by_category();
        assert!((comp + sram + dram - b.total()).abs() < 1e-18);
    }

    #[test]
    fn energy_scales_linearly_with_activity() {
        let model = EnergyModel::default();
        let a = sample_activity();
        let mut doubled = a;
        doubled.merge(&a);
        let e1 = model.estimate(&a).total();
        let e2 = model.estimate(&doubled).total();
        assert!((e2 - 2.0 * e1).abs() < 1e-15);
    }

    #[test]
    fn nj_per_flop_is_in_paper_ballpark() {
        // An activity mix resembling the evaluation average: per multiply,
        // roughly one add, a few hundred comparator ops (16x16 array over
        // 6 layers), ~12 merge elements, a couple of DRAM bytes/flop.
        let m = 1_000_000u64;
        let a = ActivityCounts {
            multiplies: m,
            adds: m / 2,
            comparator_ops: 160 * m,
            merge_tree_elements: 9 * m,
            buffer_bytes: 12 * m,
            fetcher_elements: m / 50,
            writer_elements: 2 * m,
            dram_read_bytes: 7 * m,
            dram_write_bytes: 5 * m,
        };
        let flops = 2 * m;
        let nj = EnergyModel::default().nj_per_flop(&a, flops);
        let (_, _, _, paper) = EnergyModel::paper_nj_per_flop();
        assert!(
            nj > paper * 0.3 && nj < paper * 3.0,
            "nj/flop {nj:.3} too far from paper {paper}"
        );
    }

    #[test]
    fn zero_flops_is_zero_intensity() {
        assert_eq!(
            EnergyModel::default().nj_per_flop(&ActivityCounts::default(), 0),
            0.0
        );
    }

    #[test]
    fn paper_tables_are_consistent() {
        let (c, s, d, total) = EnergyModel::paper_nj_per_flop();
        assert!((c + s + d - total).abs() < 1e-9);
        let mw: f64 = EnergyModel::paper_power_breakdown_mw()
            .iter()
            .map(|&(_, v)| v)
            .sum();
        assert!(mw > 8000.0 && mw < 9300.0, "paper power sums to {mw} mW");
    }
}
