//! HBM main-memory model.
//!
//! Table I: "16×64-bit HBM channels, each channel provides 8 GB/s
//! bandwidth" for 128 GB/s aggregate, with the accelerator core running at
//! 1 GHz. At that clock one cycle moves at most 128 bytes across all
//! channels. The model is a bandwidth token bucket plus a fixed access
//! latency; the paper hides latency with the row prefetcher and multiple
//! per-channel data fetchers, so steady-state throughput is what matters.

use crate::traffic::{TrafficCategory, TrafficCounter};
use serde::{Deserialize, Serialize};

/// HBM geometry and timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Number of independent channels (Table I: 16).
    pub channels: usize,
    /// Bandwidth per channel in bytes per core cycle (8 GB/s at 1 GHz = 8).
    pub bytes_per_cycle_per_channel: f64,
    /// Access latency in core cycles for the first beat of a request.
    /// HBM2 tCL+tRCD is on the order of 40–60 ns; we use 64 cycles.
    pub access_latency: u64,
    /// Core clock frequency in Hz (1 GHz), used to convert cycles to time.
    pub clock_hz: f64,
}

impl Default for HbmConfig {
    fn default() -> Self {
        HbmConfig {
            channels: 16,
            bytes_per_cycle_per_channel: 8.0,
            access_latency: 64,
            clock_hz: 1e9,
        }
    }
}

impl HbmConfig {
    /// Aggregate bandwidth in bytes per core cycle (128 for the default).
    pub fn bytes_per_cycle(&self) -> f64 {
        self.channels as f64 * self.bytes_per_cycle_per_channel
    }

    /// Aggregate bandwidth in GB/s.
    pub fn bandwidth_gbs(&self) -> f64 {
        self.bytes_per_cycle() * self.clock_hz / 1e9
    }

    /// Minimum number of cycles needed to move `bytes` at full bandwidth
    /// (no latency term — use [`HbmConfig::cycles_with_latency`] for
    /// isolated requests).
    pub fn streaming_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle()).ceil() as u64
    }

    /// Cycles for an isolated request of `bytes`: access latency plus the
    /// streaming time.
    pub fn cycles_with_latency(&self, bytes: u64) -> u64 {
        self.access_latency + self.streaming_cycles(bytes)
    }
}

/// A stateful HBM instance: accumulates per-category traffic and busy
/// cycles so utilization can be reported (Table II: SpArch reaches 68.6 %
/// bandwidth utilization vs OuterSPACE's 48.3 %).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Hbm {
    /// Geometry/timing parameters.
    pub config: HbmConfig,
    traffic: TrafficCounter,
    busy_cycles: u64,
}

impl Hbm {
    /// Creates an HBM with the given config.
    pub fn new(config: HbmConfig) -> Self {
        Hbm {
            config,
            traffic: TrafficCounter::new(),
            busy_cycles: 0,
        }
    }

    /// Records a transfer of `bytes` for `category` and returns the cycles
    /// the bus is busy streaming it.
    pub fn transfer(&mut self, category: TrafficCategory, bytes: u64) -> u64 {
        self.traffic.record(category, bytes);
        let cycles = self.config.streaming_cycles(bytes);
        self.busy_cycles += cycles;
        cycles
    }

    /// The per-category traffic accumulated so far.
    pub fn traffic(&self) -> &TrafficCounter {
        &self.traffic
    }

    /// Cycles the bus has spent busy.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Fraction of `elapsed_cycles` during which the bus was moving data.
    /// This is the "Bandwidth Utilization" row of Table II.
    pub fn utilization(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            0.0
        } else {
            (self.busy_cycles as f64 / elapsed_cycles as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let c = HbmConfig::default();
        assert_eq!(c.channels, 16);
        assert!((c.bandwidth_gbs() - 128.0).abs() < 1e-9);
        assert!((c.bytes_per_cycle() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_cycles_rounds_up() {
        let c = HbmConfig::default();
        assert_eq!(c.streaming_cycles(0), 0);
        assert_eq!(c.streaming_cycles(1), 1);
        assert_eq!(c.streaming_cycles(128), 1);
        assert_eq!(c.streaming_cycles(129), 2);
        assert_eq!(c.streaming_cycles(1280), 10);
    }

    #[test]
    fn latency_added_once_per_request() {
        let c = HbmConfig::default();
        assert_eq!(c.cycles_with_latency(128), 64 + 1);
    }

    #[test]
    fn transfer_accumulates_traffic_and_busy_time() {
        let mut hbm = Hbm::new(HbmConfig::default());
        let cycles = hbm.transfer(TrafficCategory::MatA, 1280);
        assert_eq!(cycles, 10);
        assert_eq!(hbm.traffic().bytes(TrafficCategory::MatA), 1280);
        assert_eq!(hbm.busy_cycles(), 10);
    }

    #[test]
    fn utilization_is_busy_over_elapsed() {
        let mut hbm = Hbm::new(HbmConfig::default());
        hbm.transfer(TrafficCategory::FinalWrite, 128 * 50);
        assert!((hbm.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(hbm.utilization(0), 0.0);
        // Clamped at 1 even if accounting overlaps.
        assert_eq!(hbm.utilization(10), 1.0);
    }

    #[test]
    fn scaled_config() {
        // Half the channels, half the bandwidth.
        let c = HbmConfig {
            channels: 8,
            ..HbmConfig::default()
        };
        assert!((c.bandwidth_gbs() - 64.0).abs() < 1e-9);
    }
}
