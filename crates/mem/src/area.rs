//! Area model.
//!
//! Reproduces the paper's Figure 13(a) breakdown (TSMC 40 nm): merge tree
//! 17.27 mm², row prefetcher 5.8, column fetcher 2.64, partial-matrix
//! writer 2.34, multiplier array 0.45 — 28.5 mm² total (Table II:
//! 28.49 mm²). The model anchors those published values at the default
//! configuration and scales each component with its dominant resource so
//! design-space exploration (Figures 17–18) can report area alongside
//! performance.

use serde::{Deserialize, Serialize};

/// Reference (paper Figure 13a) component areas in mm² at the default
/// configuration.
mod paper {
    pub const COLUMN_FETCHER: f64 = 2.64;
    pub const ROW_PREFETCHER: f64 = 5.8;
    pub const MULTIPLIER_ARRAY: f64 = 0.45;
    pub const MERGE_TREE: f64 = 17.27;
    pub const PARTIAL_WRITER: f64 = 2.34;

    // Default-configuration resource counts the reference areas anchor to.
    /// Look-ahead FIFO: 8192 elements (Table I).
    pub const LOOKAHEAD_ELEMENTS: usize = 8192;
    /// Prefetch buffer: 1024 lines x 48 elements x 12 B (Table I).
    pub const BUFFER_BYTES: usize = 1024 * 48 * 12;
    /// 2 groups x 8 double-precision multipliers (Table I).
    pub const MULTIPLIERS: usize = 16;
    /// 6 layers x one 16-wide hierarchical merger each (Table I),
    /// counted in comparator-equivalents: a 16-wide two-level merger uses
    /// (2*16^(2/3)-1)*(16^(1/3))^2 + (16^(2/3))^2 comparators ~ O(n^{4/3}).
    pub const TREE_LAYERS: usize = 6;
    /// Writer FIFO: 1024 elements (Table I).
    pub const WRITER_ELEMENTS: usize = 1024;
}

/// Comparator count of a two-level hierarchical merger that merges `n`
/// elements per cycle (§II-A2: `(2n^(2/3)-1)(n^(1/3))^2 + (n^(2/3))^2`,
/// i.e. O(n^{4/3})).
pub fn hierarchical_comparators(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let n = n as f64;
    let top = n.powf(2.0 / 3.0).round();
    let low = n.powf(1.0 / 3.0).round();
    ((2.0 * top - 1.0) * low * low + top * top) as usize
}

/// Configuration inputs to the area model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Elements the look-ahead FIFO holds.
    pub lookahead_elements: usize,
    /// Total prefetch-buffer bytes.
    pub buffer_bytes: usize,
    /// Number of double-precision multipliers.
    pub multipliers: usize,
    /// Merge-tree layers.
    pub tree_layers: usize,
    /// Merge width of each layer's merger (elements per cycle).
    pub merger_width: usize,
    /// Writer FIFO elements.
    pub writer_elements: usize,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            lookahead_elements: paper::LOOKAHEAD_ELEMENTS,
            buffer_bytes: paper::BUFFER_BYTES,
            multipliers: paper::MULTIPLIERS,
            tree_layers: paper::TREE_LAYERS,
            merger_width: 16,
            writer_elements: paper::WRITER_ELEMENTS,
        }
    }
}

/// Component areas in mm².
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// MatA column fetcher (dominated by the look-ahead FIFO).
    pub column_fetcher: f64,
    /// MatB row prefetcher (dominated by the row buffer SRAM).
    pub row_prefetcher: f64,
    /// Multiplier array.
    pub multiplier_array: f64,
    /// Merge tree (comparator arrays + node FIFOs).
    pub merge_tree: f64,
    /// Partial-matrix writer.
    pub partial_writer: f64,
}

impl AreaBreakdown {
    /// Total area in mm².
    pub fn total(&self) -> f64 {
        self.column_fetcher
            + self.row_prefetcher
            + self.multiplier_array
            + self.merge_tree
            + self.partial_writer
    }
}

impl AreaModel {
    /// Estimates the component areas: each component scales linearly with
    /// its dominant resource, anchored at the paper's published values.
    pub fn estimate(&self) -> AreaBreakdown {
        let tree_units = |layers: usize, width: usize| -> f64 {
            // Each layer has one merger (comparators) and its level FIFOs;
            // FIFO capacity per level is proportional to merge width.
            layers as f64
                * (hierarchical_comparators(width) as f64 / hierarchical_comparators(16) as f64
                    + width as f64 / 16.0)
                / 2.0
        };
        AreaBreakdown {
            column_fetcher: paper::COLUMN_FETCHER * self.lookahead_elements as f64
                / paper::LOOKAHEAD_ELEMENTS as f64,
            row_prefetcher: paper::ROW_PREFETCHER * self.buffer_bytes as f64
                / paper::BUFFER_BYTES as f64,
            multiplier_array: paper::MULTIPLIER_ARRAY * self.multipliers as f64
                / paper::MULTIPLIERS as f64,
            merge_tree: paper::MERGE_TREE * tree_units(self.tree_layers, self.merger_width)
                / tree_units(paper::TREE_LAYERS, 16),
            partial_writer: paper::PARTIAL_WRITER * self.writer_elements as f64
                / paper::WRITER_ELEMENTS as f64,
        }
    }

    /// The paper's total (Table II): 28.49 mm².
    pub fn paper_total_mm2() -> f64 {
        28.49
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_paper_figure_13a() {
        let b = AreaModel::default().estimate();
        assert!((b.column_fetcher - 2.64).abs() < 1e-9);
        assert!((b.row_prefetcher - 5.8).abs() < 1e-9);
        assert!((b.multiplier_array - 0.45).abs() < 1e-9);
        assert!((b.merge_tree - 17.27).abs() < 1e-9);
        assert!((b.partial_writer - 2.34).abs() < 1e-9);
        assert!((b.total() - AreaModel::paper_total_mm2()).abs() < 0.1);
    }

    #[test]
    fn merge_tree_dominates() {
        let b = AreaModel::default().estimate();
        assert!(
            b.merge_tree / b.total() > 0.5,
            "Figure 13a: merge tree is ~60%"
        );
    }

    #[test]
    fn area_scales_with_resources() {
        let small = AreaModel {
            tree_layers: 3,
            ..Default::default()
        }
        .estimate();
        let big = AreaModel {
            tree_layers: 7,
            ..Default::default()
        }
        .estimate();
        assert!(small.merge_tree < big.merge_tree);
        let small_buf = AreaModel {
            buffer_bytes: 1024 * 24 * 12,
            ..Default::default()
        }
        .estimate();
        assert!(small_buf.row_prefetcher < 5.8 / 1.9);
    }

    #[test]
    fn hierarchical_comparator_count_formula() {
        // n=16: top = 16^(2/3) ~ 6.35 -> 6, low = 16^(1/3) ~ 2.52 -> 3
        // (2*6-1)*9 + 36 = 135
        assert_eq!(hierarchical_comparators(16), 135);
        // Far fewer than the flat 16x16 = 256 array.
        assert!(hierarchical_comparators(16) < 256);
        assert_eq!(hierarchical_comparators(1), 1);
    }

    #[test]
    fn comparator_growth_is_subquadratic() {
        let n64 = hierarchical_comparators(64) as f64;
        let n16 = hierarchical_comparators(16) as f64;
        // Quadrupling n should multiply comparators by ~4^(4/3) ~ 6.35,
        // well under the flat-array factor of 16.
        let growth = n64 / n16;
        assert!(growth < 10.0, "growth {growth}");
    }
}
