//! DRAM traffic accounting.
//!
//! Every optimization in the paper is justified by its effect on one
//! number: bytes moved to/from DRAM ("SpArch reduces the total DRAM access
//! by 2.8× over previous state-of-the-art"). The simulator therefore
//! attributes every byte to a category, so ablations can show which stream
//! each technique shrinks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which logical stream a DRAM access belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficCategory {
    /// Reads of the left (condensed) operand matrix A.
    MatA,
    /// Reads of the right operand matrix B (through the row prefetcher).
    MatB,
    /// Writes of partially merged results that spill to DRAM.
    PartialWrite,
    /// Re-reads of previously spilled partially merged results.
    PartialRead,
    /// Writes of the final result matrix C.
    FinalWrite,
}

impl TrafficCategory {
    /// All categories, in report order.
    pub const ALL: [TrafficCategory; 5] = [
        TrafficCategory::MatA,
        TrafficCategory::MatB,
        TrafficCategory::PartialWrite,
        TrafficCategory::PartialRead,
        TrafficCategory::FinalWrite,
    ];
}

impl fmt::Display for TrafficCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficCategory::MatA => "mat_a_read",
            TrafficCategory::MatB => "mat_b_read",
            TrafficCategory::PartialWrite => "partial_write",
            TrafficCategory::PartialRead => "partial_read",
            TrafficCategory::FinalWrite => "final_write",
        };
        f.write_str(s)
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// DRAM → chip.
    Read,
    /// Chip → DRAM.
    Write,
}

/// Byte counters per [`TrafficCategory`].
///
/// # Example
///
/// ```
/// use sparch_mem::{TrafficCounter, TrafficCategory};
///
/// let mut t = TrafficCounter::default();
/// t.record(TrafficCategory::MatA, 120);
/// t.record(TrafficCategory::PartialWrite, 64);
/// t.record(TrafficCategory::PartialRead, 64);
/// assert_eq!(t.total_bytes(), 248);
/// assert_eq!(t.read_bytes(), 184);
/// assert_eq!(t.write_bytes(), 64);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficCounter {
    mat_a: u64,
    mat_b: u64,
    partial_write: u64,
    partial_read: u64,
    final_write: u64,
}

impl TrafficCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `bytes` to `category`.
    pub fn record(&mut self, category: TrafficCategory, bytes: u64) {
        *self.slot_mut(category) += bytes;
    }

    /// Bytes recorded for `category`.
    pub fn bytes(&self, category: TrafficCategory) -> u64 {
        match category {
            TrafficCategory::MatA => self.mat_a,
            TrafficCategory::MatB => self.mat_b,
            TrafficCategory::PartialWrite => self.partial_write,
            TrafficCategory::PartialRead => self.partial_read,
            TrafficCategory::FinalWrite => self.final_write,
        }
    }

    fn slot_mut(&mut self, category: TrafficCategory) -> &mut u64 {
        match category {
            TrafficCategory::MatA => &mut self.mat_a,
            TrafficCategory::MatB => &mut self.mat_b,
            TrafficCategory::PartialWrite => &mut self.partial_write,
            TrafficCategory::PartialRead => &mut self.partial_read,
            TrafficCategory::FinalWrite => &mut self.final_write,
        }
    }

    /// The direction of each category's stream.
    pub fn direction(category: TrafficCategory) -> Direction {
        match category {
            TrafficCategory::MatA | TrafficCategory::MatB | TrafficCategory::PartialRead => {
                Direction::Read
            }
            TrafficCategory::PartialWrite | TrafficCategory::FinalWrite => Direction::Write,
        }
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        TrafficCategory::ALL.iter().map(|&c| self.bytes(c)).sum()
    }

    /// Total bytes read from DRAM.
    pub fn read_bytes(&self) -> u64 {
        self.mat_a + self.mat_b + self.partial_read
    }

    /// Total bytes written to DRAM.
    pub fn write_bytes(&self) -> u64 {
        self.partial_write + self.final_write
    }

    /// Bytes spent on spilled partial results (the stream SpArch's three
    /// output-side techniques attack).
    pub fn partial_bytes(&self) -> u64 {
        self.partial_write + self.partial_read
    }

    /// Total traffic in megabytes (10^6 bytes, as in the paper's Figure 17
    /// "DRAM Access (MB)" axes).
    pub fn total_mb(&self) -> f64 {
        self.total_bytes() as f64 / 1e6
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &TrafficCounter) {
        for c in TrafficCategory::ALL {
            self.record(c, other.bytes(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_split_by_direction() {
        let mut t = TrafficCounter::new();
        t.record(TrafficCategory::MatA, 10);
        t.record(TrafficCategory::MatB, 20);
        t.record(TrafficCategory::PartialWrite, 30);
        t.record(TrafficCategory::PartialRead, 40);
        t.record(TrafficCategory::FinalWrite, 50);
        assert_eq!(t.total_bytes(), 150);
        assert_eq!(t.read_bytes(), 70);
        assert_eq!(t.write_bytes(), 80);
        assert_eq!(t.partial_bytes(), 70);
    }

    #[test]
    fn directions_are_correct() {
        assert_eq!(
            TrafficCounter::direction(TrafficCategory::MatA),
            Direction::Read
        );
        assert_eq!(
            TrafficCounter::direction(TrafficCategory::PartialWrite),
            Direction::Write
        );
        assert_eq!(
            TrafficCounter::direction(TrafficCategory::PartialRead),
            Direction::Read
        );
        assert_eq!(
            TrafficCounter::direction(TrafficCategory::FinalWrite),
            Direction::Write
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficCounter::new();
        a.record(TrafficCategory::MatA, 5);
        let mut b = TrafficCounter::new();
        b.record(TrafficCategory::MatA, 7);
        b.record(TrafficCategory::FinalWrite, 1);
        a.merge(&b);
        assert_eq!(a.bytes(TrafficCategory::MatA), 12);
        assert_eq!(a.bytes(TrafficCategory::FinalWrite), 1);
    }

    #[test]
    fn mb_conversion() {
        let mut t = TrafficCounter::new();
        t.record(TrafficCategory::FinalWrite, 2_500_000);
        assert!((t.total_mb() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = TrafficCounter::new();
        t.record(TrafficCategory::MatB, 99);
        let json = serde_json::to_string(&t).unwrap();
        let back: TrafficCounter = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<String> = TrafficCategory::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            names,
            [
                "mat_a_read",
                "mat_b_read",
                "partial_write",
                "partial_read",
                "final_write"
            ]
        );
    }
}
