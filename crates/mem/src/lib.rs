//! Memory-hierarchy and cost models for the SpArch reproduction.
//!
//! The paper's evaluation (§III-A) models "all the logic on the data path
//! ... FIFOs, row prefetcher, and DRAM", with HBM bandwidth/latency, CACTI
//! SRAM estimates and published DRAM energy constants. This crate contains
//! those substrates:
//!
//! * [`traffic`] — DRAM byte accounting by category; the quantity every
//!   figure in the paper reports,
//! * [`dram`] — the 16-channel HBM timing model (8 GB/s per channel),
//! * [`fifo`] — bounded FIFOs with occupancy statistics (merge-tree nodes,
//!   look-ahead FIFO, partial-matrix writer),
//! * [`energy`] — per-event energy constants reproducing Table III and
//!   Figure 13(b),
//! * [`area`] — per-module area model reproducing Figure 13(a) and
//!   Table II.

pub mod area;
pub mod dram;
pub mod energy;
pub mod fifo;
pub mod traffic;

pub use area::{AreaBreakdown, AreaModel};
pub use dram::{Hbm, HbmConfig};
pub use energy::{ActivityCounts, EnergyBreakdown, EnergyModel};
pub use fifo::Fifo;
pub use traffic::{Direction, TrafficCategory, TrafficCounter};

/// Bytes per matrix element in the accelerator's DRAM/SRAM layout:
/// a packed 4-byte index plus the 8-byte double value — the paper sizes
/// the prefetch buffer at "12 bytes per element" (Table I).
pub const BYTES_PER_ELEMENT: u64 = 12;

/// Bytes per element while streaming through the merge tree, where the
/// full 64-bit (row, col) coordinate travels with the 64-bit value.
pub const BYTES_PER_STREAM_ELEMENT: u64 = 16;
