//! Chrome trace-event JSON export.
//!
//! The output is the "JSON object format" both `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly: a `traceEvents`
//! array of metadata (`"ph": "M"`) events naming the process and each
//! thread lane, complete (`"ph": "X"`) events for spans, and instant
//! (`"ph": "i"`) events for zero-duration marks. Timestamps and
//! durations are microseconds relative to the recorder anchor.

use crate::span::Trace;
use serde::Json;

const PID: u64 = 1;

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn meta_event(name: &str, tid: u64, value: &str) -> Json {
    obj(vec![
        ("ph", Json::Str("M".to_string())),
        ("name", Json::Str(name.to_string())),
        ("pid", Json::U64(PID)),
        ("tid", Json::U64(tid)),
        ("args", obj(vec![("name", Json::Str(value.to_string()))])),
    ])
}

/// Renders a [`Trace`] as a Chrome trace-event JSON string.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut events = Vec::with_capacity(trace.spans.len() + trace.threads.len() + 1);
    let process = if trace.process.is_empty() {
        "sparch"
    } else {
        &trace.process
    };
    events.push(meta_event("process_name", 0, process));
    for lane in &trace.threads {
        events.push(meta_event("thread_name", lane.tid, &lane.label));
    }
    for span in &trace.spans {
        let ts = span.start_ns as f64 / 1e3;
        let mut fields = vec![
            ("name", Json::Str(span.name.clone())),
            ("cat", Json::Str(span.cat.clone())),
            ("pid", Json::U64(PID)),
            ("tid", Json::U64(span.tid)),
            ("ts", Json::F64(ts)),
        ];
        if span.is_instant() {
            fields.push(("ph", Json::Str("i".to_string())));
            fields.push(("s", Json::Str("t".to_string())));
        } else {
            fields.push(("ph", Json::Str("X".to_string())));
            let dur = span.end_ns.saturating_sub(span.start_ns) as f64 / 1e3;
            fields.push(("dur", Json::F64(dur)));
        }
        if !span.args.is_empty() {
            fields.push((
                "args",
                Json::Obj(
                    span.args
                        .iter()
                        .map(|a| (a.key.clone(), Json::U64(a.value)))
                        .collect(),
                ),
            ));
        }
        events.push(obj(fields));
    }
    let root = obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ]);
    serde_json::to_string(&root).expect("trace events always serialize")
}
