//! Unified tracing and metrics for the SpArch reproduction.
//!
//! Every execution layer (streaming pipeline, distributed coordinator and
//! workers, serving dispatcher) reports time the same way: a [`Recorder`]
//! hands out per-thread [`ThreadRecorder`] lanes whose `begin`/`end` calls
//! *always* return wall-clock durations — the existing report structs are
//! built from those return values — and *additionally* record a
//! [`Span`] when tracing is enabled. Telemetry is therefore defined once:
//! the numbers in `StageReport`/`DistReport`/`BatchReport` and the spans
//! in an exported trace come from the same instrumentation points.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** A disabled recorder performs no
//!    heap allocation anywhere — `begin`/`end` reduce to two
//!    `Instant::now()` calls (which the reports needed anyway), counters
//!    and histograms are no-ops on a `None` handle. This is pinned by a
//!    counting-allocator test (`tests/obs_alloc.rs`).
//! 2. **Lock-light when enabled.** Spans accumulate in a plain `Vec`
//!    owned by the emitting thread; the central sink mutex is taken once
//!    per thread lifetime (on drain), never per span.
//! 3. **Loadable output.** [`chrome_trace_json`] emits Chrome
//!    trace-event JSON that `chrome://tracing` and Perfetto open
//!    directly; [`MetricsSnapshot`] is a flat serializable mirror of the
//!    metrics registry.

mod chrome;
mod metrics;
mod span;

pub use chrome::chrome_trace_json;
pub use metrics::{
    BucketEntry, Counter, CounterEntry, Gauge, GaugeEntry, Histogram, HistogramEntry, Metrics,
    MetricsSnapshot,
};
pub use span::{
    Recorder, Span, SpanArg, SpanHandle, Stopwatch, ThreadLane, ThreadRecorder, Trace, WireSpan,
};
