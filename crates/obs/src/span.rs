//! The span recorder: `Stopwatch`, `Recorder`, `ThreadRecorder`, `Trace`.

use crate::metrics::{Metrics, MetricsSnapshot};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A restartable wall-clock timer — the one way this workspace measures
/// elapsed seconds (replaces the hand-rolled `Instant::now()` /
/// `elapsed().as_secs_f64()` pairs that used to be duplicated across
/// `stream::pipeline` and `dist::coordinator`).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts (and returns) a running stopwatch.
    pub fn started() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds since the last start, without restarting.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Seconds since the last start, restarting the watch — for
    /// accumulating consecutive phases without gaps.
    pub fn lap_seconds(&mut self) -> f64 {
        let now = Instant::now();
        let dt = now.duration_since(self.start).as_secs_f64();
        self.start = now;
        dt
    }

    /// Restarts the watch without reading it.
    pub fn restart(&mut self) {
        self.start = Instant::now();
    }
}

/// One key/value annotation on a span (values are integral; encode
/// fractional quantities in fixed-point micro-units at the call site).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanArg {
    pub key: String,
    pub value: u64,
}

/// A finished (or still-open, `end_ns == 0`) span as stored in the sink.
///
/// `seq` numbers spans per thread in `begin` order; `parent` is the `seq`
/// of the enclosing span on the same thread, or `-1` at top level — this
/// is the parent linkage that survives draining and export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    pub name: String,
    pub cat: String,
    pub tid: u64,
    pub seq: u64,
    pub parent: i64,
    pub depth: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    pub args: Vec<SpanArg>,
}

impl Span {
    /// Duration in seconds (zero for instant events and open spans).
    pub fn seconds(&self) -> f64 {
        self.end_ns.saturating_sub(self.start_ns) as f64 * 1e-9
    }

    /// True for zero-duration instant events (`event()` emissions).
    pub fn is_instant(&self) -> bool {
        self.end_ns == self.start_ns
    }
}

/// A thread lane registered in the trace: stable `tid` plus a label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadLane {
    pub tid: u64,
    pub label: String,
}

/// A compact span representation for shipping across the dist wire:
/// timestamps are relative to the *sender's* anchor and are re-based by
/// the receiver (see `Recorder::import_rebased`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSpan {
    pub name: String,
    pub cat: String,
    pub start_ns: u64,
    pub end_ns: u64,
    pub depth: u32,
}

/// Everything a recorder collected: spans, lane labels, metrics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    pub process: String,
    pub threads: Vec<ThreadLane>,
    pub spans: Vec<Span>,
    pub metrics: MetricsSnapshot,
}

impl Trace {
    /// Sum of durations over spans with this exact name, in seconds.
    pub fn seconds_named(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(Span::seconds)
            .sum()
    }

    /// Number of spans with this exact name.
    pub fn count_named(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }
}

struct SinkInner {
    threads: Vec<ThreadLane>,
    spans: Vec<Span>,
}

struct Shared {
    anchor: Instant,
    next_tid: AtomicU64,
    sink: Mutex<SinkInner>,
}

impl Shared {
    fn ns_since_anchor(&self, at: Instant) -> u64 {
        at.duration_since(self.anchor).as_nanos() as u64
    }
}

/// The process-wide tracing handle. Cloning is cheap; all clones feed the
/// same sink. [`Recorder::disabled`] is the hot-path default: every
/// operation on it (and on lanes, counters and histograms derived from
/// it) is allocation-free.
#[derive(Clone)]
pub struct Recorder {
    shared: Option<Arc<Shared>>,
    metrics: Metrics,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// A recorder that records nothing and never allocates.
    pub fn disabled() -> Self {
        Recorder {
            shared: None,
            metrics: Metrics::disabled(),
        }
    }

    /// A live recorder with a fresh anchor and empty sink.
    pub fn enabled() -> Self {
        Recorder {
            shared: Some(Arc::new(Shared {
                anchor: Instant::now(),
                next_tid: AtomicU64::new(1),
                sink: Mutex::new(SinkInner {
                    threads: Vec::new(),
                    spans: Vec::new(),
                }),
            })),
            metrics: Metrics::enabled(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The metrics registry riding with this recorder (no-op when
    /// disabled).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Shorthand for `metrics().counter(name)`.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.metrics.counter(name)
    }

    /// Opens a new lane. The label is suffixed with the assigned tid so
    /// repeated calls with the same label (e.g. one per pool worker) stay
    /// distinguishable; nothing is allocated when disabled.
    pub fn thread(&self, label: &str) -> ThreadRecorder {
        match &self.shared {
            None => ThreadRecorder::disabled(),
            Some(shared) => {
                let tid = shared.next_tid.fetch_add(1, Ordering::Relaxed);
                ThreadRecorder {
                    shared: Some(Arc::clone(shared)),
                    label: format!("{label}-{tid}"),
                    tid,
                    next_seq: 0,
                    spans: Vec::new(),
                    stack: Vec::new(),
                }
            }
        }
    }

    /// Like [`Recorder::thread`] but the label carries an explicit index
    /// (worker id, shard generation); formatting happens only when
    /// enabled so disabled callers stay allocation-free.
    pub fn thread_for(&self, label: &str, index: u64) -> ThreadRecorder {
        match &self.shared {
            None => ThreadRecorder::disabled(),
            Some(shared) => {
                let tid = shared.next_tid.fetch_add(1, Ordering::Relaxed);
                ThreadRecorder {
                    shared: Some(Arc::clone(shared)),
                    label: format!("{label}-{index}"),
                    tid,
                    next_seq: 0,
                    spans: Vec::new(),
                    stack: Vec::new(),
                }
            }
        }
    }

    /// Drains everything recorded so far into a [`Trace`]. Lanes still
    /// alive keep recording into the (now empty) sink; call this after
    /// the instrumented run has joined its threads.
    pub fn drain(&self, process: &str) -> Trace {
        match &self.shared {
            None => Trace::default(),
            Some(shared) => {
                let mut sink = shared.sink.lock().unwrap();
                let mut spans = std::mem::take(&mut sink.spans);
                let threads = std::mem::take(&mut sink.threads);
                drop(sink);
                spans.sort_by_key(|s| (s.tid, s.seq));
                Trace {
                    process: process.to_string(),
                    threads,
                    spans,
                    metrics: self.metrics.snapshot(),
                }
            }
        }
    }
}

/// A per-thread (more precisely: per-*lane*) span recorder. Not `Sync`;
/// each emitting thread owns its own. Spans drain into the central sink
/// exactly once, when the lane is dropped.
pub struct ThreadRecorder {
    shared: Option<Arc<Shared>>,
    label: String,
    tid: u64,
    next_seq: u64,
    spans: Vec<Span>,
    stack: Vec<usize>,
}

/// Token returned by [`ThreadRecorder::begin`]; pass it back to `end`.
/// Carries the start instant so `end` can return the duration even on a
/// disabled lane.
#[derive(Debug, Clone, Copy)]
#[must_use = "pass this back to ThreadRecorder::end to close the span"]
pub struct SpanHandle {
    start: Instant,
    idx: usize,
}

const DISABLED_IDX: usize = usize::MAX;

impl ThreadRecorder {
    /// A lane that records nothing; `begin`/`end` still time.
    pub fn disabled() -> Self {
        ThreadRecorder {
            shared: None,
            label: String::new(),
            tid: 0,
            next_seq: 0,
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Opens a span. Always cheap; allocates only when enabled.
    pub fn begin(&mut self, cat: &'static str, name: &'static str) -> SpanHandle {
        let start = Instant::now();
        let idx = match &self.shared {
            None => DISABLED_IDX,
            Some(shared) => {
                let parent = self.stack.last().map_or(-1, |&i| self.spans[i].seq as i64);
                let seq = self.next_seq;
                self.next_seq += 1;
                self.spans.push(Span {
                    name: name.to_string(),
                    cat: cat.to_string(),
                    tid: self.tid,
                    seq,
                    parent,
                    depth: self.stack.len() as u32,
                    start_ns: shared.ns_since_anchor(start),
                    end_ns: 0,
                    args: Vec::new(),
                });
                let idx = self.spans.len() - 1;
                self.stack.push(idx);
                idx
            }
        };
        SpanHandle { start, idx }
    }

    /// Closes a span and returns its duration in seconds — the value the
    /// report structs accumulate, so spans and reports measure the same
    /// interval. Spans must close LIFO on a lane.
    pub fn end(&mut self, handle: SpanHandle) -> f64 {
        let now = Instant::now();
        let dt = now.duration_since(handle.start).as_secs_f64();
        if handle.idx != DISABLED_IDX {
            let shared = self.shared.as_ref().expect("enabled handle, enabled lane");
            debug_assert_eq!(self.stack.last(), Some(&handle.idx), "spans must nest");
            self.stack.retain(|&i| i != handle.idx);
            self.spans[handle.idx].end_ns = shared.ns_since_anchor(now);
        }
        dt
    }

    /// `end` plus annotations (recorded only when enabled).
    pub fn end_with(&mut self, handle: SpanHandle, args: &[(&'static str, u64)]) -> f64 {
        let dt = self.end(handle);
        if handle.idx != DISABLED_IDX {
            let span_args = &mut self.spans[handle.idx].args;
            span_args.reserve(args.len());
            for (key, value) in args {
                span_args.push(SpanArg {
                    key: (*key).to_string(),
                    value: *value,
                });
            }
        }
        dt
    }

    /// Emits a zero-duration instant event (heartbeat timeout, retry,
    /// straggler re-dispatch, …).
    pub fn event(&mut self, cat: &'static str, name: &'static str) {
        self.event_with(cat, name, &[]);
    }

    /// [`ThreadRecorder::event`] with annotations.
    pub fn event_with(
        &mut self,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        let Some(shared) = &self.shared else { return };
        let at = shared.ns_since_anchor(Instant::now());
        let parent = self.stack.last().map_or(-1, |&i| self.spans[i].seq as i64);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.spans.push(Span {
            name: name.to_string(),
            cat: cat.to_string(),
            tid: self.tid,
            seq,
            parent,
            depth: self.stack.len() as u32,
            start_ns: at,
            end_ns: at,
            args: args
                .iter()
                .map(|(key, value)| SpanArg {
                    key: (*key).to_string(),
                    value: *value,
                })
                .collect(),
        });
    }

    /// Inserts spans that were recorded elsewhere (a dist worker) onto
    /// this lane, shifting their sender-relative timestamps by
    /// `base_ns` onto this recorder's timeline. Depth is taken from the
    /// wire span, offset by the current nesting depth of this lane.
    pub fn import_rebased(&mut self, spans: &[WireSpan], base_ns: u64) {
        if self.shared.is_none() {
            return;
        }
        let parent = self.stack.last().map_or(-1, |&i| self.spans[i].seq as i64);
        let base_depth = self.stack.len() as u32;
        for w in spans {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.spans.push(Span {
                name: w.name.clone(),
                cat: w.cat.clone(),
                tid: self.tid,
                seq,
                parent,
                depth: base_depth + w.depth,
                start_ns: base_ns + w.start_ns,
                end_ns: base_ns + w.end_ns,
                args: Vec::new(),
            });
        }
    }

    /// Nanoseconds since the recorder's anchor (0 when disabled) — used
    /// by the dist coordinator to compute re-basing offsets.
    pub fn now_ns(&self) -> u64 {
        self.shared
            .as_ref()
            .map_or(0, |s| s.ns_since_anchor(Instant::now()))
    }

    /// Drains this lane's finished spans into a `Vec` of [`WireSpan`]s
    /// (for shipping across the dist wire) instead of the sink. Open
    /// spans are closed at the current instant.
    pub fn take_wire_spans(&mut self) -> Vec<WireSpan> {
        if self.shared.is_none() {
            return Vec::new();
        }
        self.close_open_spans();
        self.stack.clear();
        self.spans
            .drain(..)
            .map(|s| WireSpan {
                name: s.name,
                cat: s.cat,
                start_ns: s.start_ns,
                end_ns: s.end_ns,
                depth: s.depth,
            })
            .collect()
    }

    fn close_open_spans(&mut self) {
        if let Some(shared) = &self.shared {
            let now = shared.ns_since_anchor(Instant::now());
            for &i in &self.stack {
                if self.spans[i].end_ns == 0 {
                    self.spans[i].end_ns = now;
                }
            }
        }
    }
}

impl Drop for ThreadRecorder {
    fn drop(&mut self) {
        if self.shared.is_none() {
            return;
        }
        self.close_open_spans();
        let shared = self.shared.as_ref().unwrap();
        let mut sink = shared.sink.lock().unwrap();
        sink.threads.push(ThreadLane {
            tid: self.tid,
            label: std::mem::take(&mut self.label),
        });
        sink.spans.append(&mut self.spans);
    }
}

use crate::metrics::Counter;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_laps_accumulate() {
        let mut w = Stopwatch::started();
        let a = w.lap_seconds();
        let b = w.elapsed_seconds();
        assert!(a >= 0.0 && b >= 0.0);
        w.restart();
        assert!(w.elapsed_seconds() < 1.0);
    }

    #[test]
    fn disabled_recorder_yields_empty_trace_but_real_durations() {
        let rec = Recorder::disabled();
        let mut lane = rec.thread("x");
        let h = lane.begin("t", "work");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let dt = lane.end(h);
        assert!(dt >= 0.002, "disabled end must still time: {dt}");
        drop(lane);
        let trace = rec.drain("p");
        assert!(trace.spans.is_empty() && trace.threads.is_empty());
    }

    #[test]
    fn nesting_records_parent_linkage_and_depth() {
        let rec = Recorder::enabled();
        let mut lane = rec.thread("main");
        let outer = lane.begin("t", "outer");
        let inner = lane.begin("t", "inner");
        lane.end(inner);
        let evt_depth_probe = lane.begin("t", "second-inner");
        lane.end(evt_depth_probe);
        lane.end_with(outer, &[("items", 3)]);
        drop(lane);
        let trace = rec.drain("p");
        assert_eq!(trace.spans.len(), 3);
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, -1);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.parent, outer.seq as i64);
        assert_eq!(inner.depth, 1);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        assert_eq!(
            outer.args,
            vec![SpanArg {
                key: "items".into(),
                value: 3
            }]
        );
    }

    #[test]
    fn events_are_instant_and_rebased_imports_shift() {
        let rec = Recorder::enabled();
        let mut lane = rec.thread("w");
        lane.event_with("d", "retry", &[("job", 7)]);
        let wire = vec![WireSpan {
            name: "compute".into(),
            cat: "d".into(),
            start_ns: 10,
            end_ns: 20,
            depth: 0,
        }];
        lane.import_rebased(&wire, 1_000);
        drop(lane);
        let trace = rec.drain("p");
        let evt = trace.spans.iter().find(|s| s.name == "retry").unwrap();
        assert!(evt.is_instant());
        let imported = trace.spans.iter().find(|s| s.name == "compute").unwrap();
        assert_eq!((imported.start_ns, imported.end_ns), (1_010, 1_020));
    }

    #[test]
    fn take_wire_spans_closes_open_spans_and_empties_the_lane() {
        let rec = Recorder::enabled();
        let mut lane = rec.thread("w");
        let _open = lane.begin("d", "compute");
        let wire = lane.take_wire_spans();
        assert_eq!(wire.len(), 1);
        assert!(wire[0].end_ns >= wire[0].start_ns);
        assert!(lane.take_wire_spans().is_empty());
        drop(lane);
        // The drained spans never reach the sink.
        assert!(rec.drain("p").spans.is_empty());
    }

    #[test]
    fn trace_helpers_sum_and_count_by_name() {
        let rec = Recorder::enabled();
        let mut lane = rec.thread("m");
        for _ in 0..3 {
            let h = lane.begin("t", "step");
            lane.end(h);
        }
        drop(lane);
        let trace = rec.drain("p");
        assert_eq!(trace.count_named("step"), 3);
        assert!(trace.seconds_named("step") >= 0.0);
        assert_eq!(trace.count_named("missing"), 0);
    }
}
