//! Named counters, gauges and log-bucketed histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Option<Arc<_>>`
//! wrappers: on a disabled [`Metrics`] registry every operation is a
//! no-op with no allocation. Registration takes a registry lock once per
//! handle; updates are plain atomic ops.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// Bucket k holds values of bit-width k; u64 values need widths 0..=64.
const HIST_BUCKETS: usize = 65;

struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Index of the log2 bucket holding `v`: bucket `k` covers
/// `[2^(k-1), 2^k - 1]` for `k >= 1`, bucket 0 holds zero.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, Arc<AtomicU64>>,
    gauges: BTreeMap<&'static str, Arc<AtomicU64>>,
    histograms: BTreeMap<&'static str, Arc<HistCells>>,
}

/// The metrics registry half of a recorder. Cloning shares the registry.
#[derive(Clone, Default)]
pub struct Metrics {
    shared: Option<Arc<Mutex<Registry>>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.shared.is_some())
            .finish()
    }
}

impl Metrics {
    pub fn disabled() -> Self {
        Metrics { shared: None }
    }

    pub fn enabled() -> Self {
        Metrics {
            shared: Some(Arc::new(Mutex::new(Registry::default()))),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Registers (or re-fetches) the counter named `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(self.shared.as_ref().map(|reg| {
            Arc::clone(
                reg.lock()
                    .unwrap()
                    .counters
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Registers (or re-fetches) the gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(self.shared.as_ref().map(|reg| {
            Arc::clone(
                reg.lock()
                    .unwrap()
                    .gauges
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Registers (or re-fetches) the log2-bucketed histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram(self.shared.as_ref().map(|reg| {
            Arc::clone(
                reg.lock()
                    .unwrap()
                    .histograms
                    .entry(name)
                    .or_insert_with(|| Arc::new(HistCells::new())),
            )
        }))
    }

    /// A flat, serializable copy of every registered metric, names
    /// sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(reg) = &self.shared else {
            return MetricsSnapshot::default();
        };
        let reg = reg.lock().unwrap();
        MetricsSnapshot {
            counters: reg
                .counters
                .iter()
                .map(|(name, cell)| CounterEntry {
                    name: (*name).to_string(),
                    value: cell.load(Ordering::Relaxed),
                })
                .collect(),
            gauges: reg
                .gauges
                .iter()
                .map(|(name, cell)| GaugeEntry {
                    name: (*name).to_string(),
                    value: f64::from_bits(cell.load(Ordering::Relaxed)),
                })
                .collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(name, cells)| HistogramEntry {
                    name: (*name).to_string(),
                    count: cells.count.load(Ordering::Relaxed),
                    sum: cells.sum.load(Ordering::Relaxed),
                    buckets: cells
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(k, cell)| {
                            let count = cell.load(Ordering::Relaxed);
                            (count > 0).then(|| BucketEntry {
                                le: if k >= 64 { u64::MAX } else { (1u64 << k) - 1 },
                                count,
                            })
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Monotonically increasing counter handle (no-op when disabled).
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Last-write-wins gauge handle storing an `f64` (no-op when disabled).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn value(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// Log2-bucketed histogram handle (no-op when disabled).
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistCells>>);

impl Histogram {
    pub fn record(&self, v: u64) {
        if let Some(cells) = &self.0 {
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
            cells.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    pub name: String,
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    pub name: String,
    pub value: f64,
}

/// One non-empty histogram bucket: `count` samples with value `<= le`
/// (and above the previous bucket's bound).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketEntry {
    pub le: u64,
    pub count: u64,
}

/// One histogram in a [`MetricsSnapshot`]; only occupied buckets appear.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramEntry {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<BucketEntry>,
}

/// Flat serializable mirror of the registry at one point in time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterEntry>,
    pub gauges: Vec<GaugeEntry>,
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// The value of the named counter, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let m = Metrics::disabled();
        let c = m.counter("x");
        c.add(5);
        m.gauge("g").set(1.5);
        m.histogram("h").record(9);
        assert_eq!(c.value(), 0);
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn snapshot_reflects_updates_and_sorts_names() {
        let m = Metrics::enabled();
        m.counter("z.bytes").add(10);
        m.counter("a.bytes").add(3);
        m.counter("a.bytes").add(4); // same cell via re-registration
        m.gauge("peak").set(2.5);
        let h = m.histogram("sizes");
        h.record(0);
        h.record(3);
        h.record(3);
        let snap = m.snapshot();
        assert_eq!(
            snap.counters,
            vec![
                CounterEntry {
                    name: "a.bytes".into(),
                    value: 7
                },
                CounterEntry {
                    name: "z.bytes".into(),
                    value: 10
                },
            ]
        );
        assert_eq!(snap.gauges[0].value, 2.5);
        let hist = &snap.histograms[0];
        assert_eq!((hist.count, hist.sum), (3, 6));
        assert_eq!(
            hist.buckets,
            vec![
                BucketEntry { le: 0, count: 1 },
                BucketEntry { le: 3, count: 2 },
            ]
        );
        assert_eq!(snap.counter("a.bytes"), 7);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::enabled();
        m.counter("c").add(1);
        m.gauge("g").set(0.5);
        m.histogram("h").record(100);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
