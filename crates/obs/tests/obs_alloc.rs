//! Allocator audit: a **disabled** recorder is allocation-free.
//!
//! Every hot-path operation — opening a lane, begin/end, annotated end,
//! instant events, counter/gauge/histogram updates, handle registration,
//! draining — must perform **zero** heap allocations when tracing is off,
//! because these calls now sit inside the streaming multiply/merge loops
//! whose allocation counts are pinned by the PR 6/PR 7 audits.
//!
//! This file holds exactly one test so no neighbouring test's
//! allocations can race the counters (same discipline as
//! `crates/core/tests/zero_alloc.rs`).

use sparch_obs::Recorder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct TrackingAlloc;

static ALL_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

/// Runs `f` and returns (its output, allocations made during the call).
fn audited<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALL_ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, ALL_ALLOCS.load(Ordering::Relaxed) - before)
}

#[test]
fn disabled_recorder_hot_path_makes_zero_allocations() {
    let recorder = Recorder::disabled();
    // Handle creation outside the audited region mirrors real call
    // sites: stages register counters once, then update in the loop.
    let counter = recorder.counter("bytes");
    let gauge = recorder.metrics().gauge("peak");
    let histogram = recorder.metrics().histogram("sizes");

    // The counter is process-global, so a stray allocation on a harness
    // thread during the window would count against the hot path; the
    // *floor* over several runs is the hot path's own deterministic
    // allocation count.
    let mut floor = u64::MAX;
    let mut total = 0.0f64;
    for _ in 0..5 {
        let (run_total, allocs) = audited(|| {
            let mut total = 0.0f64;
            for round in 0..10_000u64 {
                let mut lane = recorder.thread("worker");
                let outer = lane.begin("audit", "job");
                let inner = lane.begin("audit", "kernel");
                total += lane.end(inner);
                lane.event_with("audit", "mark", &[("round", round)]);
                total += lane.end_with(outer, &[("round", round), ("bytes", 64)]);
                counter.add(round);
                gauge.set(round as f64);
                histogram.record(round);
                // In-loop registration must also be free when disabled.
                recorder.counter("bytes").incr();
            }
            let trace = recorder.drain("audit");
            assert!(trace.spans.is_empty());
            total
        });
        floor = floor.min(allocs);
        total += run_total;
    }

    assert!(total >= 0.0);
    assert_eq!(
        floor, 0,
        "disabled recorder allocated {floor} times on the hot path"
    );
}
