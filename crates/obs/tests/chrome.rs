//! The Chrome trace-event exporter emits valid, loadable JSON.
//!
//! Each test round-trips the exported string through the strict JSON
//! parser and checks the fields `chrome://tracing` / Perfetto require:
//! `ph`, `ts`, `pid`, `tid` on every event and `dur` on complete spans.

use serde_json::Value;
use sparch_obs::{chrome_trace_json, Recorder};

fn events(json: &str) -> Vec<Value> {
    let root: Value = serde_json::from_str(json).expect("exporter must emit valid JSON");
    let Some(events) = root.get("traceEvents").and_then(Value::as_arr) else {
        panic!("missing traceEvents array in {json}");
    };
    events.to_vec()
}

fn field<'a>(event: &'a Value, key: &str) -> &'a Value {
    event
        .get(key)
        .unwrap_or_else(|| panic!("event missing {key:?}: {event:?}"))
}

fn str_field(event: &Value, key: &str) -> String {
    field(event, key)
        .as_str()
        .unwrap_or_else(|| panic!("{key} not a string"))
        .to_string()
}

fn num_field(event: &Value, key: &str) -> f64 {
    match field(event, key) {
        Value::F64(x) => *x,
        Value::U64(x) => *x as f64,
        Value::I64(x) => *x as f64,
        other => panic!("{key} not numeric: {other:?}"),
    }
}

fn uint_field(event: &Value, key: &str) -> u64 {
    match field(event, key) {
        Value::U64(x) => *x,
        other => panic!("{key} not an unsigned integer: {other:?}"),
    }
}

#[test]
fn empty_trace_exports_process_metadata_only() {
    let rec = Recorder::enabled();
    let trace = rec.drain("empty-proc");
    let evts = events(&chrome_trace_json(&trace));
    assert_eq!(evts.len(), 1);
    assert_eq!(str_field(&evts[0], "ph"), "M");
    assert_eq!(str_field(&evts[0], "name"), "process_name");
    let args = field(&evts[0], "args");
    assert_eq!(args.get("name").and_then(Value::as_str), Some("empty-proc"));
}

#[test]
fn single_span_has_complete_event_fields() {
    let rec = Recorder::enabled();
    {
        let mut lane = rec.thread("main");
        let h = lane.begin("stream", "read-panel");
        std::thread::sleep(std::time::Duration::from_millis(1));
        lane.end_with(h, &[("panel", 4)]);
    }
    let trace = rec.drain("p");
    let evts = events(&chrome_trace_json(&trace));

    // process_name + thread_name metadata, then exactly one X event.
    let metas: Vec<_> = evts.iter().filter(|e| str_field(e, "ph") == "M").collect();
    assert_eq!(metas.len(), 2);
    assert!(metas.iter().any(|e| str_field(e, "name") == "thread_name"));

    let spans: Vec<_> = evts.iter().filter(|e| str_field(e, "ph") == "X").collect();
    assert_eq!(spans.len(), 1);
    let span = spans[0];
    assert_eq!(str_field(span, "name"), "read-panel");
    assert_eq!(str_field(span, "cat"), "stream");
    let ts = num_field(span, "ts");
    let dur = num_field(span, "dur");
    assert!(ts >= 0.0);
    assert!(
        dur >= 1_000.0,
        "1ms sleep must show as >= 1000us, got {dur}"
    );
    uint_field(span, "pid");
    uint_field(span, "tid");
    let args = field(span, "args");
    assert!(matches!(args.get("panel"), Some(Value::U64(4))));
}

#[test]
fn cross_thread_trace_keeps_lanes_apart() {
    let rec = Recorder::enabled();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let rec = rec.clone();
            scope.spawn(move || {
                let mut lane = rec.thread("worker");
                let h = lane.begin("t", "work");
                lane.end(h);
            });
        }
    });
    let trace = rec.drain("p");
    let evts = events(&chrome_trace_json(&trace));
    let tids: Vec<u64> = evts
        .iter()
        .filter(|e| str_field(e, "ph") == "X")
        .map(|e| uint_field(e, "tid"))
        .collect();
    assert_eq!(tids.len(), 2);
    assert_ne!(tids[0], tids[1], "each thread must get its own lane");
    // Every span tid is declared by a thread_name metadata event.
    let declared: Vec<u64> = evts
        .iter()
        .filter(|e| str_field(e, "ph") == "M" && str_field(e, "name") == "thread_name")
        .map(|e| uint_field(e, "tid"))
        .collect();
    for tid in &tids {
        assert!(declared.contains(tid), "span tid {tid} has no thread_name");
    }
}

#[test]
fn instant_events_use_instant_phase() {
    let rec = Recorder::enabled();
    {
        let mut lane = rec.thread("coord");
        lane.event("dist", "heartbeat-timeout");
    }
    let trace = rec.drain("p");
    let evts = events(&chrome_trace_json(&trace));
    let instants: Vec<_> = evts.iter().filter(|e| str_field(e, "ph") == "i").collect();
    assert_eq!(instants.len(), 1);
    assert_eq!(str_field(instants[0], "name"), "heartbeat-timeout");
    assert_eq!(str_field(instants[0], "s"), "t");
    num_field(instants[0], "ts");
}
