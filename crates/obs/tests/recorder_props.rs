//! Property tests for the recorder's trace invariants.
//!
//! N real threads concurrently emit nesting patterns drawn by proptest;
//! whatever the interleaving, the drained trace must be **well-nested**
//! (every span's interval lies inside its parent's, depth and parent
//! linkage consistent with the emission stack) and **monotonically
//! timestamped** (per thread, `begin` order equals start-timestamp
//! order, and no span ends before it starts).

use proptest::prelude::*;
use sparch_obs::{Recorder, Span, Trace};
use std::collections::HashMap;

/// One thread's emission program: a balanced bracket sequence encoded as
/// "open a span, then recursively run children, then close". Depths are
/// drawn as a vector of child counts, bounded to keep traces small.
#[derive(Debug, Clone)]
struct Program {
    /// `shape[d]` = number of spans opened at depth `d` under each span
    /// at depth `d - 1` (depth 0: top-level spans).
    shape: Vec<u8>,
    /// Emit a zero-duration event inside every span at the deepest level.
    with_events: bool,
}

fn arb_program() -> impl Strategy<Value = Program> {
    (vec(1u8..4, 1..4), 0u8..2).prop_map(|(shape, events)| Program {
        shape,
        with_events: events == 1,
    })
}

fn emit(lane: &mut sparch_obs::ThreadRecorder, program: &Program, depth: usize) {
    let Some(&count) = program.shape.get(depth) else {
        if program.with_events {
            lane.event("prop", "leaf-event");
        }
        return;
    };
    for _ in 0..count {
        let h = lane.begin("prop", "span");
        emit(lane, program, depth + 1);
        lane.end(h);
    }
}

fn check_thread(spans: &[&Span]) {
    // Emission order (seq) must match start-timestamp order, every span
    // must close no earlier than it opened, and parent linkage must
    // describe proper nesting.
    let by_seq: HashMap<u64, &Span> = spans.iter().map(|s| (s.seq, *s)).collect();
    let mut last_start = 0u64;
    for s in spans {
        assert!(
            s.start_ns >= last_start,
            "start timestamps must be monotone in seq order: {s:?}"
        );
        last_start = s.start_ns;
        assert!(s.end_ns >= s.start_ns, "span ends before it starts: {s:?}");
        if s.parent < 0 {
            assert_eq!(s.depth, 0, "top-level span with nonzero depth: {s:?}");
        } else {
            let parent = by_seq[&(s.parent as u64)];
            assert_eq!(s.depth, parent.depth + 1, "depth != parent depth + 1");
            assert!(
                s.start_ns >= parent.start_ns && s.end_ns <= parent.end_ns,
                "child interval escapes parent: child {s:?} parent {parent:?}"
            );
        }
    }
}

fn check_trace(trace: &Trace, expected_threads: usize) {
    assert_eq!(trace.threads.len(), expected_threads);
    let mut by_tid: HashMap<u64, Vec<&Span>> = HashMap::new();
    for s in &trace.spans {
        by_tid.entry(s.tid).or_default().push(s);
    }
    for spans in by_tid.values() {
        // drain() sorts by (tid, seq); re-assert to make the premise of
        // check_thread explicit.
        assert!(spans.windows(2).all(|w| w[0].seq < w[1].seq));
        check_thread(spans);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_emission_yields_well_nested_monotone_traces(
        programs in vec(arb_program(), 1..5),
    ) {
        let rec = Recorder::enabled();
        std::thread::scope(|scope| {
            for program in &programs {
                let rec = rec.clone();
                scope.spawn(move || {
                    let mut lane = rec.thread("prop-worker");
                    emit(&mut lane, program, 0);
                });
            }
        });
        let trace = rec.drain("prop");
        check_trace(&trace, programs.len());
        prop_assert!(!trace.spans.is_empty());
    }
}

#[test]
fn two_drains_partition_the_spans() {
    let rec = Recorder::enabled();
    {
        let mut lane = rec.thread("a");
        let h = lane.begin("t", "first");
        lane.end(h);
    }
    let first = rec.drain("p");
    assert_eq!(first.spans.len(), 1);
    {
        let mut lane = rec.thread("b");
        let h = lane.begin("t", "second");
        lane.end(h);
    }
    let second = rec.drain("p");
    assert_eq!(second.spans.len(), 1);
    assert_eq!(second.spans[0].name, "second");
}
