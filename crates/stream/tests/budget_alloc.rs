//! Allocator-audited memory-budget guarantee.
//!
//! A byte-tracking global allocator (current live bytes + high-water
//! mark) wraps the system allocator. The test builds a task whose full
//! set of partials is several times larger than the budget, runs it
//! unbounded and budgeted, and checks that
//!
//! 1. the store-reported `peak_live_bytes` respects the budget exactly,
//!    with the spill path genuinely exercised,
//! 2. the *allocator-observed* peak heap growth of the budgeted run is
//!    bounded by the budget plus the pipeline's documented transients
//!    (the one in-flight panel product, the merge output under
//!    construction, and I/O buffers), and
//! 3. the budgeted run's peak heap growth is well below the unbounded
//!    run's — the budget is real, not bookkeeping.
//!
//! This file holds exactly one test so no neighbouring test's
//! allocations can race the counters (same discipline as
//! `crates/core/tests/zero_alloc.rs`).

use sparch_sparse::{algo, gen, linalg};
use sparch_stream::{MemoryBudget, StreamConfig, StreamingExecutor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct TrackingAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_alloc(new_size);
        on_dealloc(layout.size());
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

/// Runs one multiply and returns (report, allocator peak growth over the
/// baseline at call time).
fn audited_run(a: &sparch_sparse::Csr, budget: MemoryBudget) -> (sparch_stream::StreamReport, u64) {
    let exec = StreamingExecutor::new(StreamConfig {
        budget,
        panels: 8,
        merge_ways: 4,
        threads: Some(1), // one in-flight panel product, the documented transient
        spill_dir: None,
    });
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let (c, report) = exec.multiply(a, a).expect("streaming multiply failed");
    let peak_growth = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    drop(c);
    (report, peak_growth)
}

#[test]
fn peak_live_bytes_respect_the_budget() {
    // Integer-valued so the budgeted result is bit-identical to the
    // in-memory reference — correctness and memory are checked together.
    let a = linalg::map_values(&gen::uniform_random(192, 192, 192 * 14, 42), |v| {
        (v * 4.0).round()
    });
    let expected = algo::gustavson(&a, &a);

    // Unbounded probe: learn the full partial footprint and the
    // allocator peak the budget is supposed to beat.
    let (probe, unbounded_peak) = audited_run(&a, MemoryBudget::unbounded());
    assert_eq!(probe.spill_writes, 0);
    assert!(
        probe.partial_bytes_total > 0 && probe.partials >= 6,
        "workload too small to be meaningful: {probe:?}"
    );

    // Budget: a quarter of the footprint — impossible without spilling.
    let budget = probe.partial_bytes_total / 4;
    let (report, budgeted_peak) = audited_run(&a, MemoryBudget::from_bytes(budget));

    // (1) The store's accounting honours the budget and really spilled.
    assert!(
        report.peak_live_bytes <= budget,
        "peak {} exceeds budget {budget}",
        report.peak_live_bytes
    );
    assert!(report.spill_writes > 0 && report.spill_reads > 0);
    assert!(report.spill_bytes_written > 0);

    // (2) Allocator-observed growth ≤ budget + documented transients:
    // one in-flight partial (threads = 1), one merge output being built
    // (bounded by the result's own footprint), spill I/O buffers and
    // heap/plan bookkeeping under the fixed slack.
    let result_bytes = expected.estimated_bytes();
    let slack = 1 << 20;
    let bound = budget + 2 * report.largest_partial_bytes + 2 * result_bytes + slack;
    assert!(
        budgeted_peak <= bound,
        "allocator peak {budgeted_peak} exceeds bound {bound} \
         (budget {budget}, largest partial {}, result {result_bytes})",
        report.largest_partial_bytes
    );

    // (3) The budget visibly shrinks real heap usage versus unbounded.
    assert!(
        budgeted_peak < unbounded_peak,
        "budgeted peak {budgeted_peak} not below unbounded peak {unbounded_peak}"
    );

    // And the budgeted result is still exactly right.
    let (c, _) = StreamingExecutor::new(StreamConfig {
        budget: MemoryBudget::from_bytes(budget),
        panels: 8,
        merge_ways: 4,
        threads: Some(1),
        spill_dir: None,
    })
    .multiply(&a, &a)
    .expect("streaming multiply failed");
    assert_eq!(c, expected);
}
