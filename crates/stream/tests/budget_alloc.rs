//! Allocator-audited memory-budget guarantee for the staged pipeline,
//! covering **both** operands.
//!
//! A byte-tracking global allocator (current live bytes + high-water
//! mark) wraps the system allocator. The test builds a task whose full
//! set of partials is several times larger than the budget, probes it
//! unbounded in memory, then runs it through the *pipelined* path with
//! `A` streamed panel-by-panel from a `.mtx` file and `B` sliced into
//! row panels from a matrix that lives in the allocator baseline — so
//! any whole-operand copy made by the pipeline would appear as heap
//! *growth*. It checks that
//!
//! 1. the store-reported `peak_live_bytes` respects the budget exactly,
//!    with the spill path genuinely exercised, and the result is
//!    bit-identical to `gustavson`,
//! 2. the *allocator-observed* peak heap growth of the budgeted
//!    pipelined run is bounded by the budget plus the pipeline's
//!    documented transients — a handful of panel pairs in the bounded
//!    channels, one un-inserted partial per worker, the merge output
//!    under construction, and I/O buffers under a fixed slack,
//! 3. that transient allowance is itself **smaller than either whole
//!    operand**, so the bound could not hold if the pipeline ever
//!    materialized `A` or `B` whole on top of an otherwise saturated
//!    run — this is what makes the bound evidence of streaming, and
//! 4. the budgeted run's peak heap growth is well below the unbounded
//!    in-memory run's — the budget is real, not bookkeeping.
//!
//! This file holds exactly one test so no neighbouring test's
//! allocations can race the counters (same discipline as
//! `crates/core/tests/zero_alloc.rs`).

use sparch_sparse::{algo, gen, mm, panel_ranges};
use sparch_stream::{MemoryBudget, StreamConfig, StreamingExecutor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct TrackingAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_alloc(new_size);
        on_dealloc(layout.size());
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

const PANELS: usize = 64;
const WAYS: usize = 3;

/// Output side length; the inner dimension is `2 * N` (half real, half
/// zero-flop padding — see the workload construction below).
const N: usize = 512;

fn round4(v: f64) -> f64 {
    (v * 4.0).round()
}

/// Builds the audited operand pair. The trick: claim (3) needs the
/// pipeline's transient allowance to be *smaller than either whole
/// operand*, so the operands carry extra structural weight that costs
/// **zero flops** — `A` gets non-zeros in inner columns `N..3N/2` where
/// `B`'s rows are empty, `B` gets non-zeros in inner rows `3N/2..2N`
/// where `A`'s columns are empty. A whole-operand copy would show up in
/// the heap audit at full (padded) size, while partials, the result and
/// the runtime stay those of the real `N×N·N×N` product.
fn operands() -> (sparch_sparse::Csr, sparch_sparse::Csr) {
    use sparch_sparse::Coo;
    let real_a = gen::uniform_random(N, N, N * 96, 42);
    let pad_a = gen::uniform_random(N, N / 2, N * 64, 44);
    let mut a = Coo::new(N, 2 * N);
    for (r, c, v) in real_a.iter() {
        a.push(r, c, round4(v));
    }
    for (r, c, v) in pad_a.iter() {
        a.push(r, c + N as u32, round4(v));
    }
    let real_b = gen::uniform_random(N, N, N * 96, 43);
    let pad_b = gen::uniform_random(N / 2, N, N * 64, 45);
    let mut b = Coo::new(2 * N, N);
    for (r, c, v) in real_b.iter() {
        b.push(r, c, round4(v));
    }
    for (r, c, v) in pad_b.iter() {
        b.push(r + (3 * N / 2) as u32, c, round4(v));
    }
    (a.to_csr(), b.to_csr())
}

fn config(budget: MemoryBudget) -> StreamConfig {
    StreamConfig {
        budget,
        panels: PANELS,
        merge_ways: WAYS,
        threads: Some(1), // one un-inserted partial, the documented transient
        ..StreamConfig::default()
    }
}

/// Runs `f` and returns (its output, allocator peak growth over the live
/// baseline at call time).
fn audited<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let out = f();
    let peak_growth = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    (out, peak_growth)
}

#[test]
fn peak_live_bytes_respect_the_budget_with_both_operands_streamed() {
    // Integer-valued so the budgeted, pipelined result is bit-identical
    // to the in-memory reference — correctness and memory are checked
    // together.
    let (a, b) = operands();
    let (inner, n) = (a.cols(), N);
    let expected = algo::gustavson(&a, &b);
    let a_path = std::env::temp_dir().join(format!("sparch_alloc_a_{}.mtx", std::process::id()));
    mm::write_file(&a_path, &a.to_coo()).unwrap();

    // Unbounded probe, fully in memory: learn the partial footprint and
    // the allocator peak the budget is supposed to beat.
    let exec = StreamingExecutor::new(config(MemoryBudget::unbounded()));
    let (probe, unbounded_peak) = audited(|| exec.multiply(&a, &b).expect("probe failed").1);
    assert_eq!(probe.spill_writes, 0);
    assert!(
        probe.partial_bytes_total > 0 && probe.partials >= PANELS / 2,
        "workload too small to be meaningful: {probe:?}"
    );

    // Budget: a quarter of the footprint — impossible without spilling.
    let budget = probe.partial_bytes_total / 4;
    let exec = StreamingExecutor::new(config(MemoryBudget::from_bytes(budget)));

    // The pipelined run: A panels stream from disk, B row panels are
    // sliced per panel from the baseline-resident operand. The exact
    // ranges mirror what `mm::read_panels(path, PANELS)` uses.
    let ranges = panel_ranges(inner, PANELS);
    let pair_max: u64 = ranges
        .iter()
        .map(|r| {
            a.col_panel(r.clone()).estimated_bytes() + b.row_panel(r.clone()).estimated_bytes()
        })
        .max()
        .unwrap();
    let ((c, report), streamed_peak) = audited(|| {
        let a_stream = mm::read_panels(&a_path, PANELS)
            .expect("open A")
            .map(|item| {
                item.map(|(range, coo)| (range, coo.to_csr()))
                    .map_err(sparch_stream::StreamError::from)
            });
        let b_stream = ranges
            .iter()
            .map(|r| Ok((r.clone(), b.row_panel(r.clone()))));
        exec.multiply_streams(n, inner, n, a_stream, b_stream)
            .expect("pipelined multiply failed")
    });

    // (1) The store's accounting honours the budget, really spilled, and
    // the answer is exactly right.
    assert!(
        report.peak_live_bytes <= budget,
        "peak {} exceeds budget {budget}",
        report.peak_live_bytes
    );
    assert!(report.spill_writes > 0 && report.spill_reads > 0);
    assert!(report.spill_bytes_written > 0);
    assert_eq!(c, expected);

    // (2) Allocator-observed growth ≤ budget + documented transients:
    // up to 4 panel pairs alive in the pipeline (bounded job channel of
    // threads + 1, one in the worker's hands, one being read), plus one
    // pair's worth of COO-to-CSR conversion headroom in the mm reader;
    // up to 8 partial-sized buffers outside the store's accounting — on
    // the multiply side one under construction in the worker (2× at the
    // instant of a Vec-doubling realloc), one published into the event
    // queue awaiting consumption (the `Permits` gate caps these at
    // `threads`), one just consumed mid-insert; on the spill-writer side
    // one queued in the hand-off channel, one being encoded, plus the
    // writer's encode buffer at raw-equivalent size (≤ 2× a partial's
    // in-memory footprint); and the merge output under construction —
    // its coordinate set is a subset of the final result's and the
    // builder is pre-sized to the round's summed input non-zeros, at
    // most `merge_ways` (3 here) times the result's footprint; spill
    // I/O buffers, merge scratch lanes, the plan and heap bookkeeping
    // under the fixed slack.
    let result_bytes = expected.estimated_bytes();
    let slack = 512 << 10;
    let transients = 8 * pair_max + slack;
    let bound = budget + 8 * report.largest_partial_bytes + 3 * result_bytes + transients;
    assert!(
        streamed_peak <= bound,
        "allocator peak {streamed_peak} exceeds bound {bound} \
         (budget {budget}, largest partial {}, result {result_bytes}, pair_max {pair_max})",
        report.largest_partial_bytes
    );

    // (3) The transient allowance is smaller than either whole operand,
    // so bound (2) is incompatible with materializing A or B whole on
    // top of a saturated run — the pipelined path must be streaming
    // both. (If this precondition ever fails, the workload is too small
    // to prove anything: enlarge the operands, don't loosen the bound.)
    let (a_bytes, b_bytes) = (a.estimated_bytes(), b.estimated_bytes());
    assert!(
        transients < a_bytes && transients < b_bytes,
        "transient allowance {transients} not below operands ({a_bytes}, {b_bytes}); \
         workload too small for the streaming claim"
    );

    // (4) The budget visibly shrinks real heap usage versus unbounded.
    assert!(
        streamed_peak < unbounded_peak,
        "budgeted peak {streamed_peak} not below unbounded peak {unbounded_peak}"
    );

    let _ = std::fs::remove_file(&a_path);
}
