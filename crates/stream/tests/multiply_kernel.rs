//! The panel multiply kernel's conformance contract.
//!
//! `gustavson_scratch` must be **bit-identical** to `gustavson_reference`
//! (the seed kernel, kept verbatim) on every input the shared `gen::arb`
//! grid can produce — small integers, explicit stored zeros, unit
//! patterns, continuous floats, rectangular shapes, empty rows and
//! columns — whether the scratch is cold or reused across jobs. On top
//! of the kernel contract, a deterministic sweep pins the streaming
//! pipeline's output unchanged across threads {1, 2, 8} × panels {1..6}
//! now that its multiply workers run the scratch kernel.

use proptest::prelude::*;
use sparch_sparse::gen::arb::{self, ValueClass};
use sparch_sparse::{algo, Csr, CsrBuilder};
use sparch_stream::{MemoryBudget, PanelBalance, SpillCodec, StreamConfig, StreamingExecutor};

/// Structure equal and every value bit equal — stricter than `PartialEq`
/// on `f64` (which would let `-0.0` alias `0.0`).
fn assert_bit_identical(got: &Csr, want: &Csr, what: &str) {
    assert_eq!(got.rows(), want.rows(), "{what}: rows");
    assert_eq!(got.cols(), want.cols(), "{what}: cols");
    assert_eq!(got.row_ptr(), want.row_ptr(), "{what}: row_ptr");
    assert_eq!(got.col_indices(), want.col_indices(), "{what}: col_idx");
    let bits = |m: &Csr| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(got), bits(want), "{what}: value bits");
}

/// Cold scratch, warm scratch and the caller-supplied live-row variant
/// all reproduce the reference bit for bit.
fn assert_kernels_agree(a: &Csr, b: &Csr, what: &str) {
    let reference = algo::gustavson_reference(a, b);
    assert_bit_identical(&algo::gustavson(a, b), &reference, what);
    let mut scratch = algo::MultiplyScratch::new();
    let cold = algo::gustavson_scratch(a, b, &mut scratch);
    assert_bit_identical(&cold, &reference, what);
    // The same scratch again — the warm path a pipeline worker lives on.
    let warm = algo::gustavson_scratch(a, b, &mut scratch);
    assert_bit_identical(&warm, &reference, what);
    let on_rows = algo::gustavson_scratch_on_rows(a, b, &a.occupied_rows(), &mut scratch);
    assert_bit_identical(&on_rows, &reference, what);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn small_int_pairs(pair in arb::spgemm_pair(24, 90, ValueClass::SmallInt)) {
        let (a, b) = pair;
        assert_kernels_agree(&a, &b, "small-int");
    }

    #[test]
    fn explicit_zero_pairs(pair in arb::spgemm_pair(20, 70, ValueClass::SmallIntWithZeros)) {
        // Stored zeros are entries like any other: the condensed row
        // index must keep rows whose only entries are explicit zeros.
        let (a, b) = pair;
        assert_kernels_agree(&a, &b, "explicit-zero");
    }

    #[test]
    fn unit_pattern_pairs(pair in arb::spgemm_pair(26, 100, ValueClass::Unit)) {
        let (a, b) = pair;
        assert_kernels_agree(&a, &b, "unit");
    }

    #[test]
    fn float_pairs(pair in arb::spgemm_pair(24, 90, ValueClass::Float)) {
        // Bit-identity for floats is exactly where accumulation order
        // shows: any reordering of the non-associative sums would fail.
        let (a, b) = pair;
        assert_kernels_agree(&a, &b, "float");
    }
}

/// The arb grid keeps shapes squarish; pin the edges explicitly — wide,
/// tall, 1×N and N×1 panels, fully empty operands, and a matrix whose
/// occupied rows are sparse (most rows empty, the condensed win case).
#[test]
fn rectangular_and_degenerate_shapes() {
    // 1×N times N×1 and back: single-row / single-column panels.
    let mut row = CsrBuilder::new(1, 6);
    for c in [0u32, 2, 5] {
        row.push(0, c, 1.5 + c as f64);
    }
    let row = row.finish();
    let mut col = CsrBuilder::new(6, 1);
    for r in [1u32, 2, 4] {
        col.push(r, 0, 0.25 * r as f64);
    }
    let col = col.finish();
    assert_kernels_agree(&row, &col, "1xN * Nx1");
    assert_kernels_agree(&col, &row, "Nx1 * 1xN");

    // Tall-thin times short-wide (the shape panel jobs actually have).
    let a = sparch_sparse::gen::uniform_random(80, 4, 60, 3);
    let b = sparch_sparse::gen::uniform_random(4, 50, 90, 4);
    assert_kernels_agree(&a, &b, "tall * wide");

    // Mostly-empty A: only a handful of rows occupied.
    let mut sparse_rows = CsrBuilder::new(64, 4);
    sparse_rows.push(3, 1, 2.0);
    sparse_rows.push(40, 0, -1.0);
    sparse_rows.push(40, 3, 4.0);
    sparse_rows.push(63, 2, 0.5);
    let sparse_rows = sparse_rows.finish();
    assert_kernels_agree(&sparse_rows, &b, "condensed rows");

    // Empty operands and empty-dimension shapes.
    assert_kernels_agree(&Csr::zero(5, 4), &Csr::zero(4, 3), "all empty");
    assert_kernels_agree(&Csr::zero(0, 4), &Csr::zero(4, 3), "zero rows");
    assert_kernels_agree(&Csr::zero(5, 0), &Csr::zero(0, 3), "zero inner");
}

/// Duplicate-coordinate COO input: canonicalization sums duplicates
/// (possibly to an explicit zero), and the kernels must agree on the
/// canonical matrix — including the summed-to-zero entry's sign bit.
#[test]
fn duplicate_coordinate_coo_inputs() {
    let a = sparch_sparse::Coo::from_entries(
        3,
        3,
        vec![
            (0, 1, 2.0),
            (0, 1, 3.0), // duplicate, sums to 5.0
            (1, 2, 1.0),
            (1, 2, -1.0), // duplicate, sums to +0.0 — stored, not pruned
            (2, 0, 4.0),
        ],
    )
    .to_csr();
    assert_eq!(a.nnz(), 3, "duplicates must canonicalize before SpGEMM");
    let b = sparch_sparse::gen::uniform_random(3, 5, 9, 11);
    assert_kernels_agree(&a, &b, "duplicate COO");
}

/// Streaming output is unchanged across threads {1, 2, 8} × panels
/// {1..6}: bit-identical to `gustavson` for integer inputs at every grid
/// point, and bit-identical to a fixed single-thread reference for float
/// inputs at every thread count (the fold order is pinned by the panel
/// split alone — worker scratch reuse must not leak into results).
#[test]
fn streaming_unchanged_across_threads_and_panels() {
    let exec = |panels: usize, threads: usize| {
        StreamingExecutor::new(StreamConfig {
            budget: MemoryBudget::from_kb(2),
            panels,
            balance: PanelBalance::Nnz,
            merge_ways: 3,
            spill_codec: SpillCodec::Varint,
            threads: Some(threads),
            merge_workers: None,
            spill_dir: None,
        })
    };
    let int_pairs = arb::spgemm_pair(24, 90, ValueClass::SmallInt);
    let (a, b) = arb::sample(&int_pairs, 5);
    let expected = algo::gustavson(&a, &b);
    for panels in 1..6 {
        for threads in [1, 2, 8] {
            let (c, report) = exec(panels, threads).multiply(&a, &b).unwrap();
            assert_bit_identical(&c, &expected, &format!("int p{panels} t{threads}"));
            assert!(
                report.stages.multiply_kernel_seconds <= report.stages.multiply_busy_seconds,
                "kernel seconds exceed busy seconds: {:?}",
                report.stages
            );
        }
    }
    let float_pairs = arb::spgemm_pair(24, 90, ValueClass::Float);
    let (a, b) = arb::sample(&float_pairs, 6);
    for panels in 1..6 {
        let reference = exec(panels, 1).multiply(&a, &b).unwrap().0;
        for threads in [2, 8] {
            let (c, _) = exec(panels, threads).multiply(&a, &b).unwrap();
            assert_bit_identical(&c, &reference, &format!("float p{panels} t{threads}"));
        }
    }
}
