//! Property suite for the spill codecs.
//!
//! Random sorted-COO partials — drawn from the shared `gen::arb` CSR
//! strategies, which guarantee the spill writer's input invariants
//! (rows non-decreasing, columns strictly increasing within a row,
//! duplicate-free), including explicit stored zeros and empty partials —
//! must encode→decode **bit-identically** in both the raw and the
//! delta+varint format, and a varint-requested file must never be larger
//! than the raw encoding of the same partial. On the explicit-zeros
//! (small-integer) grid the varint format must save at least 2× in
//! aggregate — the ROADMAP target that motivated the codec.

use proptest::prelude::*;
use sparch_sparse::gen::arb::{self, ValueClass};
use sparch_sparse::Csr;
use sparch_stream::spill::{raw_size, varint_size, write_partial, SpillReader};
use sparch_stream::tempdir::TempDir;
use sparch_stream::SpillCodec;

/// Bit-exact equality: `Csr == Csr` compares values with `f64::eq`,
/// which conflates `0.0` with `-0.0`; the codec contract is stronger.
fn assert_bits_identical(back: &Csr, original: &Csr, what: &str) {
    assert_eq!(back.rows(), original.rows(), "{what}: rows");
    assert_eq!(back.cols(), original.cols(), "{what}: cols");
    assert_eq!(back.row_ptr(), original.row_ptr(), "{what}: row_ptr");
    assert_eq!(
        back.col_indices(),
        original.col_indices(),
        "{what}: col_idx"
    );
    assert_eq!(back.values().len(), original.values().len(), "{what}: nnz");
    for (i, (x, y)) in back.values().iter().zip(original.values()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: value {i} bits differ ({x} vs {y})"
        );
    }
}

/// Round-trips `m` through both codecs, checking bit-exactness and the
/// varint-never-larger guarantee.
fn check_roundtrip(m: &Csr) {
    let dir = TempDir::new("codec");
    let raw_path = dir.file("raw.bin");
    let varint_path = dir.file("varint.bin");
    let raw = write_partial(&raw_path, m, SpillCodec::Raw).unwrap();
    let varint = write_partial(&varint_path, m, SpillCodec::Varint).unwrap();
    assert_eq!(raw.bytes, raw_size(m));
    assert_eq!(raw.bytes, std::fs::metadata(&raw_path).unwrap().len());
    assert_eq!(varint.bytes, std::fs::metadata(&varint_path).unwrap().len());
    // The writer's per-file fallback: a varint request never loses.
    assert!(
        varint.bytes <= raw.bytes,
        "varint {} > raw {}",
        varint.bytes,
        raw.bytes
    );
    assert_eq!(varint.bytes, varint_size(m).min(raw_size(m)));
    let from_raw = SpillReader::open(&raw_path).unwrap().read_all().unwrap();
    assert_bits_identical(&from_raw, m, "raw");
    let from_varint = SpillReader::open(&varint_path).unwrap().read_all().unwrap();
    assert_bits_identical(&from_varint, m, "varint");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn with_zeros_partials_round_trip(m in arb::csr_with(24, 28, 120, ValueClass::SmallIntWithZeros)) {
        check_roundtrip(&m);
    }

    #[test]
    fn float_partials_round_trip(m in arb::csr_with(20, 26, 100, ValueClass::Float)) {
        // Full-mantissa values: the swapped-bits varint rarely helps, so
        // this exercises the raw-value mode and the per-file fallback.
        check_roundtrip(&m);
    }

    #[test]
    fn small_int_partials_round_trip(m in arb::csr_with(26, 22, 140, ValueClass::SmallInt)) {
        check_roundtrip(&m);
    }

    #[test]
    fn unit_partials_round_trip(m in arb::csr_with(18, 40, 90, ValueClass::Unit)) {
        check_roundtrip(&m);
    }
}

#[test]
fn empty_and_negative_zero_partials_round_trip() {
    check_roundtrip(&Csr::zero(7, 5));
    check_roundtrip(&Csr::zero(0, 0));
    let m = Csr::try_new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![0.0, -0.0, 5.5]).unwrap();
    check_roundtrip(&m);
}

/// The ROADMAP's ≥2× target, asserted in aggregate over a deterministic
/// sample of the WithZeros arb grid (the workload class the streaming
/// conformance suite spills).
#[test]
fn varint_halves_spill_bytes_on_the_with_zeros_grid() {
    let strategy = arb::csr_with(32, 32, 300, ValueClass::SmallIntWithZeros);
    let mut total_raw = 0u64;
    let mut total_varint = 0u64;
    let mut sampled = 0usize;
    for seed in 0..32 {
        let m = arb::sample(&strategy, seed);
        if m.nnz() == 0 {
            continue;
        }
        sampled += 1;
        total_raw += raw_size(&m);
        total_varint += varint_size(&m).min(raw_size(&m));
    }
    assert!(sampled >= 16, "grid degenerated to empties: {sampled}");
    assert!(
        total_varint * 2 <= total_raw,
        "varint saved less than 2x on the WithZeros grid: {total_varint} of {total_raw}"
    );
}
