//! Injected-failure coverage for the pipeline's spill I/O paths.
//!
//! The guarantee under test: when the spill volume fails mid-run — here
//! injected by pointing `spill_dir` under a regular file, which fails
//! exactly like a full disk does (`create_dir_all`/`create` error) —
//! the run resolves to a typed [`StreamError::Io`] whose message names
//! the offending path. No panic on the writer thread, no hang, and the
//! same outcome whether the spill is written inline or handed to the
//! dedicated writer thread.

use sparch_sparse::gen;
use sparch_stream::{MemoryBudget, StreamConfig, StreamError, StreamingExecutor};

fn blocked_spill_dir(tag: &str) -> std::path::PathBuf {
    let blocker = std::env::temp_dir().join(format!("sparch_ioerr_{tag}_{}", std::process::id()));
    std::fs::write(&blocker, b"i am a file, not a directory").unwrap();
    blocker.join("spills")
}

/// A zero budget forces every partial through the spill writer; with the
/// spill directory uncreatable the run must fail with `Io` and the error
/// must name the path, at one merge worker and at two.
#[test]
fn spill_failure_surfaces_as_io_error_with_path_context() {
    let a = gen::uniform_random(48, 48, 400, 21);
    let b = gen::uniform_random(48, 48, 400, 22);
    for merge_workers in [1usize, 2] {
        let spill_dir = blocked_spill_dir(&format!("mw{merge_workers}"));
        let exec = StreamingExecutor::new(StreamConfig {
            budget: MemoryBudget::from_bytes(0),
            panels: 4,
            threads: Some(2),
            merge_workers: Some(merge_workers),
            spill_dir: Some(spill_dir.clone()),
            ..StreamConfig::default()
        });
        match exec.multiply(&a, &b) {
            Err(StreamError::Io(msg)) => {
                let parent = spill_dir.parent().unwrap();
                assert!(
                    msg.contains(&*parent.to_string_lossy()) || msg.contains("spill"),
                    "error should carry spill-path context, got: {msg}"
                );
            }
            Err(other) => panic!("expected Io error, got {other:?}"),
            Ok(_) => panic!("run must fail when the spill volume is unusable"),
        }
        let _ = std::fs::remove_file(spill_dir.parent().unwrap());
    }
}

/// The same failure injected while the pipeline is already deep in a run
/// (non-zero budget, so spilling starts only under pressure) still
/// resolves to an error, not a wedge: the orchestrator aborts the reader
/// and drains every stage.
#[test]
fn late_spill_failure_aborts_cleanly() {
    let a = gen::rmat_graph500(128, 8, 31);
    let spill_dir = blocked_spill_dir("late");
    let exec = StreamingExecutor::new(StreamConfig {
        // Small but non-zero: the first partials fit, pressure builds,
        // then the first eviction hits the broken volume.
        budget: MemoryBudget::from_kb(8),
        panels: 6,
        threads: Some(2),
        merge_workers: Some(2),
        spill_dir: Some(spill_dir.clone()),
        ..StreamConfig::default()
    });
    match exec.multiply(&a, &a) {
        Err(StreamError::Io(_)) => {}
        Err(other) => panic!("expected Io error, got {other:?}"),
        Ok(_) => panic!("run must fail when the spill volume is unusable"),
    }
    let _ = std::fs::remove_file(spill_dir.parent().unwrap());
}

/// Sanity twin: an identical run with a *working* spill dir succeeds and
/// matches the dense reference — so the failures above are the injected
/// fault, not the configuration.
#[test]
fn control_run_with_working_spill_dir_succeeds() {
    let a = gen::uniform_random(48, 48, 400, 21);
    let b = gen::uniform_random(48, 48, 400, 22);
    let exec = StreamingExecutor::new(StreamConfig {
        budget: MemoryBudget::from_bytes(0),
        panels: 4,
        threads: Some(2),
        merge_workers: Some(2),
        ..StreamConfig::default()
    });
    let (c, report) = exec.multiply(&a, &b).unwrap();
    assert!(report.spill_writes > 0, "budget 0 must spill");
    assert!(c.approx_eq(&sparch_sparse::algo::gustavson(&a, &b), 1e-12));
}
