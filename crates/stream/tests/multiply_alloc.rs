//! Allocator-audited scratch-reuse guarantee for the panel multiply
//! kernel.
//!
//! A multiply worker owns one `MultiplyScratch` for its lifetime; after
//! one warm-up job the SPA (values + marker), the occupancy list and the
//! live-row index are all sized, so a warm job touches the allocator
//! only for its *output*: the pre-sized `CsrBuilder`'s three reserves
//! (row pointers, column indices, values), of which the two per-entry
//! arrays are the only large ones. A counting global allocator pins
//! that down exactly: the warm kernel call makes **three allocations
//! total, two of them ≥ 64 KiB**, on a workload whose SPA arrays
//! (~235 KiB each) would dominate the audit if they were re-allocated
//! per job — which is precisely what the seed `gustavson_reference`
//! does, and what its strictly larger audit count shows.
//!
//! This file holds exactly one test so no neighbouring test's
//! allocations can race the counters (same discipline as
//! `merge_alloc.rs` / `budget_alloc.rs`).

use sparch_sparse::{algo, gen, Csr};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations at or above this size count as "large" — well above the
/// builder's row-pointer reserve (~16 KiB for 2000 rows) and the
/// occupancy list, well below the SPA arrays (~235 KiB each) and the
/// output's per-entry reserves.
const BIG: usize = 64 << 10;

struct TrackingAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static BIG_ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALL_ALLOCS: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    ALL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    if size >= BIG {
        BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_alloc(new_size);
        on_dealloc(layout.size());
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

/// Runs `f` and returns (its output, total allocation count, large
/// allocation count).
fn audited<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let all_before = ALL_ALLOCS.load(Ordering::Relaxed);
    let big_before = BIG_ALLOCS.load(Ordering::Relaxed);
    let out = f();
    let all = ALL_ALLOCS.load(Ordering::Relaxed) - all_before;
    let big = BIG_ALLOCS.load(Ordering::Relaxed) - big_before;
    (out, all, big)
}

#[test]
fn warm_multiply_jobs_make_zero_spa_allocations() {
    // Panel-job shape: tall-thin A (2000×64), B fanning out to 30_000
    // columns so each SPA array is 30_000 slots — 234 KiB of values,
    // 234 KiB of markers — far above the audit threshold.
    const B_COLS: usize = 30_000;
    let jobs: Vec<(Csr, Csr)> = (0..3)
        .map(|s| {
            (
                gen::uniform_random(2000, 64, 6000, 90 + s),
                gen::uniform_random(64, B_COLS, 6400, 190 + s),
            )
        })
        .collect();
    let (a0, b0) = &jobs[0];

    // The seed kernel pays the SPA per call: its audit must show more
    // than the output's two large reserves.
    let (reference, _, reference_bigs) = audited(|| algo::gustavson_reference(a0, b0));
    assert!(
        reference_bigs > 2,
        "reference should re-allocate its SPA per call at large size, saw {reference_bigs}"
    );

    // Warm-up: the first job sizes every scratch buffer.
    let mut scratch = algo::MultiplyScratch::new();
    let warm_up = algo::gustavson_scratch(a0, b0, &mut scratch);
    assert_eq!(warm_up, reference, "kernels disagree");

    // The same job warm: exactly the output builder's three reserves
    // (row_ptr ~16 KiB, col_idx and values above the threshold) and
    // nothing else — zero SPA allocations.
    let reuses_before = scratch.reuses();
    let (warm, warm_all, warm_bigs) = audited(|| algo::gustavson_scratch(a0, b0, &mut scratch));
    assert_eq!(warm, reference, "warm rerun changed the result");
    assert_eq!(
        warm_all, 3,
        "a warm job must allocate exactly its three output arrays, saw {warm_all}"
    );
    assert_eq!(
        warm_bigs, 2,
        "a warm job's only large allocations are the col_idx + values reserves, saw {warm_bigs}"
    );
    assert_eq!(
        scratch.reuses(),
        reuses_before + 1,
        "the warm job must be counted as a scratch reuse"
    );

    // Different jobs of the same panel shape stay SPA-free too: the
    // occupancy list may grow (it is far below the threshold), but no
    // large allocation beyond the output ever recurs.
    for (i, (a, b)) in jobs.iter().enumerate().skip(1) {
        let (got, _, bigs) = audited(|| algo::gustavson_scratch(a, b, &mut scratch));
        assert_eq!(got, algo::gustavson_reference(a, b), "job {i} disagrees");
        assert_eq!(
            bigs, 2,
            "job {i}: large allocations beyond the output reserves, saw {bigs}"
        );
    }
}
