//! The parallel merge stage's determinism contract.
//!
//! The Huffman plan fixes every round's children before any round runs,
//! so however rounds interleave across merge workers, each one folds the
//! same inputs in the same order — results must be **bit-identical** to
//! the serial (one merge worker, one thread, in-core, raw codec)
//! reference at every merge-worker count, thread count, budget (zero
//! budget = every round reads all-spilled children) and spill codec.
//! Float values make this the strongest possible check: one reordered
//! fold would shift ulps and fail `assert_eq!`.

use proptest::prelude::*;
use sparch_sparse::gen::arb::{self, ValueClass};
use sparch_sparse::{algo, gen, linalg, Csr};
use sparch_stream::{MemoryBudget, PanelBalance, SpillCodec, StreamConfig, StreamingExecutor};

const WAYS: [usize; 3] = [2, 4, 8];
const WORKERS: [usize; 3] = [1, 2, 8];

#[allow(clippy::too_many_arguments)]
fn exec(
    budget: u64,
    panels: usize,
    threads: usize,
    merge_workers: usize,
    ways: usize,
    codec: SpillCodec,
    balance: PanelBalance,
) -> StreamingExecutor {
    StreamingExecutor::new(StreamConfig {
        budget: MemoryBudget::from_bytes(budget),
        panels,
        balance,
        merge_ways: ways,
        spill_codec: codec,
        threads: Some(threads),
        merge_workers: Some(merge_workers),
        spill_dir: None,
    })
}

/// The serial reference at the same (panels, balance, ways) — the only
/// knobs the fold order may depend on.
fn serial_reference(a: &Csr, b: &Csr, panels: usize, ways: usize, balance: PanelBalance) -> Csr {
    exec(u64::MAX, panels, 1, 1, ways, SpillCodec::Raw, balance)
        .multiply(a, b)
        .expect("serial reference multiply failed")
        .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_merge_is_bit_identical_to_serial(
        pair in arb::spgemm_pair(22, 80, ValueClass::Float),
        ways in prop_oneof![Just(WAYS[0]), Just(WAYS[1]), Just(WAYS[2])],
        workers in prop_oneof![Just(WORKERS[0]), Just(WORKERS[1]), Just(WORKERS[2])],
        budget in prop_oneof![Just(0u64), Just(u64::MAX)],
        codec in prop_oneof![Just(SpillCodec::Raw), Just(SpillCodec::Varint)],
        balance in prop_oneof![Just(PanelBalance::Uniform), Just(PanelBalance::Nnz)],
    ) {
        let (a, b) = pair;
        let reference = serial_reference(&a, &b, 5, ways, balance);
        let (c, report) = exec(budget, 5, 2, workers, ways, codec, balance)
            .multiply(&a, &b)
            .expect("parallel multiply failed");
        prop_assert_eq!(c, reference, "ways {} workers {} budget {} {} {}", ways, workers, budget, codec, balance);
        prop_assert!(report.peak_live_bytes <= budget);
    }
}

/// The deterministic tour of the same grid, every combination by name,
/// including 8 threads (more workers than panels) and telemetry sanity.
#[test]
fn merge_worker_grid_sweep() {
    let pairs = arb::spgemm_pair(24, 90, ValueClass::Float);
    for seed in 0..3 {
        let (a, b) = arb::sample(&pairs, seed);
        for ways in WAYS {
            let reference = serial_reference(&a, &b, 6, ways, PanelBalance::Nnz);
            for workers in WORKERS {
                for threads in [1, 2, 8] {
                    for budget in [0, u64::MAX] {
                        let (c, report) = exec(
                            budget,
                            6,
                            threads,
                            workers,
                            ways,
                            SpillCodec::Varint,
                            PanelBalance::Nnz,
                        )
                        .multiply(&a, &b)
                        .expect("multiply failed");
                        assert_eq!(
                            c, reference,
                            "seed {seed} ways {ways} workers {workers} \
                             threads {threads} budget {budget}"
                        );
                        let stages = &report.stages;
                        assert!(stages.rounds_merged_concurrently <= report.merge_rounds as u64);
                        assert!(stages.merge_kernel_seconds <= stages.merge_busy_seconds);
                        if report.merge_rounds > 0 {
                            // Every round consumes at least its output's
                            // worth of triples.
                            assert!(stages.merge_triples >= report.output_nnz as u64);
                        }
                        if budget == 0 {
                            // Every spill went through the writer thread.
                            assert_eq!(stages.spill_writeback_offloaded, report.spill_writes);
                            assert!(report.spill_writes >= report.partials as u64);
                        }
                    }
                }
            }
        }
    }
}

/// Zero budget forces every merge round to stream *all* of its children
/// from disk — the all-spilled regime — while the rounds themselves run
/// on parallel workers. Results must still match `gustavson` exactly
/// (integer values ⇒ bit-identical), and the offload accounting must
/// cover every write.
#[test]
fn all_spilled_rounds_merge_in_parallel() {
    let a = linalg::map_values(&gen::uniform_random(120, 120, 1400, 9), |v| {
        (v * 4.0).round()
    });
    let expected = algo::gustavson(&a, &a);
    for workers in [2, 8] {
        let (c, report) = exec(0, 11, 2, workers, 3, SpillCodec::Varint, PanelBalance::Nnz)
            .multiply(&a, &a)
            .expect("all-spilled multiply failed");
        assert_eq!(c, expected, "workers {workers}");
        assert!(report.merge_rounds >= 4, "want a deep plan: {report:?}");
        assert_eq!(report.peak_live_bytes, 0);
        assert!(report.spill_writes >= report.partials as u64);
        assert_eq!(
            report.stages.spill_writeback_offloaded, report.spill_writes,
            "every spill write must ride the writer thread"
        );
        assert!(
            report.stages.spill_write_seconds > 0.0,
            "offloaded writes must still be timed"
        );
        assert!(report.stages.merge_triples > 0);
    }
}

/// On a workload with several independent rounds and long multiplies,
/// the scheduler overlaps rounds with other in-flight work. Scheduling
/// noise on a loaded machine can serialize one run, so this asserts the
/// counter over a handful of attempts — any single success proves the
/// concurrent path is wired.
#[test]
fn parallel_rounds_actually_overlap() {
    let a = linalg::map_values(&gen::uniform_random(160, 160, 3200, 5), |v| {
        (v * 4.0).round()
    });
    let expected = algo::gustavson(&a, &a);
    let mut best = 0u64;
    for _attempt in 0..5 {
        let (c, report) = exec(u64::MAX, 8, 2, 2, 2, SpillCodec::Raw, PanelBalance::Nnz)
            .multiply(&a, &a)
            .expect("multiply failed");
        assert_eq!(c, expected);
        best = best.max(report.stages.rounds_merged_concurrently);
        if best > 0 {
            break;
        }
    }
    assert!(
        best >= 1,
        "no merge round ever overlapped other in-flight work across 5 runs"
    );
}
