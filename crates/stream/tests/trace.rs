//! End-to-end trace export for the streaming pipeline.
//!
//! A budgeted two-thread run with an enabled recorder must produce a
//! Chrome trace that (a) parses as strict JSON, (b) contains at least
//! one complete event for every pipeline stage — `read-panel`,
//! `multiply-job`, `merge-round`, `spill-write` — on correctly labelled
//! thread lanes, and (c) attributes per-stage span time within 5% of
//! the `StageReport` busy figures the same run publishes.

use serde_json::Value;
use sparch_obs::{chrome_trace_json, Recorder};
use sparch_sparse::{algo, gen};
use sparch_stream::{MemoryBudget, StreamConfig, StreamingExecutor};

fn int_matrix(rows: usize, cols: usize, nnz: usize, seed: u64) -> sparch_sparse::Csr {
    sparch_sparse::linalg::map_values(&gen::uniform_random(rows, cols, nnz, seed), |v| {
        (v * 4.0).round()
    })
}

fn str_field(event: &Value, key: &str) -> String {
    event
        .get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("event missing string {key:?}: {event:?}"))
        .to_string()
}

#[test]
fn budgeted_two_thread_run_exports_full_stage_coverage() {
    let a = int_matrix(128, 128, 128 * 8, 31);
    let executor = StreamingExecutor::new(StreamConfig {
        budget: MemoryBudget::from_bytes(0), // force the spill path
        panels: 8,
        merge_ways: 3,
        threads: Some(2),
        ..StreamConfig::default()
    })
    .with_recorder(Recorder::enabled());

    let (c, report) = executor.multiply(&a, &a).unwrap();
    assert_eq!(c, algo::gustavson(&a, &a));

    let trace = executor.recorder().drain("stream");

    // Stage attribution: span sums vs the report's busy-seconds, within
    // 5% plus a small absolute slack for sub-microsecond stages.
    let tol = |x: f64| 0.05 * x + 1e-4;
    let s = &report.stages;
    let close = |name: &str, expect: f64| {
        let got = trace.seconds_named(name);
        assert!(
            (got - expect).abs() <= tol(expect),
            "{name} spans sum to {got}s, report says {expect}s"
        );
    };
    close("read-panel", s.reader_busy_seconds);
    close("multiply-job", s.multiply_busy_seconds);
    close("kernel", s.multiply_kernel_seconds);
    close("merge-round", s.merge_kernel_seconds);
    close("spill-write", s.spill_write_seconds);
    // Orchestrator bookkeeping + merge rounds together are the merge
    // stage's busy time.
    let merge_busy = trace.seconds_named("orchestrate") + trace.seconds_named("merge-round");
    assert!(
        (merge_busy - s.merge_busy_seconds).abs() <= tol(s.merge_busy_seconds),
        "orchestrate + merge-round = {merge_busy}s, report says {}s",
        s.merge_busy_seconds
    );

    // The exported Chrome trace parses strictly and covers every stage.
    let json = chrome_trace_json(&trace);
    let root: Value = serde_json::from_str(&json).expect("exporter must emit valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    for stage in ["read-panel", "multiply-job", "merge-round", "spill-write"] {
        let count = events
            .iter()
            .filter(|e| str_field(e, "ph") == "X" && str_field(e, "name") == stage)
            .count();
        assert!(count > 0, "no complete {stage} event in the export");
    }
    // Every pipeline lane announces itself by name.
    let lane_names: Vec<String> = events
        .iter()
        .filter(|e| str_field(e, "ph") == "M" && str_field(e, "name") == "thread_name")
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .expect("thread_name args.name")
                .to_string()
        })
        .collect();
    for lane in [
        "reader",
        "multiply",
        "merge",
        "spill-writer",
        "orchestrator",
    ] {
        assert!(
            lane_names.iter().any(|n| n.starts_with(lane)),
            "no {lane} lane declared; lanes: {lane_names:?}"
        );
    }
}
