//! The streaming pipeline's conformance contract, pinned across the
//! shared `gen::arb` grid at several budgets, panel counts, spill
//! codecs and balance modes.
//!
//! For integer-valued inputs (products and sums exact in f64) the
//! streamed result must be **bit-identical** to `gustavson` — same
//! `row_ptr`, `col_idx` and value bits — whatever the budget (including
//! a zero budget, where every partial spills to disk and streams back),
//! panel count, thread count, spill codec or balance mode. For
//! continuous floats the structure is still exact; values may drift by
//! ulps because the panel split regroups the non-associative summation,
//! so they are compared to 1e-12.

use proptest::prelude::*;
use sparch_sparse::gen::arb::{self, ValueClass};
use sparch_sparse::{algo, Csr};
use sparch_stream::{MemoryBudget, PanelBalance, SpillCodec, StreamConfig, StreamingExecutor};

fn exec_with(
    budget: u64,
    panels: usize,
    threads: usize,
    codec: SpillCodec,
    balance: PanelBalance,
) -> StreamingExecutor {
    StreamingExecutor::new(StreamConfig {
        budget: MemoryBudget::from_bytes(budget),
        panels,
        balance,
        merge_ways: 3, // small fan-in → multi-round merges even on tiny grids
        spill_codec: codec,
        threads: Some(threads),
        merge_workers: None,
        spill_dir: None,
    })
}

fn exec(budget: u64, panels: usize, threads: usize) -> StreamingExecutor {
    exec_with(
        budget,
        panels,
        threads,
        SpillCodec::Varint,
        PanelBalance::Nnz,
    )
}

/// Budgets swept by every check: spill-everything, spill-some, in-core.
const BUDGETS: [u64; 3] = [0, 2 << 10, u64::MAX];

const CODECS: [SpillCodec; 2] = [SpillCodec::Raw, SpillCodec::Varint];
const BALANCES: [PanelBalance; 2] = [PanelBalance::Uniform, PanelBalance::Nnz];

fn assert_streams_exactly(
    a: &Csr,
    b: &Csr,
    budget: u64,
    panels: usize,
    codec: SpillCodec,
    balance: PanelBalance,
) {
    let expected = algo::gustavson(a, b);
    let (c, report) = exec_with(budget, panels, 2, codec, balance)
        .multiply(a, b)
        .expect("streaming multiply failed");
    assert_eq!(
        c, expected,
        "budget {budget} panels {panels} {codec} {balance}"
    );
    assert!(report.peak_live_bytes <= budget);
    if budget == 0 {
        // Every partial spills, and so does every non-final round output.
        assert!(report.spill_writes >= report.partials as u64);
        assert_eq!(report.peak_live_bytes, 0);
    }
    // The codec never loses to raw, whatever spilled.
    assert!(report.spill_bytes_written <= report.spill_bytes_raw_equivalent);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn small_int_inputs_are_bit_identical(
        pair in arb::spgemm_pair(20, 70, ValueClass::SmallInt),
        budget in prop_oneof![Just(BUDGETS[0]), Just(BUDGETS[1]), Just(BUDGETS[2])],
        panels in 1usize..6,
        codec in prop_oneof![Just(CODECS[0]), Just(CODECS[1])],
        balance in prop_oneof![Just(BALANCES[0]), Just(BALANCES[1])],
    ) {
        let (a, b) = pair;
        assert_streams_exactly(&a, &b, budget, panels, codec, balance);
    }

    #[test]
    fn explicit_zero_inputs_are_bit_identical(
        pair in arb::spgemm_pair(18, 60, ValueClass::SmallIntWithZeros),
        budget in prop_oneof![Just(BUDGETS[0]), Just(BUDGETS[2])],
        panels in 1usize..5,
        codec in prop_oneof![Just(CODECS[0]), Just(CODECS[1])],
    ) {
        // Stored zeros must survive both spill formats and the merge fold.
        let (a, b) = pair;
        assert_streams_exactly(&a, &b, budget, panels, codec, PanelBalance::Nnz);
    }

    #[test]
    fn unit_pattern_inputs_are_bit_identical(
        pair in arb::spgemm_pair(22, 80, ValueClass::Unit),
        panels in 1usize..6,
        balance in prop_oneof![Just(BALANCES[0]), Just(BALANCES[1])],
    ) {
        let (a, b) = pair;
        assert_streams_exactly(&a, &b, 0, panels, SpillCodec::Varint, balance);
    }

    #[test]
    fn float_inputs_match_structurally_to_tolerance(
        pair in arb::spgemm_pair(20, 70, ValueClass::Float),
        budget in prop_oneof![Just(BUDGETS[0]), Just(BUDGETS[2])],
        panels in 1usize..6,
        codec in prop_oneof![Just(CODECS[0]), Just(CODECS[1])],
    ) {
        let (a, b) = pair;
        let expected = algo::gustavson(&a, &b);
        let (c, _) = exec_with(budget, panels, 2, codec, PanelBalance::Nnz)
            .multiply(&a, &b)
            .expect("multiply");
        // approx_eq demands exact row_ptr/col_idx equality plus values
        // within tolerance — the structural half is the hard guarantee.
        prop_assert!(c.approx_eq(&expected, 1e-12), "budget {} panels {} {}", budget, panels, codec);
    }
}

/// The deterministic tour of the grid the property tests sample: every
/// seed × budget × panel × thread × codec × balance combination, so
/// failures name their reproducer.
#[test]
fn deterministic_grid_sweep() {
    let pairs = arb::spgemm_pair(24, 90, ValueClass::SmallInt);
    for seed in 0..6 {
        let (a, b) = arb::sample(&pairs, seed);
        let expected = algo::gustavson(&a, &b);
        for budget in BUDGETS {
            for panels in [1, 2, 5] {
                for threads in [1, 2] {
                    for codec in CODECS {
                        for balance in BALANCES {
                            let (c, report) = exec_with(budget, panels, threads, codec, balance)
                                .multiply(&a, &b)
                                .expect("streaming multiply failed");
                            assert_eq!(
                                c, expected,
                                "seed {seed} budget {budget} panels {panels} \
                                 threads {threads} {codec} {balance}"
                            );
                            assert!(report.peak_live_bytes <= budget);
                        }
                    }
                }
            }
        }
    }
}

/// Float fold order is pinned by (panels, balance) alone: at a fixed
/// split, results are bit-identical across budgets, threads and codecs
/// even for non-associative float arithmetic — stage timing never
/// reaches the merge plan.
#[test]
fn float_fold_order_is_timing_invariant() {
    let pairs = arb::spgemm_pair(24, 90, ValueClass::Float);
    for seed in 0..3 {
        let (a, b) = arb::sample(&pairs, seed);
        for balance in BALANCES {
            let reference = exec_with(u64::MAX, 4, 1, SpillCodec::Raw, balance)
                .multiply(&a, &b)
                .unwrap()
                .0;
            for budget in [0, u64::MAX] {
                for threads in [1, 3] {
                    for codec in CODECS {
                        let (c, _) = exec_with(budget, 4, threads, codec, balance)
                            .multiply(&a, &b)
                            .unwrap();
                        assert_eq!(
                            c, reference,
                            "seed {seed} budget {budget} threads {threads} {codec} {balance}"
                        );
                    }
                }
            }
        }
    }
}

/// A budget so small every partial spills still reproduces gustavson on
/// a workload big enough for multi-round, multi-level merges.
#[test]
fn everything_spills_on_a_multi_round_merge() {
    use sparch_sparse::{gen, linalg};
    let a = linalg::map_values(&gen::uniform_random(120, 120, 1400, 9), |v| {
        (v * 4.0).round()
    });
    let (c, report) = exec(0, 11, 2).multiply(&a, &a).unwrap();
    assert_eq!(c, algo::gustavson(&a, &a));
    assert!(report.merge_rounds >= 4, "want a deep plan, got {report:?}");
    assert!(report.spill_writes >= report.partials as u64);
    assert_eq!(report.peak_live_bytes, 0);
    assert!(report.spill_reads >= report.spill_writes);
    // Integer-valued partials must compress at least 2× under varint.
    assert!(
        report.spill_bytes_written * 2 <= report.spill_bytes_raw_equivalent,
        "varint saved too little: {} of {} raw",
        report.spill_bytes_written,
        report.spill_bytes_raw_equivalent
    );
}

/// Both operands streamed panel-by-panel from disk through the mm
/// readers: the full out-of-core path the CLI uses, conformant at
/// 1 and 2 threads.
#[test]
fn disk_to_disk_pipeline_matches_gustavson() {
    use sparch_sparse::mm;
    let pairs = arb::spgemm_pair(26, 110, ValueClass::SmallInt);
    let (a, b) = arb::sample(&pairs, 17);
    let expected = algo::gustavson(&a, &b);
    let dir = std::env::temp_dir();
    let a_path = dir.join(format!("sparch_d2d_a_{}.mtx", std::process::id()));
    let b_path = dir.join(format!("sparch_d2d_b_{}.mtx", std::process::id()));
    mm::write_file(&a_path, &a.to_coo()).unwrap();
    mm::write_file(&b_path, &b.to_coo()).unwrap();
    for threads in [1, 2] {
        for panels in [1, 3] {
            let e = exec(0, panels, threads);
            let a_reader = mm::read_panels(&a_path, panels).unwrap();
            let ranges: Vec<_> = sparch_sparse::panel_ranges(a.cols(), panels);
            let b_reader = mm::RowPanelReader::open_with_ranges(&b_path, ranges).unwrap();
            let (c, report) = e
                .multiply_streams(
                    a.rows(),
                    a.cols(),
                    b.cols(),
                    a_reader.map(|i| {
                        i.map(|(r, coo)| (r, coo.to_csr()))
                            .map_err(sparch_stream::StreamError::from)
                    }),
                    b_reader.map(|i| {
                        i.map(|(r, coo)| (r, coo.to_csr()))
                            .map_err(sparch_stream::StreamError::from)
                    }),
                )
                .unwrap();
            assert_eq!(c, expected, "threads {threads} panels {panels}");
            assert_eq!(
                report.panels,
                sparch_sparse::panel_ranges(a.cols(), panels).len(),
                "every yielded panel pair must be consumed"
            );
        }
    }
    let _ = std::fs::remove_file(&a_path);
    let _ = std::fs::remove_file(&b_path);
}
