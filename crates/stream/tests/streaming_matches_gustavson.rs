//! The streaming pipeline's conformance contract, pinned across the
//! shared `gen::arb` grid at several budgets and panel counts.
//!
//! For integer-valued inputs (products and sums exact in f64) the
//! streamed result must be **bit-identical** to `gustavson` — same
//! `row_ptr`, `col_idx` and value bits — whatever the budget (including
//! a zero budget, where every partial spills to disk and streams back),
//! panel count or thread count. For continuous floats the structure is
//! still exact; values may drift by ulps because the panel split
//! regroups the non-associative summation, so they are compared to
//! 1e-12.

use proptest::prelude::*;
use sparch_sparse::gen::arb::{self, ValueClass};
use sparch_sparse::{algo, Csr};
use sparch_stream::{MemoryBudget, StreamConfig, StreamingExecutor};

fn exec(budget: u64, panels: usize, threads: usize) -> StreamingExecutor {
    StreamingExecutor::new(StreamConfig {
        budget: MemoryBudget::from_bytes(budget),
        panels,
        merge_ways: 3, // small fan-in → multi-round merges even on tiny grids
        threads: Some(threads),
        spill_dir: None,
    })
}

/// Budgets swept by every check: spill-everything, spill-some, in-core.
const BUDGETS: [u64; 3] = [0, 2 << 10, u64::MAX];

fn assert_streams_exactly(a: &Csr, b: &Csr, budget: u64, panels: usize) {
    let expected = algo::gustavson(a, b);
    let (c, report) = exec(budget, panels, 2)
        .multiply(a, b)
        .expect("streaming multiply failed");
    assert_eq!(c, expected, "budget {budget} panels {panels}");
    assert!(report.peak_live_bytes <= budget);
    if budget == 0 {
        // Every partial spills, and so does every non-final round output.
        assert!(report.spill_writes >= report.partials as u64);
        assert_eq!(report.peak_live_bytes, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn small_int_inputs_are_bit_identical(
        pair in arb::spgemm_pair(20, 70, ValueClass::SmallInt),
        budget in prop_oneof![Just(BUDGETS[0]), Just(BUDGETS[1]), Just(BUDGETS[2])],
        panels in 1usize..6,
    ) {
        let (a, b) = pair;
        assert_streams_exactly(&a, &b, budget, panels);
    }

    #[test]
    fn explicit_zero_inputs_are_bit_identical(
        pair in arb::spgemm_pair(18, 60, ValueClass::SmallIntWithZeros),
        budget in prop_oneof![Just(BUDGETS[0]), Just(BUDGETS[2])],
        panels in 1usize..5,
    ) {
        // Stored zeros must survive the spill format and the merge fold.
        let (a, b) = pair;
        assert_streams_exactly(&a, &b, budget, panels);
    }

    #[test]
    fn unit_pattern_inputs_are_bit_identical(
        pair in arb::spgemm_pair(22, 80, ValueClass::Unit),
        panels in 1usize..6,
    ) {
        let (a, b) = pair;
        assert_streams_exactly(&a, &b, 0, panels);
    }

    #[test]
    fn float_inputs_match_structurally_to_tolerance(
        pair in arb::spgemm_pair(20, 70, ValueClass::Float),
        budget in prop_oneof![Just(BUDGETS[0]), Just(BUDGETS[2])],
        panels in 1usize..6,
    ) {
        let (a, b) = pair;
        let expected = algo::gustavson(&a, &b);
        let (c, _) = exec(budget, panels, 2).multiply(&a, &b).expect("multiply");
        // approx_eq demands exact row_ptr/col_idx equality plus values
        // within tolerance — the structural half is the hard guarantee.
        prop_assert!(c.approx_eq(&expected, 1e-12), "budget {} panels {}", budget, panels);
    }
}

/// The deterministic tour of the grid the property tests sample: every
/// seed × budget × panel × thread combination, so failures name their
/// reproducer.
#[test]
fn deterministic_grid_sweep() {
    let pairs = arb::spgemm_pair(24, 90, ValueClass::SmallInt);
    for seed in 0..8 {
        let (a, b) = arb::sample(&pairs, seed);
        let expected = algo::gustavson(&a, &b);
        for budget in BUDGETS {
            for panels in [1, 2, 5] {
                for threads in [1, 3] {
                    let (c, report) = exec(budget, panels, threads)
                        .multiply(&a, &b)
                        .expect("streaming multiply failed");
                    assert_eq!(
                        c, expected,
                        "seed {seed} budget {budget} panels {panels} threads {threads}"
                    );
                    assert!(report.peak_live_bytes <= budget);
                }
            }
        }
    }
}

/// A budget so small every partial spills still reproduces gustavson on
/// a workload big enough for multi-round, multi-level merges.
#[test]
fn everything_spills_on_a_multi_round_merge() {
    use sparch_sparse::{gen, linalg};
    let a = linalg::map_values(&gen::uniform_random(120, 120, 1400, 9), |v| {
        (v * 4.0).round()
    });
    let (c, report) = exec(0, 11, 2).multiply(&a, &a).unwrap();
    assert_eq!(c, algo::gustavson(&a, &a));
    assert!(report.merge_rounds >= 4, "want a deep plan, got {report:?}");
    assert!(report.spill_writes >= report.partials as u64);
    assert_eq!(report.peak_live_bytes, 0);
    assert!(report.spill_reads >= report.spill_writes);
}
