//! Allocator audit: with tracing **off**, the instrumented pipeline's
//! warm-run allocation count is exactly that of an identical run — the
//! disabled recorder adds zero heap allocations to the hot path.
//!
//! The default `StreamingExecutor` carries a disabled recorder, so two
//! identical single-threaded in-memory runs must allocate the same
//! number of times: every span begin/end, counter update and lane
//! creation compiles down to no-ops (the per-operation proof lives in
//! `crates/obs/tests/obs_alloc.rs`; this test pins the composition into
//! the real pipeline audited by the PR 6/PR 7 allocation tests).
//!
//! This file holds exactly one test so no neighbouring test's
//! allocations can race the counters (same discipline as
//! `crates/core/tests/zero_alloc.rs`).

use sparch_sparse::gen;
use sparch_stream::{MemoryBudget, StreamConfig, StreamingExecutor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct TrackingAlloc;

static ALL_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

/// Runs `f` and returns (its output, allocations made during the call).
fn audited<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALL_ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, ALL_ALLOCS.load(Ordering::Relaxed) - before)
}

/// Warm-run allocation floor: the minimum count over several identical
/// runs. Thread/channel scheduling jitters individual runs by a couple
/// of allocations (an extra channel block here or there); the *floor*
/// is deterministic, so any systematic allocation added to the hot path
/// — one per span, per panel, per counter update — shifts it.
fn alloc_floor(runs: usize, f: impl Fn() -> u64) -> u64 {
    (0..runs).map(|_| f()).min().unwrap()
}

#[test]
fn disabled_tracing_adds_zero_allocations_to_warm_runs() {
    let a = sparch_sparse::linalg::map_values(&gen::uniform_random(96, 96, 700, 19), |v| {
        (v * 4.0).round()
    });
    let config = StreamConfig {
        budget: MemoryBudget::unbounded(), // in-memory: no spill I/O jitter
        panels: 6,
        merge_ways: 3,
        threads: Some(1), // a single multiply worker keeps the schedule fixed
        ..StreamConfig::default()
    };
    let executor = StreamingExecutor::new(config.clone());

    // Warm-up: thread-local scratch, channel blocks, the result shape.
    let ((expected, _), _) = audited(|| executor.multiply(&a, &a).unwrap());

    // With tracing disabled every recorder call must be free, so two
    // independently measured warm floors can only differ if the
    // recorder — the sole conditional code on this path — allocates.
    let floor = |exec: &StreamingExecutor| {
        alloc_floor(5, || {
            let ((c, _), allocs) = audited(|| exec.multiply(&a, &a).unwrap());
            assert_eq!(c, expected);
            allocs
        })
    };
    let first = floor(&executor);
    let second = floor(&executor);
    assert_eq!(
        first, second,
        "identical warm runs hit different allocation floors ({first} vs {second}): \
         the disabled recorder must be allocation-free"
    );

    // Positive control: the same workload with tracing *on* must sit
    // visibly above the disabled floor (span storage, lane labels, the
    // sink) — proof this audit can see recorder allocations at all.
    let traced = StreamingExecutor::new(config).with_recorder(sparch_obs::Recorder::enabled());
    let enabled = floor(&traced);
    drop(traced.recorder().drain("audit"));
    assert!(
        enabled > first,
        "enabled tracing allocated no more than disabled ({enabled} vs {first}): \
         the audit has lost its sensitivity"
    );
}
