//! Allocator-audited pre-sizing guarantee for the merge kernel.
//!
//! [`merge_sources`] pre-sizes its output builder from the summed source
//! nnz — an exact upper bound — so the merge loop itself never touches
//! the allocator: the only large allocations are the builder's two
//! up-front reserves (column indices at 4 B/entry, values at 8 B/entry).
//! A counting global allocator pins that down: the pre-sized kernel makes
//! **exactly two** allocations ≥ 64 KiB on a workload whose index/value
//! arrays are each far above that threshold, while the seed
//! `merge_sources_reference` (a doubling `CsrBuilder::new`) makes
//! strictly more — the doubling ladder this kernel exists to avoid. Peak
//! heap growth of the pre-sized merge is bounded by the reserve itself
//! (12 B per input entry) plus fixed scratch slack, and both kernels
//! produce bit-identical output.
//!
//! This file holds exactly one test so no neighbouring test's
//! allocations can race the counters (same discipline as
//! `budget_alloc.rs`).

use sparch_stream::merge::{merge_sources, merge_sources_reference, MergeScratch, PartialSource};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations at or above this size count as "large" — chosen well
/// above every fixed-size scratch buffer in the merge path (decode lanes
/// are 8 KiB, `row_ptr` for 400 rows is ~3 KiB) and well below the
/// workload's index/value reserves (~470 KiB and ~940 KiB).
const BIG: usize = 64 << 10;

struct TrackingAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static BIG_ALLOCS: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    if size >= BIG {
        BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_alloc(new_size);
        on_dealloc(layout.size());
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

/// Runs `f` and returns (its output, large-allocation count, peak heap
/// growth over the live baseline at call time).
fn audited<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let big_before = BIG_ALLOCS.load(Ordering::Relaxed);
    let out = f();
    let big = BIG_ALLOCS.load(Ordering::Relaxed) - big_before;
    let peak_growth = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    (out, big, peak_growth)
}

#[test]
fn presized_merge_allocates_once_per_output_array() {
    let parts: Vec<sparch_sparse::Csr> = (0..3)
        .map(|s| sparch_sparse::gen::uniform_random(400, 400, 40_000, 40 + s))
        .collect();
    let total: usize = parts.iter().map(sparch_sparse::Csr::nnz).sum();
    // The audit is only meaningful when each reserve clears the
    // threshold on its own.
    assert!(
        total * 4 >= 2 * BIG,
        "workload too small for the large-allocation audit: {total} nnz"
    );

    let sources =
        || -> Vec<PartialSource> { parts.iter().cloned().map(PartialSource::from_csr).collect() };

    // The seed kernel: a doubling builder, so the index/value arrays
    // each climb a realloc ladder through the large sizes. Sources are
    // built *outside* each audited window — cloning the operands is
    // itself a large allocation.
    let srcs = sources();
    let (reference, reference_bigs, _) = audited(move || merge_sources_reference(400, 400, srcs));
    let reference = reference.expect("reference merge failed");

    // The pre-sized kernel, with the scratch lanes pre-warmed the way a
    // merge worker reuses them across rounds: exactly one reserve per
    // output array, nothing else at large size.
    let mut scratch = MergeScratch::new();
    let warm = merge_sources(400, 400, sources(), &mut scratch).expect("warm-up merge failed");
    let srcs = sources();
    let (merged, presized_bigs, peak_growth) =
        audited(|| merge_sources(400, 400, srcs, &mut scratch));
    let merged = merged.expect("pre-sized merge failed");

    assert_eq!(merged, reference, "kernels disagree");
    assert_eq!(merged, warm, "pre-sized merge is not run-to-run stable");
    assert_eq!(
        presized_bigs, 2,
        "pre-sized merge should make exactly two large allocations \
         (col_idx + values reserves), saw {presized_bigs}"
    );
    assert!(
        reference_bigs > presized_bigs,
        "doubling reference made only {reference_bigs} large allocations — \
         the pre-sizing audit lost its contrast"
    );

    // Peak growth: the two reserves (12 B per input entry) plus row_ptr,
    // decode lanes and loser-tree scratch under a fixed slack.
    let slack = 256 << 10;
    let bound = 12 * total as u64 + slack;
    assert!(
        peak_growth <= bound,
        "pre-sized merge peak growth {peak_growth} exceeds bound {bound} ({total} nnz)"
    );
}
