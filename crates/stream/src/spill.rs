//! The compact binary spill formats for partial matrices.
//!
//! A spilled partial is the paper's "partially merged result written back
//! to DRAM", transplanted to disk: sorted COO triples, the same
//! row-major `(row, col)` order the merge hardware consumes ("sorted by
//! row index then column index", §II-A), so a reader can stream straight
//! into a k-way merge without ever materializing the matrix.
//!
//! Two on-disk formats share a 28-byte header (little-endian):
//!
//! ```text
//! magic  u32   0x5350_4d31 ("SPM1", raw) | 0x5350_4d32 ("SPM2", varint)
//! rows   u64
//! cols   u64
//! nnz    u64
//! ```
//!
//! **Raw** (`SPM1`) stores each entry as `(row u32, col u32, value f64)`
//! — 16 bytes per element, streamable in both directions.
//!
//! **Delta+varint** (`SPM2`) exploits the sort order: rows are
//! non-decreasing and columns strictly increase within a row, so
//! coordinates delta-encode into single-byte varints almost always.
//! Per entry:
//!
//! ```text
//! drow   varint  row - previous row (0 for same-row runs)
//! token  varint  (cval << 1) | value_mode
//!                cval = col            if first entry or drow > 0
//!                     = col - prev_col otherwise (≥ 1: strictly increasing)
//! value  value_mode 0: varint of value.to_bits().swap_bytes()
//!        value_mode 1: raw 8-byte little-endian bit pattern
//! ```
//!
//! The byte swap moves the mantissa's trailing zero bytes — which small
//! integers, halves and other short-mantissa values have in abundance —
//! to the top of the word where LEB128 drops them: `3.0` encodes in 2
//! bytes instead of 8. Values whose swapped varint would not beat the
//! raw 8 bytes use mode 1, so an entry never pays more than
//! `drow + token + 8`. As a final guarantee the writer computes the
//! exact varint size first and falls back to `SPM1` whenever varint
//! would not be strictly smaller — a *requested* varint spill is never
//! larger than raw, on any input. The reader dispatches on the magic,
//! so the choice is invisible to the merge heap: both formats stream
//! back through the same bounded buffer.

use crate::{SpillCodec, StreamError};
use sparch_sparse::{Csr, CsrBuilder, Index, Triple};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC_RAW: u32 = 0x5350_4d31;
const MAGIC_VARINT: u32 = 0x5350_4d32;
const HEADER_BYTES: u64 = 28;
const RAW_ENTRY_BYTES: u64 = 16;

/// Read-buffer capacity for streaming a spilled partial back in. Small
/// by design: this bounds the resident bytes a spilled merge child costs.
const READ_BUF_BYTES: usize = 64 * 1024;

/// A partial matrix sitting on disk.
#[derive(Debug)]
pub struct SpillFile {
    /// Where the partial lives.
    pub path: PathBuf,
    /// File size in bytes (header + entries), for traffic accounting.
    pub bytes: u64,
}

/// The exact on-disk size `csr` would occupy in the raw format.
pub fn raw_size(csr: &Csr) -> u64 {
    HEADER_BYTES + csr.nnz() as u64 * RAW_ENTRY_BYTES
}

/// The exact on-disk size `csr` would occupy in the delta+varint format
/// (before the writer's raw fallback is applied).
pub fn varint_size(csr: &Csr) -> u64 {
    let mut body = 0u64;
    let mut enc = DeltaState::new();
    for (r, c, v) in csr.iter() {
        let (drow, token, value) = enc.encode(r, c, v);
        body += varint_len(drow) + varint_len(token);
        body += match value {
            ValueEnc::Varint(bits) => varint_len(bits),
            ValueEnc::Raw(_) => 8,
        };
    }
    HEADER_BYTES + body
}

/// Writes `csr` to `path` under the requested codec.
///
/// [`SpillCodec::Varint`] is a *request*: the writer computes the exact
/// delta+varint size first and silently falls back to the raw format
/// whenever varint would not be strictly smaller, so the returned
/// [`SpillFile::bytes`] never exceeds [`raw_size`]. The magic records
/// the format actually chosen.
pub fn write_partial(path: &Path, csr: &Csr, codec: SpillCodec) -> Result<SpillFile, StreamError> {
    let use_varint = codec == SpillCodec::Varint && varint_size(csr) < raw_size(csr);
    let mut w = BufWriter::new(File::create(path)?);
    let magic = if use_varint { MAGIC_VARINT } else { MAGIC_RAW };
    w.write_all(&magic.to_le_bytes())?;
    w.write_all(&(csr.rows() as u64).to_le_bytes())?;
    w.write_all(&(csr.cols() as u64).to_le_bytes())?;
    w.write_all(&(csr.nnz() as u64).to_le_bytes())?;
    let mut bytes = HEADER_BYTES;
    if use_varint {
        let mut enc = DeltaState::new();
        for (r, c, v) in csr.iter() {
            let (drow, token, value) = enc.encode(r, c, v);
            bytes += write_varint(&mut w, drow)?;
            bytes += write_varint(&mut w, token)?;
            match value {
                ValueEnc::Varint(vbits) => bytes += write_varint(&mut w, vbits)?,
                ValueEnc::Raw(vbits) => {
                    w.write_all(&vbits.to_le_bytes())?;
                    bytes += 8;
                }
            }
        }
    } else {
        for (r, c, v) in csr.iter() {
            w.write_all(&r.to_le_bytes())?;
            w.write_all(&c.to_le_bytes())?;
            w.write_all(&v.to_bits().to_le_bytes())?;
        }
        bytes += csr.nnz() as u64 * RAW_ENTRY_BYTES;
    }
    w.flush()?;
    Ok(SpillFile {
        path: path.to_path_buf(),
        bytes,
    })
}

/// How one value is stored in the varint format.
enum ValueEnc {
    /// Varint of the byte-swapped bit pattern (shorter than 8 bytes).
    Varint(u64),
    /// Raw 8-byte bit pattern (the swap would not have helped).
    Raw(u64),
}

/// Shared encoder state machine: the writer, the sizer and the decoder
/// all walk the same (prev_row, prev_col) deltas, so the three can never
/// disagree about the format.
#[derive(Debug)]
struct DeltaState {
    prev_row: Index,
    prev_col: Index,
    first: bool,
}

impl DeltaState {
    fn new() -> Self {
        DeltaState {
            prev_row: 0,
            prev_col: 0,
            first: true,
        }
    }

    /// Encodes one `(row, col, value)` into its (drow, token, value)
    /// triplet, advancing the state.
    fn encode(&mut self, r: Index, c: Index, v: f64) -> (u64, u64, ValueEnc) {
        let drow = (r - self.prev_row) as u64;
        let cval = if self.first || drow > 0 {
            c as u64
        } else {
            (c - self.prev_col) as u64
        };
        let vbits = v.to_bits().swap_bytes();
        let value = if varint_len(vbits) < 8 {
            ValueEnc::Varint(vbits)
        } else {
            ValueEnc::Raw(v.to_bits())
        };
        let mode = matches!(value, ValueEnc::Raw(_)) as u64;
        self.prev_row = r;
        self.prev_col = c;
        self.first = false;
        (drow, (cval << 1) | mode, value)
    }

    /// Decodes one entry from `reader`, advancing the state.
    fn decode<R: Read>(&mut self, reader: &mut R) -> Result<Triple, StreamError> {
        let drow = read_varint(reader)? as Index;
        let token = read_varint(reader)?;
        let (cval, mode) = ((token >> 1) as Index, token & 1);
        let r = self.prev_row + drow;
        let c = if self.first || drow > 0 {
            cval
        } else {
            self.prev_col + cval
        };
        let v = if mode == 0 {
            f64::from_bits(read_varint(reader)?.swap_bytes())
        } else {
            f64::from_bits(read_u64(reader)?)
        };
        self.prev_row = r;
        self.prev_col = c;
        self.first = false;
        Ok((r, c, v))
    }
}

/// Streams a spilled partial back as sorted triples through a bounded
/// read buffer, whichever format the writer chose.
#[derive(Debug)]
pub struct SpillReader {
    reader: BufReader<File>,
    rows: usize,
    cols: usize,
    remaining: u64,
    /// Delta state for the varint format; `None` for raw.
    delta: Option<DeltaState>,
}

impl SpillReader {
    /// Opens a spill file, validates its header and selects the decoder
    /// for the format named by the magic.
    pub fn open(path: &Path) -> Result<Self, StreamError> {
        let mut reader = BufReader::with_capacity(READ_BUF_BYTES, File::open(path)?);
        let magic = read_u32(&mut reader)?;
        let delta = match magic {
            MAGIC_RAW => None,
            MAGIC_VARINT => Some(DeltaState::new()),
            _ => {
                return Err(StreamError::Io(format!(
                    "bad spill magic {magic:#010x} in {}",
                    path.display()
                )))
            }
        };
        let rows = read_u64(&mut reader)? as usize;
        let cols = read_u64(&mut reader)? as usize;
        let remaining = read_u64(&mut reader)?;
        Ok(SpillReader {
            reader,
            rows,
            cols,
            remaining,
            delta,
        })
    }

    /// Declared shape of the spilled partial.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The next triple in `(row, col)` order, or `None` at the end.
    pub fn next_triple(&mut self) -> Result<Option<Triple>, StreamError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        match &mut self.delta {
            None => {
                let r = read_u32(&mut self.reader)?;
                let c = read_u32(&mut self.reader)?;
                let bits = read_u64(&mut self.reader)?;
                Ok(Some((r as Index, c as Index, f64::from_bits(bits))))
            }
            Some(state) => Ok(Some(state.decode(&mut self.reader)?)),
        }
    }

    /// Drains the whole file into a CSR — the non-streaming fallback used
    /// when a spilled partial *is* the final result.
    pub fn read_all(mut self) -> Result<Csr, StreamError> {
        let mut b = CsrBuilder::with_capacity(self.rows, self.cols, self.remaining as usize);
        while let Some((r, c, v)) = self.next_triple()? {
            b.push(r, c, v);
        }
        Ok(b.finish())
    }
}

/// LEB128 length of `v` in bytes (1..=10).
fn varint_len(v: u64) -> u64 {
    (64 - v.max(1).leading_zeros() as u64).div_ceil(7)
}

/// Writes `v` as LEB128, returning the bytes written.
fn write_varint<W: Write>(w: &mut W, mut v: u64) -> Result<u64, StreamError> {
    let mut written = 0u64;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(written + 1);
        }
        w.write_all(&[byte | 0x80])?;
        written += 1;
    }
}

/// Reads one LEB128 value; rejects encodings past 10 bytes and payload
/// bits that would overflow a `u64` (a corrupted file must surface as
/// an error, never decode to a silently truncated value).
fn read_varint<R: Read>(r: &mut R) -> Result<u64, StreamError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        let byte = buf[0];
        let bits = u64::from(byte & 0x7f);
        let shifted = bits << shift;
        if shifted >> shift != bits {
            return Err(StreamError::Io("varint overflows u64".into()));
        }
        value |= shifted;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StreamError::Io("varint longer than 10 bytes".into()));
        }
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StreamError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StreamError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sparch_spill_{tag}_{}.bin", std::process::id()))
    }

    #[test]
    fn raw_round_trips_through_disk() {
        let m = gen::uniform_random(20, 30, 120, 5);
        let path = temp_path("roundtrip");
        let file = write_partial(&path, &m, SpillCodec::Raw).unwrap();
        assert_eq!(file.bytes, 28 + 16 * m.nnz() as u64);
        assert_eq!(file.bytes, std::fs::metadata(&path).unwrap().len());
        let reader = SpillReader::open(&path).unwrap();
        assert_eq!(reader.shape(), (20, 30));
        assert_eq!(reader.read_all().unwrap(), m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn varint_round_trips_and_shrinks_small_int_values() {
        let m = sparch_sparse::linalg::map_values(&gen::uniform_random(24, 24, 150, 7), |v| {
            (v * 4.0).round()
        });
        let path = temp_path("varint");
        let file = write_partial(&path, &m, SpillCodec::Varint).unwrap();
        assert_eq!(file.bytes, std::fs::metadata(&path).unwrap().len());
        assert!(
            file.bytes * 2 <= raw_size(&m),
            "small-int partial should compress ≥2×: {} vs {}",
            file.bytes,
            raw_size(&m)
        );
        assert_eq!(SpillReader::open(&path).unwrap().read_all().unwrap(), m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn both_codecs_stream_in_sorted_order() {
        let m = gen::rmat_graph500(32, 4, 9);
        for codec in [SpillCodec::Raw, SpillCodec::Varint] {
            let path = temp_path(&format!("sorted_{codec}"));
            write_partial(&path, &m, codec).unwrap();
            let mut reader = SpillReader::open(&path).unwrap();
            let mut triples = Vec::new();
            while let Some(t) = reader.next_triple().unwrap() {
                triples.push(t);
            }
            assert_eq!(triples, m.iter().collect::<Vec<_>>(), "{codec}");
            assert!(triples
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn explicit_zeros_and_negative_zero_survive_both_codecs() {
        let m = Csr::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![0.0, -0.0]).unwrap();
        for codec in [SpillCodec::Raw, SpillCodec::Varint] {
            let path = temp_path(&format!("zeros_{codec}"));
            write_partial(&path, &m, codec).unwrap();
            let back = SpillReader::open(&path).unwrap().read_all().unwrap();
            assert_eq!(back.nnz(), 2);
            assert_eq!(back.values()[0].to_bits(), 0.0f64.to_bits(), "{codec}");
            assert_eq!(back.values()[1].to_bits(), (-0.0f64).to_bits(), "{codec}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn varint_never_exceeds_raw_and_empty_falls_back() {
        // An empty partial is header-only in both formats, so varint is
        // not strictly smaller and the writer must emit the raw magic.
        let empty = Csr::zero(4, 4);
        let path = temp_path("empty");
        let file = write_partial(&path, &empty, SpillCodec::Varint).unwrap();
        assert_eq!(file.bytes, 28);
        assert_eq!(SpillReader::open(&path).unwrap().read_all().unwrap(), empty);
        let _ = std::fs::remove_file(&path);

        // Incompressible values (full-mantissa floats) still never cost
        // more than raw, thanks to the per-file fallback.
        let m = gen::uniform_random(16, 16, 80, 3);
        let path = temp_path("fallback");
        let file = write_partial(&path, &m, SpillCodec::Varint).unwrap();
        assert!(file.bytes <= raw_size(&m));
        assert_eq!(SpillReader::open(&path).unwrap().read_all().unwrap(), m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn varint_helpers_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            let written = write_varint(&mut buf, v).unwrap();
            assert_eq!(written, buf.len() as u64);
            assert_eq!(written, varint_len(v), "declared length for {v}");
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
        // An 11-byte continuation chain is rejected, not wrapped.
        let bad = [0xffu8; 11];
        assert!(read_varint(&mut bad.as_slice()).is_err());
        // A 10-byte encoding whose final byte carries payload bits past
        // u64's capacity is rejected, never silently truncated.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x7e;
        assert!(read_varint(&mut overflow.as_slice()).is_err());
        // The canonical 10-byte u64::MAX encoding still decodes.
        let mut max = Vec::new();
        write_varint(&mut max, u64::MAX).unwrap();
        assert_eq!(max.len(), 10);
        assert_eq!(read_varint(&mut max.as_slice()).unwrap(), u64::MAX);
    }

    #[test]
    fn bad_magic_is_an_io_error() {
        let path = temp_path("badmagic");
        std::fs::write(&path, [0u8; 64]).unwrap();
        assert!(matches!(SpillReader::open(&path), Err(StreamError::Io(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_files_are_io_errors() {
        let m = gen::uniform_random(8, 8, 20, 1);
        for codec in [SpillCodec::Raw, SpillCodec::Varint] {
            let path = temp_path(&format!("truncated_{codec}"));
            write_partial(&path, &m, codec).unwrap();
            let full = std::fs::read(&path).unwrap();
            std::fs::write(&path, &full[..full.len() - 5]).unwrap();
            let reader = SpillReader::open(&path).unwrap();
            assert!(
                matches!(reader.read_all(), Err(StreamError::Io(_))),
                "{codec}"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}
