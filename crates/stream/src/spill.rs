//! The compact binary spill formats for partial matrices.
//!
//! A spilled partial is the paper's "partially merged result written back
//! to DRAM", transplanted to disk: sorted COO triples, the same
//! row-major `(row, col)` order the merge hardware consumes ("sorted by
//! row index then column index", §II-A), so a reader can stream straight
//! into a k-way merge without ever materializing the matrix.
//!
//! Two on-disk formats share a 28-byte header (little-endian):
//!
//! ```text
//! magic  u32   0x5350_4d31 ("SPM1", raw) | 0x5350_4d32 ("SPM2", varint)
//! rows   u64
//! cols   u64
//! nnz    u64
//! ```
//!
//! **Raw** (`SPM1`) stores each entry as `(row u32, col u32, value f64)`
//! — 16 bytes per element, streamable in both directions.
//!
//! **Delta+varint** (`SPM2`) exploits the sort order: rows are
//! non-decreasing and columns strictly increase within a row, so
//! coordinates delta-encode into single-byte varints almost always.
//! Per entry:
//!
//! ```text
//! drow   varint  row - previous row (0 for same-row runs)
//! token  varint  (cval << 1) | value_mode
//!                cval = col            if first entry or drow > 0
//!                     = col - prev_col otherwise (≥ 1: strictly increasing)
//! value  value_mode 0: varint of value.to_bits().swap_bytes()
//!        value_mode 1: raw 8-byte little-endian bit pattern
//! ```
//!
//! The byte swap moves the mantissa's trailing zero bytes — which small
//! integers, halves and other short-mantissa values have in abundance —
//! to the top of the word where LEB128 drops them: `3.0` encodes in 2
//! bytes instead of 8. Values whose swapped varint would not beat the
//! raw 8 bytes use mode 1, so an entry never pays more than
//! `drow + token + 8`. As a final guarantee the writer computes the
//! exact varint size first and falls back to `SPM1` whenever varint
//! would not be strictly smaller — a *requested* varint spill is never
//! larger than raw, on any input. The reader dispatches on the magic,
//! so the choice is invisible to the merge heap: both formats stream
//! back through the same bounded buffer.
//!
//! The same encoding doubles as the **wire format** of the distributed
//! layer: [`encode_partial`] produces the header + body as bytes for a
//! socket frame, and [`decode_partial`] is its *untrusting* inverse —
//! it validates the header, coordinate order and bounds and the exact
//! payload length, so a truncated or corrupted frame surfaces as a
//! typed [`StreamError::Io`], never a panic.

use crate::{SpillCodec, StreamError};
use sparch_sparse::{Csr, CsrBuilder, Index, Triple};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC_RAW: u32 = 0x5350_4d31;
const MAGIC_VARINT: u32 = 0x5350_4d32;
const HEADER_BYTES: u64 = 28;
const RAW_ENTRY_BYTES: u64 = 16;

/// Read-buffer capacity for streaming a spilled partial back in. Small
/// by design: this bounds the resident bytes a spilled merge child costs.
const READ_BUF_BYTES: usize = 64 * 1024;

/// Worst-case encoded size of one varint entry: three 10-byte LEB128
/// fields (drow, token, value) — the batch decoder's look-ahead bound.
const MAX_VARINT_ENTRY_BYTES: usize = 30;

/// Largest row/column count [`decode_partial`] accepts. The row-pointer
/// array scales with the declared row count *before* any entry is read,
/// so a corrupt wire header must not be able to provoke an unbounded
/// allocation; 16M rows (a 128 MiB row-pointer worst case) sits far
/// above any shape this system ships while keeping the damage a hostile
/// frame can do survivable.
const MAX_WIRE_DIM: u64 = 1 << 24;

/// A partial matrix sitting on disk.
#[derive(Debug)]
pub struct SpillFile {
    /// Where the partial lives.
    pub path: PathBuf,
    /// File size in bytes (header + entries), for traffic accounting.
    pub bytes: u64,
}

/// The exact on-disk size `csr` would occupy in the raw format.
pub fn raw_size(csr: &Csr) -> u64 {
    HEADER_BYTES + csr.nnz() as u64 * RAW_ENTRY_BYTES
}

/// The exact on-disk size `csr` would occupy in the delta+varint format
/// (before the writer's raw fallback is applied).
pub fn varint_size(csr: &Csr) -> u64 {
    let mut body = 0u64;
    let mut enc = DeltaState::new();
    for (r, c, v) in csr.iter() {
        let (drow, token, value) = enc.encode(r, c, v);
        body += varint_len(drow) + varint_len(token);
        body += match value {
            ValueEnc::Varint(bits) => varint_len(bits),
            ValueEnc::Raw(_) => 8,
        };
    }
    HEADER_BYTES + body
}

/// Writes `csr` to `path` under the requested codec.
///
/// [`SpillCodec::Varint`] is a *request*: the writer computes the exact
/// delta+varint size first and silently falls back to the raw format
/// whenever varint would not be strictly smaller, so the returned
/// [`SpillFile::bytes`] never exceeds [`raw_size`]. The magic records
/// the format actually chosen.
pub fn write_partial(path: &Path, csr: &Csr, codec: SpillCodec) -> Result<SpillFile, StreamError> {
    let write = || -> io::Result<u64> {
        let mut w = BufWriter::new(File::create(path)?);
        let bytes = encode_into(&mut w, csr, codec)?;
        w.flush()?;
        Ok(bytes)
    };
    let bytes = write().map_err(|e| spill_io(path, "write", &e))?;
    Ok(SpillFile {
        path: path.to_path_buf(),
        bytes,
    })
}

/// An I/O failure on a spill file, with the path it happened on — the
/// context an operator needs when a temp volume fills up mid-run.
fn spill_io(path: &Path, verb: &str, detail: &dyn std::fmt::Display) -> StreamError {
    StreamError::Io(format!(
        "failed to {verb} spill file {}: {detail}",
        path.display()
    ))
}

/// The shared encoder behind [`write_partial`] and [`encode_partial`]:
/// header plus body in the format the codec request resolves to (with
/// the raw fallback applied), returning the bytes written.
fn encode_into<W: Write>(w: &mut W, csr: &Csr, codec: SpillCodec) -> io::Result<u64> {
    let use_varint = codec == SpillCodec::Varint && varint_size(csr) < raw_size(csr);
    let magic = if use_varint { MAGIC_VARINT } else { MAGIC_RAW };
    w.write_all(&magic.to_le_bytes())?;
    w.write_all(&(csr.rows() as u64).to_le_bytes())?;
    w.write_all(&(csr.cols() as u64).to_le_bytes())?;
    w.write_all(&(csr.nnz() as u64).to_le_bytes())?;
    let mut bytes = HEADER_BYTES;
    if use_varint {
        let mut enc = DeltaState::new();
        for (r, c, v) in csr.iter() {
            let (drow, token, value) = enc.encode(r, c, v);
            bytes += write_varint(w, drow)?;
            bytes += write_varint(w, token)?;
            match value {
                ValueEnc::Varint(vbits) => bytes += write_varint(w, vbits)?,
                ValueEnc::Raw(vbits) => {
                    w.write_all(&vbits.to_le_bytes())?;
                    bytes += 8;
                }
            }
        }
    } else {
        for (r, c, v) in csr.iter() {
            w.write_all(&r.to_le_bytes())?;
            w.write_all(&c.to_le_bytes())?;
            w.write_all(&v.to_bits().to_le_bytes())?;
        }
        bytes += csr.nnz() as u64 * RAW_ENTRY_BYTES;
    }
    Ok(bytes)
}

/// Encodes `csr` into the spill format in memory — the payload the
/// distributed layer ships over a socket. Identical bytes to what
/// [`write_partial`] puts on disk, including the raw fallback.
pub fn encode_partial(csr: &Csr, codec: SpillCodec) -> Vec<u8> {
    let cap = match codec {
        SpillCodec::Raw => raw_size(csr),
        SpillCodec::Varint => varint_size(csr).min(raw_size(csr)),
    };
    let mut buf = Vec::with_capacity(cap as usize);
    encode_into(&mut buf, csr, codec).expect("writing to a Vec cannot fail");
    buf
}

/// Decodes a partial from an **untrusted** byte slice — the inverse of
/// [`encode_partial`] for frames that crossed a process boundary.
///
/// Unlike [`SpillReader`] (which trusts its own spill files), every
/// declared quantity is validated before it is believed: the magic, the
/// shape (indices are `u32`), the entry count against the payload's
/// minimum entry size, strictly increasing `(row, col)` coordinates
/// within bounds, and an exact-length payload (trailing garbage is an
/// error). Corruption therefore surfaces as [`StreamError::Io`] — never
/// a panic, an over-allocation, or a silently wrong matrix.
pub fn decode_partial(bytes: &[u8]) -> Result<Csr, StreamError> {
    let mut r = bytes;
    let magic = read_u32(&mut r).map_err(|_| truncated("header"))?;
    let mut delta = match magic {
        MAGIC_RAW => None,
        MAGIC_VARINT => Some(DeltaState::new()),
        _ => {
            return Err(StreamError::Io(format!(
                "bad partial magic {magic:#010x} in wire payload"
            )))
        }
    };
    let rows = read_u64(&mut r).map_err(|_| truncated("header"))?;
    let cols = read_u64(&mut r).map_err(|_| truncated("header"))?;
    let nnz = read_u64(&mut r).map_err(|_| truncated("header"))?;
    if rows > MAX_WIRE_DIM || cols > MAX_WIRE_DIM {
        return Err(StreamError::Io(format!(
            "partial payload declares implausible shape {rows}x{cols} (limit {MAX_WIRE_DIM})"
        )));
    }
    // Every entry costs at least 3 bytes (varint: drow + token + value,
    // one byte each) — a declared count the payload cannot possibly hold
    // is rejected before any allocation sized by it.
    let min_entry = if delta.is_some() { 3 } else { RAW_ENTRY_BYTES };
    if nnz.saturating_mul(min_entry) > r.len() as u64 {
        return Err(StreamError::Io(format!(
            "partial payload declares {nnz} entries but holds only {} body bytes",
            r.len()
        )));
    }
    let mut b = CsrBuilder::with_capacity(rows as usize, cols as usize, nnz as usize);
    let mut prev: Option<(Index, Index)> = None;
    for _ in 0..nnz {
        let (row, col, v) = match &mut delta {
            None => {
                let row = read_u32(&mut r).map_err(|_| truncated("entry"))?;
                let col = read_u32(&mut r).map_err(|_| truncated("entry"))?;
                let bits = read_u64(&mut r).map_err(|_| truncated("entry"))?;
                (row as Index, col as Index, f64::from_bits(bits))
            }
            // A short read mid-entry surfaces as the reader's own
            // `UnexpectedEof`-derived message; overflow keeps its own.
            Some(state) => state.decode(&mut r)?,
        };
        if row as u64 >= rows || col as u64 >= cols {
            return Err(StreamError::Io(format!(
                "partial entry ({row}, {col}) outside declared shape {rows}x{cols}"
            )));
        }
        if prev.is_some_and(|p| p >= (row, col)) {
            return Err(StreamError::Io(format!(
                "partial entries not in strictly increasing (row, col) order at ({row}, {col})"
            )));
        }
        prev = Some((row, col));
        b.push(row, col, v);
    }
    if !r.is_empty() {
        return Err(StreamError::Io(format!(
            "partial payload has {} trailing bytes past the declared {nnz} entries",
            r.len()
        )));
    }
    Ok(b.finish())
}

/// The truncation error every under-long wire payload maps to.
fn truncated(what: &str) -> StreamError {
    StreamError::Io(format!("partial payload truncated mid-{what}"))
}

/// How one value is stored in the varint format.
enum ValueEnc {
    /// Varint of the byte-swapped bit pattern (shorter than 8 bytes).
    Varint(u64),
    /// Raw 8-byte bit pattern (the swap would not have helped).
    Raw(u64),
}

/// Shared encoder state machine: the writer, the sizer and the decoder
/// all walk the same (prev_row, prev_col) deltas, so the three can never
/// disagree about the format.
#[derive(Debug)]
struct DeltaState {
    prev_row: Index,
    prev_col: Index,
    first: bool,
}

impl DeltaState {
    fn new() -> Self {
        DeltaState {
            prev_row: 0,
            prev_col: 0,
            first: true,
        }
    }

    /// Encodes one `(row, col, value)` into its (drow, token, value)
    /// triplet, advancing the state.
    fn encode(&mut self, r: Index, c: Index, v: f64) -> (u64, u64, ValueEnc) {
        let drow = (r - self.prev_row) as u64;
        let cval = if self.first || drow > 0 {
            c as u64
        } else {
            (c - self.prev_col) as u64
        };
        let vbits = v.to_bits().swap_bytes();
        let value = if varint_len(vbits) < 8 {
            ValueEnc::Varint(vbits)
        } else {
            ValueEnc::Raw(v.to_bits())
        };
        let mode = matches!(value, ValueEnc::Raw(_)) as u64;
        self.prev_row = r;
        self.prev_col = c;
        self.first = false;
        (drow, (cval << 1) | mode, value)
    }

    /// Decodes one entry from `reader`, advancing the state. Delta sums
    /// are checked: a corrupt stream whose accumulated row or column
    /// escapes the `u32` index space errors out instead of wrapping.
    fn decode<R: Read>(&mut self, reader: &mut R) -> Result<Triple, StreamError> {
        let drow = read_varint(reader)?;
        let token = read_varint(reader)?;
        let (cval, mode) = (token >> 1, token & 1);
        let r64 = self.prev_row as u64 + drow;
        let c64 = if self.first || drow > 0 {
            cval
        } else {
            self.prev_col as u64 + cval
        };
        if r64 > u32::MAX as u64 || c64 > u32::MAX as u64 {
            return Err(StreamError::Io(
                "delta-coded coordinate overflows the u32 index space".into(),
            ));
        }
        let (r, c) = (r64 as Index, c64 as Index);
        let v = if mode == 0 {
            f64::from_bits(read_varint(reader)?.swap_bytes())
        } else {
            f64::from_bits(read_u64(reader)?)
        };
        self.prev_row = r;
        self.prev_col = c;
        self.first = false;
        Ok((r, c, v))
    }

    /// Decodes one entry straight from a byte slice, advancing `i`. The
    /// caller guarantees at least [`MAX_VARINT_ENTRY_BYTES`] readable
    /// bytes at `buf[*i..]` — the batch decoder's fast path, sharing this
    /// state machine with [`DeltaState::decode`] so the two can never
    /// disagree about the format.
    fn decode_slice(&mut self, buf: &[u8], i: &mut usize) -> Result<Triple, StreamError> {
        let drow = take_varint(buf, i)? as Index;
        let token = take_varint(buf, i)?;
        let (cval, mode) = ((token >> 1) as Index, token & 1);
        let r = self.prev_row + drow;
        let c = if self.first || drow > 0 {
            cval
        } else {
            self.prev_col + cval
        };
        let v = if mode == 0 {
            f64::from_bits(take_varint(buf, i)?.swap_bytes())
        } else {
            let bits = u64::from_le_bytes(buf[*i..*i + 8].try_into().expect("8 bytes ensured"));
            *i += 8;
            f64::from_bits(bits)
        };
        self.prev_row = r;
        self.prev_col = c;
        self.first = false;
        Ok((r, c, v))
    }
}

/// The bounded read buffer behind [`SpillReader`]: serves the per-triple
/// path through [`Read`] and the batch path through raw slice access
/// (`ensure`/`buffered`/`consume`), over one shared cursor so the two
/// paths can interleave freely.
#[derive(Debug)]
struct SpillBuf {
    file: File,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    eof: bool,
}

impl SpillBuf {
    fn new(file: File) -> Self {
        SpillBuf {
            file,
            buf: vec![0u8; READ_BUF_BYTES],
            pos: 0,
            len: 0,
            eof: false,
        }
    }

    /// Refills until at least `want` unread bytes are buffered or the
    /// file ends (`want` must be ≤ the buffer capacity). Returns the
    /// number of unread bytes available afterwards.
    fn ensure(&mut self, want: usize) -> Result<usize, StreamError> {
        debug_assert!(want <= self.buf.len());
        if self.len - self.pos < want && !self.eof {
            self.buf.copy_within(self.pos..self.len, 0);
            self.len -= self.pos;
            self.pos = 0;
            while self.len < self.buf.len() {
                let n = self.file.read(&mut self.buf[self.len..])?;
                if n == 0 {
                    self.eof = true;
                    break;
                }
                self.len += n;
            }
        }
        Ok(self.len - self.pos)
    }

    /// The unread bytes currently buffered.
    fn buffered(&self) -> &[u8] {
        &self.buf[self.pos..self.len]
    }

    /// Marks `n` buffered bytes as consumed.
    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len - self.pos);
        self.pos += n;
    }
}

impl Read for SpillBuf {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.len && !self.eof {
            self.pos = 0;
            self.len = 0;
            while self.len < self.buf.len() {
                let n = self.file.read(&mut self.buf[self.len..])?;
                if n == 0 {
                    self.eof = true;
                    break;
                }
                self.len += n;
            }
        }
        let n = (self.len - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Streams a spilled partial back as sorted triples through a bounded
/// read buffer, whichever format the writer chose.
#[derive(Debug)]
pub struct SpillReader {
    buf: SpillBuf,
    rows: usize,
    cols: usize,
    remaining: u64,
    /// Delta state for the varint format; `None` for raw.
    delta: Option<DeltaState>,
    /// Where the partial lives — prefixed onto every I/O error so a
    /// failure deep in a merge names the file that caused it.
    path: PathBuf,
}

/// Prefixes the spill file's path onto an I/O error's message.
fn with_path(path: &Path, e: StreamError) -> StreamError {
    match e {
        StreamError::Io(msg) => StreamError::Io(format!("spill file {}: {msg}", path.display())),
        other => other,
    }
}

impl SpillReader {
    /// Opens a spill file, validates its header and selects the decoder
    /// for the format named by the magic. Errors from here and from
    /// every read that follows carry the file's path.
    pub fn open(path: &Path) -> Result<Self, StreamError> {
        Self::open_inner(path).map_err(|e| with_path(path, e))
    }

    fn open_inner(path: &Path) -> Result<Self, StreamError> {
        let mut buf = SpillBuf::new(File::open(path)?);
        let magic = read_u32(&mut buf)?;
        let delta = match magic {
            MAGIC_RAW => None,
            MAGIC_VARINT => Some(DeltaState::new()),
            _ => {
                return Err(StreamError::Io(format!("bad spill magic {magic:#010x}")));
            }
        };
        let rows = read_u64(&mut buf)? as usize;
        let cols = read_u64(&mut buf)? as usize;
        let remaining = read_u64(&mut buf)?;
        Ok(SpillReader {
            buf,
            rows,
            cols,
            remaining,
            delta,
            path: path.to_path_buf(),
        })
    }

    /// Declared shape of the spilled partial.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Entries not yet decoded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The next triple in `(row, col)` order, or `None` at the end.
    pub fn next_triple(&mut self) -> Result<Option<Triple>, StreamError> {
        self.next_triple_inner()
            .map_err(|e| with_path(&self.path, e))
    }

    fn next_triple_inner(&mut self) -> Result<Option<Triple>, StreamError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        match &mut self.delta {
            None => {
                let r = read_u32(&mut self.buf)?;
                let c = read_u32(&mut self.buf)?;
                let bits = read_u64(&mut self.buf)?;
                Ok(Some((r as Index, c as Index, f64::from_bits(bits))))
            }
            Some(state) => Ok(Some(state.decode(&mut self.buf)?)),
        }
    }

    /// Decodes up to `max` entries in one batch into the caller's scratch
    /// columns — packed `(row << 32) | col` keys plus values — returning
    /// how many were produced (0 only at the end of the file). This is
    /// the merge kernel's fast path: whole buffered spans decode with
    /// slice arithmetic instead of per-field `Read` calls, and the
    /// delta/varint state machine is shared with the per-triple path.
    pub fn next_chunk(
        &mut self,
        max: usize,
        keys: &mut Vec<u64>,
        vals: &mut Vec<f64>,
    ) -> Result<usize, StreamError> {
        match self.next_chunk_inner(max, keys, vals) {
            Ok(n) => Ok(n),
            Err(e) => Err(with_path(&self.path, e)),
        }
    }

    fn next_chunk_inner(
        &mut self,
        max: usize,
        keys: &mut Vec<u64>,
        vals: &mut Vec<f64>,
    ) -> Result<usize, StreamError> {
        keys.clear();
        vals.clear();
        let take = max.min(self.remaining as usize);
        let SpillReader { buf, delta, .. } = self;
        match delta {
            None => {
                let mut got = 0usize;
                while got < take {
                    let avail = buf.ensure(RAW_ENTRY_BYTES as usize)?;
                    if avail < RAW_ENTRY_BYTES as usize {
                        return Err(StreamError::Io(
                            "spill file truncated mid-entry (raw)".into(),
                        ));
                    }
                    let span = (avail / RAW_ENTRY_BYTES as usize).min(take - got);
                    let bytes = span * RAW_ENTRY_BYTES as usize;
                    for rec in buf.buffered()[..bytes].chunks_exact(RAW_ENTRY_BYTES as usize) {
                        let r = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
                        let c = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
                        let bits = u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
                        keys.push(pack_key(r, c));
                        vals.push(f64::from_bits(bits));
                    }
                    buf.consume(bytes);
                    got += span;
                }
            }
            Some(state) => {
                let mut got = 0usize;
                while got < take {
                    let avail = buf.ensure(MAX_VARINT_ENTRY_BYTES)?;
                    if avail >= MAX_VARINT_ENTRY_BYTES {
                        // Slice span: decode entries while a worst-case
                        // entry still fits entirely in the buffer.
                        let span = buf.buffered();
                        let mut i = 0usize;
                        while got < take && span.len() - i >= MAX_VARINT_ENTRY_BYTES {
                            let (r, c, v) = state.decode_slice(span, &mut i)?;
                            keys.push(pack_key(r, c));
                            vals.push(v);
                            got += 1;
                        }
                        buf.consume(i);
                    } else {
                        // File tail: fall back to the bounds-checked
                        // per-field path for the last few entries.
                        let (r, c, v) = state.decode(buf)?;
                        keys.push(pack_key(r, c));
                        vals.push(v);
                        got += 1;
                    }
                }
            }
        }
        self.remaining -= take as u64;
        Ok(take)
    }

    /// Drains the whole file into a CSR — the non-streaming fallback used
    /// when a spilled partial *is* the final result.
    pub fn read_all(mut self) -> Result<Csr, StreamError> {
        let mut b = CsrBuilder::with_capacity(self.rows, self.cols, self.remaining as usize);
        while let Some((r, c, v)) = self.next_triple()? {
            b.push(r, c, v);
        }
        Ok(b.finish())
    }
}

/// Packs `(row, col)` into the single `u64` sort key the chunked merge
/// kernel compares: row in the high 32 bits, column in the low 32, so
/// key order is exactly `(row, col)` lexicographic order.
pub(crate) fn pack_key(r: Index, c: Index) -> u64 {
    ((r as u64) << 32) | c as u64
}

/// Decodes one LEB128 value from `buf` at `*i`, advancing `i`. The
/// caller guarantees at least 8 readable bytes past `*i` (the batch
/// decoder's look-ahead invariant), which lets every 1–8-byte encoding —
/// all coordinates and almost all values the writer emits — decode from
/// a single `u64` load with a branch-free continuation scan instead of a
/// byte-at-a-time loop.
fn take_varint(buf: &[u8], i: &mut usize) -> Result<u64, StreamError> {
    let word = u64::from_le_bytes(buf[*i..*i + 8].try_into().expect("8 bytes ensured"));
    // A clear top bit marks the final byte of the varint; the lowest
    // clear top bit tells us how many bytes the encoding spans.
    let stops = !word & 0x8080_8080_8080_8080;
    if stops != 0 {
        let n = stops.trailing_zeros() as usize / 8 + 1;
        let word = if n == 8 {
            word
        } else {
            word & ((1u64 << (n * 8)) - 1)
        };
        let mut value = 0u64;
        for k in 0..n {
            value |= ((word >> (k * 8)) & 0x7f) << (k * 7);
        }
        *i += n;
        Ok(value)
    } else {
        take_varint_slow(buf, i)
    }
}

/// The checked per-byte path behind [`take_varint`]: 9–10-byte
/// encodings plus corrupt continuation runs, enforcing the same length
/// and overflow rules as [`read_varint`].
fn take_varint_slow(buf: &[u8], i: &mut usize) -> Result<u64, StreamError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*i) else {
            return Err(StreamError::Io("varint truncated".into()));
        };
        *i += 1;
        let bits = u64::from(byte & 0x7f);
        let shifted = bits << shift;
        if shifted >> shift != bits {
            return Err(StreamError::Io("varint overflows u64".into()));
        }
        value |= shifted;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StreamError::Io("varint longer than 10 bytes".into()));
        }
    }
}

/// LEB128 length of `v` in bytes (1..=10).
fn varint_len(v: u64) -> u64 {
    (64 - v.max(1).leading_zeros() as u64).div_ceil(7)
}

/// Writes `v` as LEB128, returning the bytes written.
fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<u64> {
    let mut written = 0u64;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(written + 1);
        }
        w.write_all(&[byte | 0x80])?;
        written += 1;
    }
}

/// Reads one LEB128 value; rejects encodings past 10 bytes and payload
/// bits that would overflow a `u64` (a corrupted file must surface as
/// an error, never decode to a silently truncated value).
fn read_varint<R: Read>(r: &mut R) -> Result<u64, StreamError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        let byte = buf[0];
        let bits = u64::from(byte & 0x7f);
        let shifted = bits << shift;
        if shifted >> shift != bits {
            return Err(StreamError::Io("varint overflows u64".into()));
        }
        value |= shifted;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StreamError::Io("varint longer than 10 bytes".into()));
        }
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StreamError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StreamError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use sparch_sparse::gen;

    #[test]
    fn raw_round_trips_through_disk() {
        let dir = TempDir::new("spill_roundtrip");
        let m = gen::uniform_random(20, 30, 120, 5);
        let path = dir.file("roundtrip.bin");
        let file = write_partial(&path, &m, SpillCodec::Raw).unwrap();
        assert_eq!(file.bytes, 28 + 16 * m.nnz() as u64);
        assert_eq!(file.bytes, std::fs::metadata(&path).unwrap().len());
        let reader = SpillReader::open(&path).unwrap();
        assert_eq!(reader.shape(), (20, 30));
        assert_eq!(reader.read_all().unwrap(), m);
    }

    #[test]
    fn varint_round_trips_and_shrinks_small_int_values() {
        let dir = TempDir::new("spill_varint");
        let m = sparch_sparse::linalg::map_values(&gen::uniform_random(24, 24, 150, 7), |v| {
            (v * 4.0).round()
        });
        let path = dir.file("varint.bin");
        let file = write_partial(&path, &m, SpillCodec::Varint).unwrap();
        assert_eq!(file.bytes, std::fs::metadata(&path).unwrap().len());
        assert!(
            file.bytes * 2 <= raw_size(&m),
            "small-int partial should compress ≥2×: {} vs {}",
            file.bytes,
            raw_size(&m)
        );
        assert_eq!(SpillReader::open(&path).unwrap().read_all().unwrap(), m);
    }

    #[test]
    fn both_codecs_stream_in_sorted_order() {
        let dir = TempDir::new("spill_sorted");
        let m = gen::rmat_graph500(32, 4, 9);
        for codec in [SpillCodec::Raw, SpillCodec::Varint] {
            let path = dir.file(&format!("sorted_{codec}.bin"));
            write_partial(&path, &m, codec).unwrap();
            let mut reader = SpillReader::open(&path).unwrap();
            let mut triples = Vec::new();
            while let Some(t) = reader.next_triple().unwrap() {
                triples.push(t);
            }
            assert_eq!(triples, m.iter().collect::<Vec<_>>(), "{codec}");
            assert!(triples
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        }
    }

    #[test]
    fn explicit_zeros_and_negative_zero_survive_both_codecs() {
        let dir = TempDir::new("spill_zeros");
        let m = Csr::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![0.0, -0.0]).unwrap();
        for codec in [SpillCodec::Raw, SpillCodec::Varint] {
            let path = dir.file(&format!("zeros_{codec}.bin"));
            write_partial(&path, &m, codec).unwrap();
            let back = SpillReader::open(&path).unwrap().read_all().unwrap();
            assert_eq!(back.nnz(), 2);
            assert_eq!(back.values()[0].to_bits(), 0.0f64.to_bits(), "{codec}");
            assert_eq!(back.values()[1].to_bits(), (-0.0f64).to_bits(), "{codec}");
        }
    }

    #[test]
    fn varint_never_exceeds_raw_and_empty_falls_back() {
        let dir = TempDir::new("spill_fallback");
        // An empty partial is header-only in both formats, so varint is
        // not strictly smaller and the writer must emit the raw magic.
        let empty = Csr::zero(4, 4);
        let path = dir.file("empty.bin");
        let file = write_partial(&path, &empty, SpillCodec::Varint).unwrap();
        assert_eq!(file.bytes, 28);
        assert_eq!(SpillReader::open(&path).unwrap().read_all().unwrap(), empty);

        // Incompressible values (full-mantissa floats) still never cost
        // more than raw, thanks to the per-file fallback.
        let m = gen::uniform_random(16, 16, 80, 3);
        let path = dir.file("fallback.bin");
        let file = write_partial(&path, &m, SpillCodec::Varint).unwrap();
        assert!(file.bytes <= raw_size(&m));
        assert_eq!(SpillReader::open(&path).unwrap().read_all().unwrap(), m);
    }

    /// The batch decoder must produce exactly the per-triple stream, in
    /// every chunk-size regime: chunks smaller than the file, bigger
    /// than the file, and size 1 (all slow-path tail decoding).
    #[test]
    fn chunked_decode_matches_per_triple_decode() {
        let dir = TempDir::new("spill_chunks");
        let int = sparch_sparse::linalg::map_values(&gen::uniform_random(40, 50, 600, 11), |v| {
            (v * 8.0).round()
        });
        let float = gen::uniform_random(40, 50, 600, 13);
        for (tag, m) in [("int", &int), ("float", &float)] {
            for codec in [SpillCodec::Raw, SpillCodec::Varint] {
                let path = dir.file(&format!("chunk_{tag}_{codec}.bin"));
                write_partial(&path, m, codec).unwrap();
                let expected: Vec<(u64, u64)> = m
                    .iter()
                    .map(|(r, c, v)| (pack_key(r, c), v.to_bits()))
                    .collect();
                for chunk in [1usize, 7, 256, usize::MAX] {
                    let mut reader = SpillReader::open(&path).unwrap();
                    let (mut keys, mut vals) = (Vec::new(), Vec::new());
                    let mut got = Vec::new();
                    loop {
                        let n = reader.next_chunk(chunk, &mut keys, &mut vals).unwrap();
                        if n == 0 {
                            break;
                        }
                        assert_eq!(keys.len(), n);
                        assert_eq!(vals.len(), n);
                        got.extend(keys.iter().zip(&vals).map(|(&k, &v)| (k, v.to_bits())));
                    }
                    assert_eq!(got, expected, "{tag} {codec} chunk {chunk}");
                    assert_eq!(reader.remaining(), 0);
                }
            }
        }
    }

    /// Slice varint decoding agrees with the `Read`-based decoder for
    /// every encoding length, including the 10-byte maximum that takes
    /// the checked slow path.
    #[test]
    fn take_varint_matches_read_varint() {
        let samples = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            (1 << 56) - 1,
            1 << 56,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for v in samples {
            write_varint(&mut buf, v).unwrap();
        }
        // Pad so the fast path's 8-byte look-ahead holds at every entry.
        buf.extend_from_slice(&[0u8; 16]);
        let mut i = 0usize;
        for v in samples {
            assert_eq!(take_varint(&buf, &mut i).unwrap(), v);
        }
        // Corrupt continuation runs fail like read_varint, never panic.
        let mut bad = vec![0xffu8; 11];
        bad.extend_from_slice(&[0u8; 16]);
        assert!(take_varint(&bad, &mut 0).is_err());
    }

    #[test]
    fn varint_helpers_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            let written = write_varint(&mut buf, v).unwrap();
            assert_eq!(written, buf.len() as u64);
            assert_eq!(written, varint_len(v), "declared length for {v}");
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
        // An 11-byte continuation chain is rejected, not wrapped.
        let bad = [0xffu8; 11];
        assert!(read_varint(&mut bad.as_slice()).is_err());
        // A 10-byte encoding whose final byte carries payload bits past
        // u64's capacity is rejected, never silently truncated.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x7e;
        assert!(read_varint(&mut overflow.as_slice()).is_err());
        // The canonical 10-byte u64::MAX encoding still decodes.
        let mut max = Vec::new();
        write_varint(&mut max, u64::MAX).unwrap();
        assert_eq!(max.len(), 10);
        assert_eq!(read_varint(&mut max.as_slice()).unwrap(), u64::MAX);
    }

    #[test]
    fn bad_magic_is_an_io_error() {
        let dir = TempDir::new("spill_badmagic");
        let path = dir.file("badmagic.bin");
        std::fs::write(&path, [0u8; 64]).unwrap();
        assert!(matches!(SpillReader::open(&path), Err(StreamError::Io(_))));
    }

    #[test]
    fn truncated_files_are_io_errors() {
        let dir = TempDir::new("spill_truncated");
        let m = gen::uniform_random(8, 8, 20, 1);
        for codec in [SpillCodec::Raw, SpillCodec::Varint] {
            let path = dir.file(&format!("truncated_{codec}.bin"));
            write_partial(&path, &m, codec).unwrap();
            let full = std::fs::read(&path).unwrap();
            std::fs::write(&path, &full[..full.len() - 5]).unwrap();
            let reader = SpillReader::open(&path).unwrap();
            assert!(
                matches!(reader.read_all(), Err(StreamError::Io(_))),
                "{codec}"
            );
        }
    }

    /// The in-memory encoder is byte-for-byte the on-disk writer, and
    /// the untrusting decoder inverts it bit-exactly — the contract the
    /// distributed wire format stands on.
    #[test]
    fn encode_partial_matches_disk_bytes_and_round_trips() {
        let dir = TempDir::new("spill_wire");
        let int = sparch_sparse::linalg::map_values(&gen::uniform_random(16, 20, 90, 3), |v| {
            (v * 4.0).round()
        });
        let float = gen::uniform_random(16, 20, 90, 5);
        let empty = Csr::zero(6, 9);
        for (tag, m) in [("int", &int), ("float", &float), ("empty", &empty)] {
            for codec in [SpillCodec::Raw, SpillCodec::Varint] {
                let wire = encode_partial(m, codec);
                let path = dir.file(&format!("wire_{tag}_{codec}.bin"));
                write_partial(&path, m, codec).unwrap();
                assert_eq!(wire, std::fs::read(&path).unwrap(), "{tag} {codec}");
                let back = decode_partial(&wire).unwrap();
                assert_eq!(&back, m, "{tag} {codec}");
                for ((_, _, a), (_, _, b)) in back.iter().zip(m.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{tag} {codec}");
                }
            }
        }
    }

    /// Every class of wire corruption maps to a typed error: truncation
    /// at any byte, bad magic, lying headers, out-of-order or
    /// out-of-bounds entries, trailing garbage. Never a panic, and the
    /// entry-count check runs before any count-sized allocation.
    #[test]
    fn decode_partial_rejects_corruption() {
        let m = sparch_sparse::linalg::map_values(&gen::uniform_random(10, 12, 40, 9), |v| {
            (v * 2.0).round()
        });
        for codec in [SpillCodec::Raw, SpillCodec::Varint] {
            let wire = encode_partial(&m, codec);
            for cut in 0..wire.len() {
                assert!(
                    matches!(decode_partial(&wire[..cut]), Err(StreamError::Io(_))),
                    "{codec} truncated at {cut} must error"
                );
            }
            let mut trailing = wire.clone();
            trailing.push(0);
            assert!(matches!(decode_partial(&trailing), Err(StreamError::Io(_))));
            let mut bad_magic = wire.clone();
            bad_magic[0] ^= 0xff;
            assert!(matches!(
                decode_partial(&bad_magic),
                Err(StreamError::Io(_))
            ));
            // Header lies: an absurd dimension and an entry count the
            // body cannot hold are both rejected up front.
            let mut huge_dim = wire.clone();
            huge_dim[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(matches!(decode_partial(&huge_dim), Err(StreamError::Io(_))));
            let mut fat_nnz = wire.clone();
            fat_nnz[20..28].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
            assert!(matches!(decode_partial(&fat_nnz), Err(StreamError::Io(_))));
        }
        // Hand-built raw payloads: out-of-bounds and out-of-order entries.
        let entry = |r: u32, c: u32, v: f64| {
            let mut e = r.to_le_bytes().to_vec();
            e.extend_from_slice(&c.to_le_bytes());
            e.extend_from_slice(&v.to_bits().to_le_bytes());
            e
        };
        let header = |nnz: u64| {
            let mut h = MAGIC_RAW.to_le_bytes().to_vec();
            h.extend_from_slice(&4u64.to_le_bytes());
            h.extend_from_slice(&4u64.to_le_bytes());
            h.extend_from_slice(&nnz.to_le_bytes());
            h
        };
        let mut oob = header(1);
        oob.extend_from_slice(&entry(2, 7, 1.0));
        assert!(matches!(decode_partial(&oob), Err(StreamError::Io(_))));
        let mut unsorted = header(2);
        unsorted.extend_from_slice(&entry(1, 3, 1.0));
        unsorted.extend_from_slice(&entry(1, 3, 2.0));
        assert!(matches!(decode_partial(&unsorted), Err(StreamError::Io(_))));
    }

    /// Spill I/O failures carry the path of the file that failed — the
    /// injected-ENOSPC-style guarantee: writing under a non-directory
    /// fails like a full volume does, and the error names the path.
    #[test]
    fn spill_errors_carry_path_context() {
        let dir = TempDir::new("spill_patherr");
        let blocker = dir.file("not_a_dir");
        std::fs::write(&blocker, b"plain file").unwrap();
        let target = blocker.join("partial.bin");
        let m = gen::uniform_random(4, 4, 6, 2);
        match write_partial(&target, &m, SpillCodec::Raw) {
            Err(StreamError::Io(msg)) => assert!(
                msg.contains("not_a_dir") && msg.contains("write"),
                "write error must name the path: {msg}"
            ),
            other => panic!("expected Io error, got {other:?}"),
        }

        // Reader-side: truncate a valid file and check every read path
        // names it.
        let path = dir.file("truncated.bin");
        write_partial(&path, &m, SpillCodec::Raw).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let mut reader = SpillReader::open(&path).unwrap();
        let err = loop {
            match reader.next_triple() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncated file read to completion"),
                Err(e) => break e,
            }
        };
        match err {
            StreamError::Io(msg) => assert!(
                msg.contains("truncated.bin"),
                "read error must name the path: {msg}"
            ),
            other => panic!("expected Io error, got {other:?}"),
        }
        let mut reader = SpillReader::open(&path).unwrap();
        let (mut keys, mut vals) = (Vec::new(), Vec::new());
        let err = loop {
            match reader.next_chunk(usize::MAX, &mut keys, &mut vals) {
                Ok(0) => panic!("truncated file chunked to completion"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(
            matches!(&err, StreamError::Io(msg) if msg.contains("truncated.bin")),
            "chunk error must name the path: {err:?}"
        );
        // Opening a missing file names it too.
        let missing = dir.file("missing.bin");
        assert!(
            matches!(SpillReader::open(&missing), Err(StreamError::Io(msg)) if msg.contains("missing.bin")),
        );
    }
}
