//! The compact binary spill format for partial matrices.
//!
//! A spilled partial is the paper's "partially merged result written back
//! to DRAM", transplanted to disk: sorted COO triples, the same
//! row-major `(row, col)` order the merge hardware consumes ("sorted by
//! row index then column index", §II-A), so a reader can stream straight
//! into a k-way merge without ever materializing the matrix.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  u32   0x5350_4d31  ("SPM1")
//! rows   u64
//! cols   u64
//! nnz    u64
//! entry  (row u32, col u32, value f64)  × nnz, sorted by (row, col)
//! ```
//!
//! 16 bytes per element — 4 + 4 index bytes and the 8-byte value —
//! versus the 20 bytes an in-memory CSR's `row_ptr` would amortize to on
//! pathological shapes; more importantly the format is *streamable* in
//! both directions.

use crate::StreamError;
use sparch_sparse::{Csr, CsrBuilder, Index, Triple};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: u32 = 0x5350_4d31;

/// Read-buffer capacity for streaming a spilled partial back in. Small
/// by design: this bounds the resident bytes a spilled merge child costs.
const READ_BUF_BYTES: usize = 64 * 1024;

/// A partial matrix sitting on disk.
#[derive(Debug)]
pub(crate) struct SpillFile {
    /// Where the partial lives.
    pub path: PathBuf,
    /// File size in bytes (header + entries), for traffic accounting.
    pub bytes: u64,
}

/// Writes `csr` to `path` in the spill format.
pub(crate) fn write_partial(path: &Path, csr: &Csr) -> Result<SpillFile, StreamError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&(csr.rows() as u64).to_le_bytes())?;
    w.write_all(&(csr.cols() as u64).to_le_bytes())?;
    w.write_all(&(csr.nnz() as u64).to_le_bytes())?;
    for (r, c, v) in csr.iter() {
        w.write_all(&r.to_le_bytes())?;
        w.write_all(&c.to_le_bytes())?;
        w.write_all(&v.to_bits().to_le_bytes())?;
    }
    w.flush()?;
    Ok(SpillFile {
        path: path.to_path_buf(),
        bytes: 28 + csr.nnz() as u64 * 16,
    })
}

/// Streams a spilled partial back as sorted triples through a bounded
/// read buffer.
#[derive(Debug)]
pub(crate) struct SpillReader {
    reader: BufReader<File>,
    rows: usize,
    cols: usize,
    remaining: u64,
}

impl SpillReader {
    /// Opens a spill file and validates its header.
    pub fn open(path: &Path) -> Result<Self, StreamError> {
        let mut reader = BufReader::with_capacity(READ_BUF_BYTES, File::open(path)?);
        let magic = read_u32(&mut reader)?;
        if magic != MAGIC {
            return Err(StreamError::Io(format!(
                "bad spill magic {magic:#010x} in {}",
                path.display()
            )));
        }
        let rows = read_u64(&mut reader)? as usize;
        let cols = read_u64(&mut reader)? as usize;
        let remaining = read_u64(&mut reader)?;
        Ok(SpillReader {
            reader,
            rows,
            cols,
            remaining,
        })
    }

    /// Declared shape of the spilled partial.
    #[cfg(test)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The next triple in `(row, col)` order, or `None` at the end.
    pub fn next_triple(&mut self) -> Result<Option<Triple>, StreamError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let r = read_u32(&mut self.reader)?;
        let c = read_u32(&mut self.reader)?;
        let bits = read_u64(&mut self.reader)?;
        Ok(Some((r as Index, c as Index, f64::from_bits(bits))))
    }

    /// Drains the whole file into a CSR — the non-streaming fallback used
    /// when a spilled partial *is* the final result.
    pub fn read_all(mut self) -> Result<Csr, StreamError> {
        let mut b = CsrBuilder::with_capacity(self.rows, self.cols, self.remaining as usize);
        while let Some((r, c, v)) = self.next_triple()? {
            b.push(r, c, v);
        }
        Ok(b.finish())
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StreamError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StreamError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sparch_spill_{tag}_{}.bin", std::process::id()))
    }

    #[test]
    fn round_trips_through_disk() {
        let m = gen::uniform_random(20, 30, 120, 5);
        let path = temp_path("roundtrip");
        let file = write_partial(&path, &m).unwrap();
        assert_eq!(file.bytes, 28 + 16 * m.nnz() as u64);
        assert_eq!(file.bytes, std::fs::metadata(&path).unwrap().len());
        let reader = SpillReader::open(&path).unwrap();
        assert_eq!(reader.shape(), (20, 30));
        assert_eq!(reader.read_all().unwrap(), m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streams_in_sorted_order() {
        let m = gen::rmat_graph500(32, 4, 9);
        let path = temp_path("sorted");
        write_partial(&path, &m).unwrap();
        let mut reader = SpillReader::open(&path).unwrap();
        let mut triples = Vec::new();
        while let Some(t) = reader.next_triple().unwrap() {
            triples.push(t);
        }
        assert_eq!(triples, m.iter().collect::<Vec<_>>());
        assert!(triples
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn explicit_zeros_and_negative_zero_survive() {
        let m = Csr::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![0.0, -0.0]).unwrap();
        let path = temp_path("zeros");
        write_partial(&path, &m).unwrap();
        let back = SpillReader::open(&path).unwrap().read_all().unwrap();
        assert_eq!(back.nnz(), 2);
        assert_eq!(back.values()[0].to_bits(), 0.0f64.to_bits());
        assert_eq!(back.values()[1].to_bits(), (-0.0f64).to_bits());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_is_an_io_error() {
        let path = temp_path("badmagic");
        std::fs::write(&path, [0u8; 64]).unwrap();
        assert!(matches!(SpillReader::open(&path), Err(StreamError::Io(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_an_io_error() {
        let m = gen::uniform_random(8, 8, 20, 1);
        let path = temp_path("truncated");
        write_partial(&path, &m).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let reader = SpillReader::open(&path).unwrap();
        assert!(matches!(reader.read_all(), Err(StreamError::Io(_))));
        let _ = std::fs::remove_file(&path);
    }
}
