//! Panic-safe temporary-directory guard for this crate's tests.
//!
//! `#[doc(hidden)]` public so both the unit tests in `src/` and the
//! integration suites under `tests/` share one implementation. A failed
//! assertion unwinds through [`TempDir::drop`], which removes the whole
//! directory — no more spill/merge fixtures leaking into `/tmp` when a
//! test dies between `write_partial` and its `remove_file`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes guards created in the same process (tests run
/// concurrently inside one binary).
static GUARD_COUNTER: AtomicU64 = AtomicU64::new(0);

/// An owned temporary directory, removed — with everything in it — when
/// the guard drops, including on panic unwind.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `sparch_test_<tag>_<pid>_<seq>` under the system temp dir.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — tests have no
    /// meaningful way to continue without their scratch space.
    pub fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "sparch_test_{tag}_{}_{}",
            std::process::id(),
            GUARD_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create test temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for `name` inside the directory (nothing is created).
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_directory_and_contents_on_drop() {
        let keep;
        {
            let dir = TempDir::new("guard");
            keep = dir.path().to_path_buf();
            std::fs::write(dir.file("a.bin"), b"x").unwrap();
            assert!(keep.exists());
        }
        assert!(!keep.exists(), "guard must sweep its directory");
    }

    #[test]
    fn removes_directory_on_panic_unwind() {
        let dir = TempDir::new("unwind");
        let path = dir.path().to_path_buf();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            std::fs::write(dir.file("leak.bin"), b"x").unwrap();
            panic!("simulated assertion failure");
        }));
        assert!(outcome.is_err());
        assert!(!path.exists(), "unwind must still sweep the directory");
    }
}
