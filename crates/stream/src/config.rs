//! Configuration for the streaming executor: the memory budget and the
//! panel/merge/spill/parallelism knobs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

/// An explicit cap, in bytes, on the partial matrices the streaming
/// pipeline may hold in memory at once.
///
/// The budget governs the *partial store* — the set of panel products and
/// partially merged results alive between pipeline stages, which is the
/// part of the footprint that grows with the input (there are `panels`
/// partials of roughly `output`-sized structure each). Operands being
/// ingested and the single merge output under construction are transient
/// working state outside the store; the allocator audit in
/// `crates/stream/tests/budget_alloc.rs` pins how tightly total heap
/// usage tracks the budget.
///
/// `MemoryBudget::from_mb(0)` is valid and means "spill everything":
/// every partial goes to disk the moment it is produced and streams back
/// only for its merge round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemoryBudget {
    bytes: u64,
}

impl MemoryBudget {
    /// A budget of exactly `bytes` bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        MemoryBudget { bytes }
    }

    /// A budget of `kb` kibibytes.
    pub const fn from_kb(kb: u64) -> Self {
        MemoryBudget { bytes: kb << 10 }
    }

    /// A budget of `mb` mebibytes.
    pub const fn from_mb(mb: u64) -> Self {
        MemoryBudget { bytes: mb << 20 }
    }

    /// No cap: nothing ever spills (the in-core degenerate case).
    pub const fn unbounded() -> Self {
        MemoryBudget { bytes: u64::MAX }
    }

    /// The cap in bytes.
    pub const fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// How the inner dimension is split into panels.
///
/// The split decides how evenly partial-product sizes come out, which is
/// what the Huffman merge plan's weight estimates are built from — a
/// balanced split tightens the plan. Either way the split depends only
/// on `A`'s structure, never on stage timing, so it is fully
/// deterministic at a fixed configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PanelBalance {
    /// Equal column counts (`panel_ranges`): panel widths differ by at
    /// most one column, but skewed matrices concentrate their non-zeros
    /// in a few panels.
    Uniform,
    /// Equal `A`-column non-zeros per panel (`panel_ranges_by_nnz`):
    /// panel *widths* vary, partial sizes — and therefore merge-plan
    /// weights and spill granularity — even out.
    Nnz,
}

impl fmt::Display for PanelBalance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PanelBalance::Uniform => "uniform",
            PanelBalance::Nnz => "nnz",
        })
    }
}

impl FromStr for PanelBalance {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "uniform" => Ok(PanelBalance::Uniform),
            "nnz" => Ok(PanelBalance::Nnz),
            other => Err(format!(
                "unknown panel balance {other:?} (expected uniform or nnz)"
            )),
        }
    }
}

/// Which on-disk format spilled partials use.
///
/// See the [`spill`](crate::spill) module docs for the exact layouts.
/// The codec never affects results — only spill bytes and decode CPU,
/// which the merge heap's bounded streaming reader hides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpillCodec {
    /// Sorted COO at 16 bytes per entry — no encode/decode cost.
    Raw,
    /// Delta-encoded coordinates + LEB128 varints (byte-swapped value
    /// bits): 2-4× smaller on integer-valued partials, never larger than
    /// raw (the writer falls back per file).
    Varint,
}

impl fmt::Display for SpillCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpillCodec::Raw => "raw",
            SpillCodec::Varint => "varint",
        })
    }
}

impl FromStr for SpillCodec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "raw" => Ok(SpillCodec::Raw),
            "varint" | "delta" => Ok(SpillCodec::Varint),
            other => Err(format!(
                "unknown spill codec {other:?} (expected raw or varint)"
            )),
        }
    }
}

/// Configuration of a [`StreamingExecutor`](crate::StreamingExecutor).
///
/// Serializable so the distributed coordinator can hand a shard worker
/// process its exact pipeline configuration on the command line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Cap on resident partial bytes; see [`MemoryBudget`].
    pub budget: MemoryBudget,
    /// How many column panels to split `A` (and row panels to split `B`)
    /// into. More panels mean smaller partials — finer-grained spilling
    /// and more multiply parallelism, but more merge work. Clamped to the
    /// inner dimension.
    pub panels: usize,
    /// How panel boundaries are chosen; see [`PanelBalance`]. Applies to
    /// the in-memory entry point — pre-split panel streams carry their
    /// own ranges.
    pub balance: PanelBalance,
    /// Fan-in of each merge round (the merge tree's "ways"; the paper's
    /// hardware uses 64). At least 2.
    pub merge_ways: usize,
    /// On-disk format for spilled partials; see [`SpillCodec`].
    pub spill_codec: SpillCodec,
    /// Worker threads for the panel-multiply stage: `Some(n)` pins `n`,
    /// `None` falls back to `SPARCH_THREADS`, then all cores.
    pub threads: Option<usize>,
    /// Worker threads for the merge stage's round execution: `Some(n)`
    /// pins `n`, `None` follows the multiply stage's thread count.
    /// Independent rounds of the Huffman plan dispatch onto these
    /// workers concurrently; the plan's fold order keeps results
    /// bit-identical at any worker count.
    pub merge_workers: Option<usize>,
    /// Where spilled partials go. `None` uses the system temp directory.
    /// Each run creates (and removes) its own unique subdirectory.
    /// Serialized as a string path (lossy for non-UTF-8 paths).
    pub spill_dir: Option<PathBuf>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            budget: MemoryBudget::from_mb(256),
            panels: 4,
            balance: PanelBalance::Nnz,
            merge_ways: 8,
            spill_codec: SpillCodec::Varint,
            threads: None,
            merge_workers: None,
            spill_dir: None,
        }
    }
}

impl StreamConfig {
    /// The pinned configuration the serving layer's `Backend::Streaming`
    /// runs with when no explicit budget is routed: deterministic,
    /// single-threaded panel multiplies (the serving layer already
    /// parallelizes across requests), default budget and panel count.
    pub fn pinned() -> Self {
        StreamConfig {
            threads: Some(1),
            ..StreamConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_unit_constructors() {
        assert_eq!(MemoryBudget::from_bytes(123).bytes(), 123);
        assert_eq!(MemoryBudget::from_kb(2).bytes(), 2048);
        assert_eq!(MemoryBudget::from_mb(1).bytes(), 1 << 20);
        assert_eq!(MemoryBudget::unbounded().bytes(), u64::MAX);
        assert!(MemoryBudget::from_mb(0).bytes() == 0);
    }

    #[test]
    fn default_config_is_sane() {
        let c = StreamConfig::default();
        assert!(c.merge_ways >= 2);
        assert!(c.panels >= 1);
        assert!(c.budget.bytes() > 0);
        assert_eq!(c.balance, PanelBalance::Nnz);
        assert_eq!(c.spill_codec, SpillCodec::Varint);
        assert_eq!(StreamConfig::pinned().threads, Some(1));
    }

    #[test]
    fn balance_and_codec_parse_and_display() {
        for b in [PanelBalance::Uniform, PanelBalance::Nnz] {
            assert_eq!(b.to_string().parse::<PanelBalance>().unwrap(), b);
            let json = serde_json::to_string(&b).unwrap();
            assert_eq!(serde_json::from_str::<PanelBalance>(&json).unwrap(), b);
        }
        for c in [SpillCodec::Raw, SpillCodec::Varint] {
            assert_eq!(c.to_string().parse::<SpillCodec>().unwrap(), c);
            let json = serde_json::to_string(&c).unwrap();
            assert_eq!(serde_json::from_str::<SpillCodec>(&json).unwrap(), c);
        }
        assert_eq!("delta".parse::<SpillCodec>().unwrap(), SpillCodec::Varint);
        assert!("zstd".parse::<SpillCodec>().is_err());
        assert!("degree".parse::<PanelBalance>().is_err());
    }

    #[test]
    fn budget_serde_round_trips() {
        let b = MemoryBudget::from_mb(7);
        let json = serde_json::to_string(&b).unwrap();
        let back: MemoryBudget = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
