//! Configuration for the streaming executor: the memory budget and the
//! panel/merge/parallelism knobs.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// An explicit cap, in bytes, on the partial matrices the streaming
/// pipeline may hold in memory at once.
///
/// The budget governs the *partial store* — the set of panel products and
/// partially merged results alive between pipeline stages, which is the
/// part of the footprint that grows with the input (there are `panels`
/// partials of roughly `output`-sized structure each). Operands being
/// ingested and the single merge output under construction are transient
/// working state outside the store; the allocator audit in
/// `crates/stream/tests/budget_alloc.rs` pins how tightly total heap
/// usage tracks the budget.
///
/// `MemoryBudget::from_mb(0)` is valid and means "spill everything":
/// every partial goes to disk the moment it is produced and streams back
/// only for its merge round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemoryBudget {
    bytes: u64,
}

impl MemoryBudget {
    /// A budget of exactly `bytes` bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        MemoryBudget { bytes }
    }

    /// A budget of `kb` kibibytes.
    pub const fn from_kb(kb: u64) -> Self {
        MemoryBudget { bytes: kb << 10 }
    }

    /// A budget of `mb` mebibytes.
    pub const fn from_mb(mb: u64) -> Self {
        MemoryBudget { bytes: mb << 20 }
    }

    /// No cap: nothing ever spills (the in-core degenerate case).
    pub const fn unbounded() -> Self {
        MemoryBudget { bytes: u64::MAX }
    }

    /// The cap in bytes.
    pub const fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Configuration of a [`StreamingExecutor`](crate::StreamingExecutor).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Cap on resident partial bytes; see [`MemoryBudget`].
    pub budget: MemoryBudget,
    /// How many column panels to split `A` (and row panels to split `B`)
    /// into. More panels mean smaller partials — finer-grained spilling
    /// and more multiply parallelism, but more merge work. Clamped to the
    /// inner dimension.
    pub panels: usize,
    /// Fan-in of each merge round (the merge tree's "ways"; the paper's
    /// hardware uses 64). At least 2.
    pub merge_ways: usize,
    /// Worker threads for the panel-multiply phase: `Some(n)` pins `n`,
    /// `None` falls back to `SPARCH_THREADS`, then all cores.
    pub threads: Option<usize>,
    /// Where spilled partials go. `None` uses the system temp directory.
    /// Each run creates (and removes) its own unique subdirectory.
    pub spill_dir: Option<PathBuf>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            budget: MemoryBudget::from_mb(256),
            panels: 4,
            merge_ways: 8,
            threads: None,
            spill_dir: None,
        }
    }
}

impl StreamConfig {
    /// The pinned configuration the serving layer's `Backend::Streaming`
    /// runs with when no explicit budget is routed: deterministic,
    /// single-threaded panel multiplies (the serving layer already
    /// parallelizes across requests), default budget and panel count.
    pub fn pinned() -> Self {
        StreamConfig {
            threads: Some(1),
            ..StreamConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_unit_constructors() {
        assert_eq!(MemoryBudget::from_bytes(123).bytes(), 123);
        assert_eq!(MemoryBudget::from_kb(2).bytes(), 2048);
        assert_eq!(MemoryBudget::from_mb(1).bytes(), 1 << 20);
        assert_eq!(MemoryBudget::unbounded().bytes(), u64::MAX);
        assert!(MemoryBudget::from_mb(0).bytes() == 0);
    }

    #[test]
    fn default_config_is_sane() {
        let c = StreamConfig::default();
        assert!(c.merge_ways >= 2);
        assert!(c.panels >= 1);
        assert!(c.budget.bytes() > 0);
        assert_eq!(StreamConfig::pinned().threads, Some(1));
    }

    #[test]
    fn budget_serde_round_trips() {
        let b = MemoryBudget::from_mb(7);
        let json = serde_json::to_string(&b).unwrap();
        let back: MemoryBudget = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
