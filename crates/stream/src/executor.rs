//! The streaming out-of-core SpGEMM executor.
//!
//! See the crate docs for the pipeline shape. The executor is stateless
//! and cheap to clone per task; every run creates (and removes) its own
//! unique spill directory, so concurrent runs never collide.

use crate::pipeline::{self, PanelPair};
use crate::{PanelBalance, StreamConfig, StreamError};
use serde::{Deserialize, Serialize};
use sparch_obs::Recorder;
use sparch_sparse::{panel_ranges, panel_ranges_by_nnz, Csr};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

pub use crate::pipeline::StageReport;

/// Telemetry of one streaming multiply — the quantities the paper's
/// merge-order analysis reasons about (partial count, merge rounds,
/// partial-result traffic), measured on the software pipeline, plus the
/// per-stage busy/overlap accounting of the staged dataflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Stable layout version of this report
    /// ([`StreamReport::SCHEMA_VERSION`]); bump on any field change so
    /// archived snapshot JSONs stay diffable across PRs.
    pub schema_version: u32,
    /// Rows of `A` (= rows of the output).
    pub a_rows: usize,
    /// The shared inner dimension (`A` cols = `B` rows).
    pub inner_dim: usize,
    /// Columns of `B` (= columns of the output).
    pub b_cols: usize,
    /// Panel pairs the reader stage streamed (after clamping to the
    /// inner dimension).
    pub panels: usize,
    /// Merge-plan leaves: panels whose `A` panel held any non-zeros
    /// (all-empty panels are pruned before the multiply stage).
    pub partials: usize,
    /// Merge rounds the Huffman plan scheduled.
    pub merge_rounds: usize,
    /// Fan-in of each merge round.
    pub merge_ways: usize,
    /// How panel boundaries were chosen.
    pub balance: crate::PanelBalance,
    /// The spill codec requested for this run.
    pub spill_codec: crate::SpillCodec,
    /// The configured budget, in bytes.
    pub budget_bytes: u64,
    /// High-water mark of resident partial bytes — never exceeds
    /// `budget_bytes` (the store's structural invariant).
    pub peak_live_bytes: u64,
    /// Combined footprint of every partial produced: what "no budget"
    /// would have held resident after the multiply phase.
    pub partial_bytes_total: u64,
    /// The largest single partial's footprint.
    pub largest_partial_bytes: u64,
    /// Partials written to disk (evictions + direct spills).
    pub spill_writes: u64,
    /// Spilled partials streamed back for a merge round.
    pub spill_reads: u64,
    /// Total bytes written to spill files (in the chosen codec).
    pub spill_bytes_written: u64,
    /// What the same spills would have cost in the raw 16-byte format —
    /// divide by `spill_bytes_written` for the codec's saving.
    pub spill_bytes_raw_equivalent: u64,
    /// Stored entries of the result.
    pub output_nnz: usize,
    /// Worker threads used by the panel-multiply stage.
    pub threads: usize,
    /// Per-stage busy time and overlap counters.
    pub stages: StageReport,
}

impl StreamReport {
    /// Current value of [`StreamReport::schema_version`].
    pub const SCHEMA_VERSION: u32 = 1;

    /// A deterministic view for snapshot diffing: the same report with
    /// every wall-clock-dependent quantity zeroed — stage timings, the
    /// budget high-water mark, and the spill traffic counters, all of
    /// which vary with scheduling when `threads > 1`.
    pub fn without_timing(&self) -> StreamReport {
        StreamReport {
            peak_live_bytes: 0,
            spill_writes: 0,
            spill_reads: 0,
            spill_bytes_written: 0,
            spill_bytes_raw_equivalent: 0,
            stages: StageReport::default(),
            ..self.clone()
        }
    }
}

/// Monotone counter making every run's spill directory unique within the
/// process (the process id distinguishes concurrent processes).
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Panel-partitioned, memory-budgeted SpGEMM — the crate's entry point.
///
/// # Example
///
/// ```
/// use sparch_stream::{StreamConfig, StreamingExecutor};
/// use sparch_sparse::{algo, gen};
///
/// let a = gen::uniform_random(64, 64, 400, 1);
/// let b = gen::uniform_random(64, 48, 300, 2);
/// let (c, report) = StreamingExecutor::new(StreamConfig::default())
///     .multiply(&a, &b)
///     .unwrap();
/// // Structure is exact; float values regroup across panels, so compare
/// // to tolerance (integer-valued inputs are bit-identical).
/// assert!(c.approx_eq(&algo::gustavson(&a, &b), 1e-12));
/// assert_eq!(report.output_nnz, c.nnz());
/// ```
#[derive(Debug, Clone)]
pub struct StreamingExecutor {
    config: StreamConfig,
    recorder: Recorder,
}

impl StreamingExecutor {
    /// An executor with the given configuration and tracing disabled.
    pub fn new(config: StreamConfig) -> Self {
        StreamingExecutor {
            config,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a recorder; every pipeline stage of subsequent runs
    /// emits spans and metrics into it (see `pipeline::run` for the
    /// span taxonomy). With the default disabled recorder the
    /// instrumentation is allocation-free no-ops.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The executor's recorder (disabled unless set by
    /// [`with_recorder`](Self::with_recorder)).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The executor's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Computes `C = A · B` through the staged pipeline. The panel split
    /// follows `config.balance`: uniform widths, or equal `A`-column
    /// non-zeros per panel.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()` — the same contract as every
    /// `sparch_sparse::algo` kernel.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] if spill I/O fails.
    pub fn multiply(&self, a: &Csr, b: &Csr) -> Result<(Csr, StreamReport), StreamError> {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let ranges = match self.config.balance {
            PanelBalance::Uniform => panel_ranges(a.cols(), self.config.panels),
            PanelBalance::Nnz => panel_ranges_by_nnz(&a.col_nnz(), self.config.panels),
        };
        let pairs = ranges.into_iter().map(|r| {
            // The condensed slicer records each panel's occupied rows for
            // free — the multiply kernel then visits only those.
            let (a_panel, live) = a.col_panel_condensed(r.clone());
            Ok(PanelPair {
                a: a_panel,
                b: b.row_panel(r.clone()),
                live,
                range: r,
            })
        });
        self.run_pipeline(a.rows(), a.cols(), b.cols(), pairs)
    }

    /// Computes `C = A · B` from pre-extracted column panels of `A` — the
    /// half-streamed entry point: `panels` may come from
    /// `sparch_sparse::mm::PanelReader`, so `A` is never materialized
    /// whole, while `B`'s row panels are sliced from the in-memory
    /// operand. Each item is a column range of `A` plus the corresponding
    /// `a_rows × range.len()` panel with localized column indices; ranges
    /// must tile `0..inner_dim` left to right. The ranges carried by the
    /// stream define the split — `config.balance` does not reapply.
    ///
    /// # Errors
    ///
    /// [`StreamError::Shape`] if the panels do not tile the declared
    /// shape or disagree with `b`; [`StreamError::Io`] on spill I/O
    /// failure.
    pub fn multiply_from_panels<I>(
        &self,
        a_rows: usize,
        inner_dim: usize,
        panels: I,
        b: &Csr,
    ) -> Result<(Csr, StreamReport), StreamError>
    where
        I: IntoIterator<Item = (Range<usize>, Csr)>,
        I::IntoIter: Send,
    {
        if b.rows() != inner_dim {
            return Err(StreamError::Shape(format!(
                "inner dimension {inner_dim} != B rows {}",
                b.rows()
            )));
        }
        let pairs = panels.into_iter().map(move |(range, a_panel)| {
            if range.start > range.end || range.end > inner_dim {
                return Err(StreamError::Shape(format!(
                    "panel {range:?} does not tile 0..{inner_dim}"
                )));
            }
            // Pre-sliced panels carry no occupied-row index; one
            // row-pointer sweep recovers it on the reader thread.
            let live = a_panel.occupied_rows();
            Ok(PanelPair {
                b: b.row_panel(range.clone()),
                a: a_panel,
                live,
                range,
            })
        });
        self.run_pipeline(a_rows, inner_dim, b.cols(), pairs)
    }

    /// Computes `C = A · B` with **both** operands streamed: `A` as
    /// column panels, `B` as the matching row panels — e.g. from
    /// `sparch_sparse::mm::{PanelReader, RowPanelReader}` over two
    /// `.mtx` files, in which case neither operand ever exists in memory
    /// as a whole matrix. The two streams are consumed in lockstep and
    /// must yield identical ranges tiling `0..inner_dim`.
    ///
    /// # Errors
    ///
    /// [`StreamError::Shape`] on tiling/shape disagreement between the
    /// streams — including one stream ending while the other still
    /// yields panels; errors yielded *by* the streams are passed
    /// through; [`StreamError::Io`] on spill I/O failure.
    pub fn multiply_streams<IA, IB>(
        &self,
        a_rows: usize,
        inner_dim: usize,
        b_cols: usize,
        a_panels: IA,
        b_panels: IB,
    ) -> Result<(Csr, StreamReport), StreamError>
    where
        IA: IntoIterator<Item = Result<(Range<usize>, Csr), StreamError>>,
        IB: IntoIterator<Item = Result<(Range<usize>, Csr), StreamError>>,
        IA::IntoIter: Send,
        IB::IntoIter: Send,
    {
        // Hand-rolled lockstep pairing instead of `zip`: when one
        // stream ends, the other must be polled once more so a surplus
        // panel — or a trailing error the docs promise to surface — is
        // reported instead of silently dropped.
        let mut a_panels = a_panels.into_iter();
        let mut b_panels = b_panels.into_iter();
        let mut finished = false;
        let pairs = std::iter::from_fn(move || {
            if finished {
                return None;
            }
            match (a_panels.next(), b_panels.next()) {
                (None, None) => None,
                (Some(pa), Some(pb)) => Some((|| {
                    let (ra, a) = pa?;
                    let (rb, b) = pb?;
                    if ra != rb {
                        return Err(StreamError::Shape(format!(
                            "operand panel streams disagree: A yields {ra:?}, B yields {rb:?}"
                        )));
                    }
                    let live = a.occupied_rows();
                    Ok(PanelPair {
                        range: ra,
                        a,
                        b,
                        live,
                    })
                })()),
                (Some(pa), None) => {
                    finished = true;
                    Some(pa.and_then(|(ra, _)| {
                        Err(StreamError::Shape(format!(
                            "A stream yields panel {ra:?} after the B stream ended"
                        )))
                    }))
                }
                (None, Some(pb)) => {
                    finished = true;
                    Some(pb.and_then(|(rb, _)| {
                        Err(StreamError::Shape(format!(
                            "B stream yields panel {rb:?} after the A stream ended"
                        )))
                    }))
                }
            }
        });
        self.run_pipeline(a_rows, inner_dim, b_cols, pairs)
    }

    /// Shared tail: run the staged pipeline and fold its outcome into
    /// the public report.
    fn run_pipeline<I>(
        &self,
        a_rows: usize,
        inner_dim: usize,
        b_cols: usize,
        pairs: I,
    ) -> Result<(Csr, StreamReport), StreamError>
    where
        I: Iterator<Item = Result<PanelPair, StreamError>> + Send,
    {
        let outcome = pipeline::run(
            &self.config,
            a_rows,
            inner_dim,
            b_cols,
            pairs,
            self.spill_dir(),
            &self.recorder,
        )?;
        let threads = sparch_exec::ShardPool::with_override(self.config.threads).threads();
        self.recorder
            .metrics()
            .gauge("stream.peak_live_bytes")
            .set(outcome.store_stats.peak_live_bytes as f64);
        let report = StreamReport {
            schema_version: StreamReport::SCHEMA_VERSION,
            a_rows,
            inner_dim,
            b_cols,
            panels: outcome.panels,
            partials: outcome.partials,
            merge_rounds: outcome.merge_rounds,
            merge_ways: self.config.merge_ways.max(2),
            balance: self.config.balance,
            spill_codec: self.config.spill_codec,
            budget_bytes: self.config.budget.bytes(),
            peak_live_bytes: outcome.store_stats.peak_live_bytes,
            partial_bytes_total: outcome.partial_bytes_total,
            largest_partial_bytes: outcome.largest_partial_bytes,
            spill_writes: outcome.store_stats.spill_writes,
            spill_reads: outcome.store_stats.spill_reads,
            spill_bytes_written: outcome.store_stats.spill_bytes_written,
            spill_bytes_raw_equivalent: outcome.store_stats.spill_bytes_raw_equivalent,
            output_nnz: outcome.result.nnz(),
            threads,
            stages: outcome.stages,
        };
        Ok((outcome.result, report))
    }

    /// A unique per-run spill directory under the configured (or system)
    /// temp root.
    fn spill_dir(&self) -> std::path::PathBuf {
        let base = self
            .config
            .spill_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        base.join(format!(
            "sparch-stream-{}-{}",
            std::process::id(),
            RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryBudget, SpillCodec};
    use sparch_sparse::{algo, gen};

    fn exec(budget: MemoryBudget, panels: usize, threads: usize) -> StreamingExecutor {
        StreamingExecutor::new(StreamConfig {
            budget,
            panels,
            merge_ways: 4,
            threads: Some(threads),
            ..StreamConfig::default()
        })
    }

    /// An integer-valued random matrix (values in `-4..=4`, explicit
    /// zeros possible): products and sums are exact in f64, so the
    /// streamed result must be **bit-identical** to `gustavson` no matter
    /// how the panel split regroups the summation.
    fn int_matrix(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr {
        sparch_sparse::linalg::map_values(&gen::uniform_random(rows, cols, nnz, seed), |v| {
            (v * 4.0).round()
        })
    }

    #[test]
    fn matches_gustavson_in_core() {
        let a = int_matrix(96, 96, 600, 1);
        let b = int_matrix(96, 80, 500, 2);
        let (c, report) = exec(MemoryBudget::unbounded(), 5, 2)
            .multiply(&a, &b)
            .unwrap();
        assert_eq!(c, algo::gustavson(&a, &b));
        assert_eq!(report.spill_writes, 0);
        assert!(report.partials >= 2 && report.merge_rounds >= 1);
        assert!(report.peak_live_bytes <= report.partial_bytes_total);
        assert_eq!(report.output_nnz, c.nnz());
        assert!(report.stages.multiply_busy_seconds > 0.0);
    }

    #[test]
    fn float_inputs_match_structurally_and_to_tolerance() {
        // Floating-point sums regroup across panels, so values may drift
        // by ulps — but the structure (row_ptr / col_idx, explicit zeros
        // included) must be exact, which approx_eq checks.
        let a = gen::rmat_graph500(96, 5, 1);
        let b = gen::uniform_random(96, 80, 500, 2);
        let (c, _) = exec(MemoryBudget::from_kb(8), 5, 2)
            .multiply(&a, &b)
            .unwrap();
        assert!(c.approx_eq(&algo::gustavson(&a, &b), 1e-12));
    }

    #[test]
    fn zero_budget_spills_every_partial_and_still_matches() {
        let a = int_matrix(64, 64, 400, 7);
        let (c, report) = exec(MemoryBudget::from_bytes(0), 6, 1)
            .multiply(&a, &a)
            .unwrap();
        assert_eq!(c, algo::gustavson(&a, &a));
        assert_eq!(report.peak_live_bytes, 0);
        assert!(report.spill_writes >= report.partials as u64);
        assert!(report.spill_reads > 0);
        assert!(report.spill_bytes_written > 0);
        assert!(report.stages.spill_write_seconds > 0.0);
    }

    #[test]
    fn results_are_identical_across_budgets_panels_threads_codecs() {
        let a = int_matrix(80, 80, 500, 3);
        let b = int_matrix(80, 80, 350, 4);
        let expected = algo::gustavson(&a, &b);
        for budget in [0u64, 4 << 10, u64::MAX] {
            for panels in [1, 3, 4, 9] {
                for threads in [1, 4] {
                    for codec in [SpillCodec::Raw, SpillCodec::Varint] {
                        let mut e = exec(MemoryBudget::from_bytes(budget), panels, threads);
                        e.config.spill_codec = codec;
                        let (c, _) = e.multiply(&a, &b).unwrap();
                        assert_eq!(
                            c, expected,
                            "budget {budget} panels {panels} threads {threads} codec {codec}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn float_results_are_identical_across_budgets_and_threads() {
        // At a fixed panel count and balance mode the fold order is
        // fixed, so even float results are bit-identical no matter the
        // budget, thread count or codec — stage timing never reaches
        // the merge plan.
        let a = gen::rmat_graph500(80, 6, 3);
        let b = gen::rmat_graph500(80, 4, 4);
        let reference = exec(MemoryBudget::unbounded(), 4, 1)
            .multiply(&a, &b)
            .unwrap()
            .0;
        for budget in [0u64, 4 << 10] {
            for threads in [1, 4] {
                let (c, _) = exec(MemoryBudget::from_bytes(budget), 4, threads)
                    .multiply(&a, &b)
                    .unwrap();
                assert_eq!(c, reference, "budget {budget} threads {threads}");
            }
        }
    }

    #[test]
    fn balance_modes_agree_for_exact_arithmetic() {
        let a = int_matrix(90, 90, 700, 11);
        let b = int_matrix(90, 70, 400, 12);
        let expected = algo::gustavson(&a, &b);
        for balance in [PanelBalance::Uniform, PanelBalance::Nnz] {
            let mut e = exec(MemoryBudget::from_kb(4), 5, 2);
            e.config.balance = balance;
            let (c, report) = e.multiply(&a, &b).unwrap();
            assert_eq!(c, expected, "balance {balance}");
            assert_eq!(report.balance, balance);
        }
    }

    #[test]
    fn nnz_balance_evens_out_partial_sizes_on_skewed_input() {
        // Concentrate A's mass in the first columns: uniform panels give
        // one huge partial, nnz panels spread the weight.
        let mut entries = Vec::new();
        for r in 0..60u32 {
            for c in 0..6u32 {
                entries.push((r, c, 1.0));
            }
        }
        for r in 0..20u32 {
            entries.push((r, 10 + 2 * r % 50, 2.0));
        }
        let a = sparch_sparse::Coo::from_entries(60, 60, entries).to_csr();
        let b = int_matrix(60, 40, 300, 9);
        let run = |balance: PanelBalance| {
            let mut e = exec(MemoryBudget::unbounded(), 4, 1);
            e.config.balance = balance;
            e.multiply(&a, &b).unwrap().1
        };
        let uniform = run(PanelBalance::Uniform);
        let nnz = run(PanelBalance::Nnz);
        assert_eq!(uniform.output_nnz, nnz.output_nnz);
        assert!(
            nnz.largest_partial_bytes < uniform.largest_partial_bytes,
            "balanced split should shrink the largest partial: {} vs {}",
            nnz.largest_partial_bytes,
            uniform.largest_partial_bytes
        );
    }

    #[test]
    fn single_panel_degenerates_to_one_partial() {
        let a = gen::uniform_random(32, 32, 160, 5);
        let (c, report) = exec(MemoryBudget::unbounded(), 1, 1)
            .multiply(&a, &a)
            .unwrap();
        assert_eq!(c, algo::gustavson(&a, &a));
        assert_eq!(report.partials, 1);
        assert_eq!(report.merge_rounds, 0);
    }

    #[test]
    fn empty_operands_give_the_empty_product() {
        let (c, report) = exec(MemoryBudget::unbounded(), 4, 1)
            .multiply(&Csr::zero(5, 8), &Csr::zero(8, 3))
            .unwrap();
        assert_eq!((c.rows(), c.cols(), c.nnz()), (5, 3, 0));
        assert_eq!(report.partials, 0);
        assert_eq!(c, algo::gustavson(&Csr::zero(5, 8), &Csr::zero(8, 3)));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics_like_the_kernels() {
        let _ = exec(MemoryBudget::unbounded(), 2, 1).multiply(&Csr::zero(2, 3), &Csr::zero(2, 2));
    }

    #[test]
    fn panel_ingestion_validates_tiling() {
        let a = int_matrix(10, 12, 50, 1);
        let b = int_matrix(12, 10, 50, 2);
        let e = exec(MemoryBudget::unbounded(), 3, 1);
        // Gap in coverage.
        let bad = vec![(0..4, a.col_panel(0..4)), (6..12, a.col_panel(6..12))];
        assert!(matches!(
            e.multiply_from_panels(10, 12, bad, &b),
            Err(StreamError::Shape(_))
        ));
        // Wrong panel shape.
        let bad = vec![(0..12, a.col_panel(0..6))];
        assert!(matches!(
            e.multiply_from_panels(10, 12, bad, &b),
            Err(StreamError::Shape(_))
        ));
        // Missing tail.
        let bad = vec![(0..6, a.col_panel(0..6))];
        assert!(matches!(
            e.multiply_from_panels(10, 12, bad, &b),
            Err(StreamError::Shape(_))
        ));
        // B disagreeing with the declared inner dimension.
        assert!(matches!(
            e.multiply_from_panels(10, 9, vec![(0..9, a.col_panel(0..9))], &b),
            Err(StreamError::Shape(_))
        ));
        // A range past the inner dimension must error, not panic, even
        // though B's row panel could never be sliced for it.
        assert!(matches!(
            e.multiply_from_panels(10, 12, vec![(0..13, a.col_panel(0..12))], &b),
            Err(StreamError::Shape(_))
        ));
        // And the happy path through the same entry point.
        let good: Vec<_> = panel_ranges(12, 3)
            .into_iter()
            .map(|r| (r.clone(), a.col_panel(r)))
            .collect();
        let (c, _) = e.multiply_from_panels(10, 12, good, &b).unwrap();
        assert_eq!(c, algo::gustavson(&a, &b));
    }

    #[test]
    fn multiply_streams_pairs_both_operands() {
        let a = int_matrix(20, 24, 120, 5);
        let b = int_matrix(24, 16, 100, 6);
        let e = exec(MemoryBudget::from_bytes(0), 4, 2);
        let ranges = panel_ranges(24, 4);
        let a_stream = ranges
            .iter()
            .map(|r| Ok((r.clone(), a.col_panel(r.clone()))));
        let b_stream = ranges
            .iter()
            .map(|r| Ok((r.clone(), b.row_panel(r.clone()))));
        let (c, report) = e.multiply_streams(20, 24, 16, a_stream, b_stream).unwrap();
        assert_eq!(c, algo::gustavson(&a, &b));
        assert_eq!(report.panels, 4);

        // Mismatched ranges between the two streams are a shape error.
        let a_stream = ranges
            .iter()
            .map(|r| Ok((r.clone(), a.col_panel(r.clone()))));
        let b_stream = vec![Ok((0..24, b.clone()))].into_iter();
        assert!(matches!(
            e.multiply_streams(20, 24, 16, a_stream, b_stream),
            Err(StreamError::Shape(_))
        ));

        // Errors yielded by a stream pass through verbatim.
        let a_stream = vec![Err(StreamError::Ingest("disk on fire".into()))].into_iter();
        let b_stream = vec![Ok((0..24, b.clone()))].into_iter();
        assert!(matches!(
            e.multiply_streams(20, 24, 16, a_stream, b_stream),
            Err(StreamError::Ingest(_))
        ));

        // A surplus B panel after A ended (here: a full-coverage A
        // stream against one panel too many) is a shape error, never
        // silently dropped — and a surplus trailing *error* surfaces
        // too.
        let a_stream = vec![Ok((0..24, a.col_panel(0..24)))].into_iter();
        let b_stream = vec![Ok((0..24, b.clone())), Ok((24..30, Csr::zero(6, 16)))].into_iter();
        assert!(matches!(
            e.multiply_streams(20, 24, 16, a_stream, b_stream),
            Err(StreamError::Shape(_))
        ));
        let a_stream = vec![Ok((0..24, a.col_panel(0..24)))].into_iter();
        let b_stream = vec![
            Ok((0..24, b.clone())),
            Err(StreamError::Ingest("truncated tail".into())),
        ]
        .into_iter();
        assert!(matches!(
            e.multiply_streams(20, 24, 16, a_stream, b_stream),
            Err(StreamError::Ingest(_))
        ));
        // A surplus A panel after B ended reports the disagreement, not
        // a misleading coverage error.
        let a_stream = panel_ranges(24, 2)
            .into_iter()
            .map(|r| Ok((r.clone(), a.col_panel(r))));
        let b_stream = vec![Ok((0..12, b.row_panel(0..12)))].into_iter();
        match e.multiply_streams(20, 24, 16, a_stream, b_stream) {
            Err(StreamError::Shape(msg)) => {
                assert!(msg.contains("after the B stream ended"), "{msg}")
            }
            other => panic!("expected a stream-disagreement error, got {other:?}"),
        }
    }

    #[test]
    fn stage_telemetry_reports_overlap_on_parallel_runs() {
        // With multiple panels and workers, the reader should observe
        // multiplies in flight at least once on a workload this size —
        // and busy seconds must be populated for every stage.
        let a = int_matrix(160, 160, 160 * 12, 21);
        let (c, report) = exec(MemoryBudget::from_kb(16), 12, 2)
            .multiply(&a, &a)
            .unwrap();
        assert_eq!(c, algo::gustavson(&a, &a));
        let s = &report.stages;
        assert!(s.reader_busy_seconds > 0.0);
        assert!(s.multiply_busy_seconds > 0.0);
        assert!(
            s.multiply_kernel_seconds > 0.0 && s.multiply_kernel_seconds <= s.multiply_busy_seconds,
            "kernel time must be a positive share of multiply busy time: {s:?}"
        );
        assert!(
            s.multiply_scratch_reuses > 0,
            "12 panels on 2 workers must reuse scratch at least once: {s:?}"
        );
        assert!(s.merge_busy_seconds > 0.0);
        assert!(
            s.reads_overlapping_multiply > 0 || s.rounds_overlapping_multiply > 0,
            "no overlap observed at all: {s:?}"
        );
    }

    #[test]
    fn report_serializes() {
        let a = gen::uniform_random(24, 24, 100, 8);
        let (_, report) = exec(MemoryBudget::from_kb(1), 4, 1)
            .multiply(&a, &a)
            .unwrap();
        assert_eq!(report.schema_version, StreamReport::SCHEMA_VERSION);
        let json = serde_json::to_string(&report).unwrap();
        let back: StreamReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn without_timing_is_deterministic_across_runs() {
        let a = int_matrix(64, 64, 400, 13);
        let run = || {
            exec(MemoryBudget::from_kb(2), 5, 4)
                .multiply(&a, &a)
                .unwrap()
                .1
        };
        let first = run().without_timing();
        let second = run().without_timing();
        assert_eq!(first, second);
        assert_eq!(first.stages, StageReport::default());
        assert_eq!(first.peak_live_bytes, 0);
        // The structural facts survive the projection.
        assert!(first.partials > 0 && first.output_nnz > 0);
    }

    #[test]
    fn recorder_captures_every_pipeline_stage() {
        let a = int_matrix(96, 96, 700, 17);
        let executor = exec(MemoryBudget::from_bytes(0), 6, 2).with_recorder(Recorder::enabled());
        let (_, report) = executor.multiply(&a, &a).unwrap();
        let trace = executor.recorder().drain("stream");
        for name in [
            "read-panel",
            "multiply-job",
            "kernel",
            "merge-round",
            "spill-write",
        ] {
            assert!(
                trace.count_named(name) > 0,
                "no {name} span in the trace: {:?}",
                trace
                    .spans
                    .iter()
                    .map(|s| s.name.as_str())
                    .collect::<Vec<_>>()
            );
        }
        // Span sums are the same accumulations the report publishes.
        let tol = |x: f64| 0.05 * x + 1e-4;
        let s = &report.stages;
        assert!(
            (trace.seconds_named("read-panel") - s.reader_busy_seconds).abs()
                <= tol(s.reader_busy_seconds)
        );
        assert!(
            (trace.seconds_named("multiply-job") - s.multiply_busy_seconds).abs()
                <= tol(s.multiply_busy_seconds)
        );
        assert!(
            (trace.seconds_named("kernel") - s.multiply_kernel_seconds).abs()
                <= tol(s.multiply_kernel_seconds)
        );
        assert!(
            (trace.seconds_named("spill-write") - s.spill_write_seconds).abs()
                <= tol(s.spill_write_seconds)
        );
        // Spill counters mirror the report's byte accounting exactly.
        assert_eq!(
            trace.metrics.counter("stream.spill_bytes_written"),
            report.spill_bytes_written
        );
        assert_eq!(
            trace.metrics.counter("stream.spill_bytes_raw_equivalent"),
            report.spill_bytes_raw_equivalent
        );
        assert_eq!(
            trace.metrics.counter("stream.spill_files_written"),
            report.spill_writes
        );
    }
}
