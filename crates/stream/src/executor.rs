//! The streaming out-of-core SpGEMM executor.
//!
//! See the crate docs for the pipeline shape. The executor is stateless
//! and cheap to clone per task; every run creates (and removes) its own
//! unique spill directory, so concurrent runs never collide.

use crate::merge::{merge_sources, PartialSource};
use crate::store::PartialStore;
use crate::{StreamConfig, StreamError};
use serde::{Deserialize, Serialize};
use sparch_core::sched::{huffman_plan, PlanNode};
use sparch_exec::ShardPool;
use sparch_sparse::{algo, panel_ranges, Csr};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Telemetry of one streaming multiply — the quantities the paper's
/// merge-order analysis reasons about (partial count, merge rounds,
/// partial-result traffic), measured on the software pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Rows of `A` (= rows of the output).
    pub a_rows: usize,
    /// The shared inner dimension (`A` cols = `B` rows).
    pub inner_dim: usize,
    /// Columns of `B` (= columns of the output).
    pub b_cols: usize,
    /// Panels the inner dimension was split into.
    pub panels: usize,
    /// Non-empty partial products that entered the merge (≤ `panels`).
    pub partials: usize,
    /// Merge rounds the Huffman plan scheduled.
    pub merge_rounds: usize,
    /// Fan-in of each merge round.
    pub merge_ways: usize,
    /// The configured budget, in bytes.
    pub budget_bytes: u64,
    /// High-water mark of resident partial bytes — never exceeds
    /// `budget_bytes` (the store's structural invariant).
    pub peak_live_bytes: u64,
    /// Combined footprint of every partial produced: what "no budget"
    /// would have held resident after the multiply phase.
    pub partial_bytes_total: u64,
    /// The largest single partial's footprint.
    pub largest_partial_bytes: u64,
    /// Partials written to disk (evictions + direct spills).
    pub spill_writes: u64,
    /// Spilled partials streamed back for a merge round.
    pub spill_reads: u64,
    /// Total bytes written to spill files.
    pub spill_bytes_written: u64,
    /// Stored entries of the result.
    pub output_nnz: usize,
    /// Worker threads used by the panel-multiply phase.
    pub threads: usize,
}

/// Monotone counter making every run's spill directory unique within the
/// process (the process id distinguishes concurrent processes).
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Panel-partitioned, memory-budgeted SpGEMM — the crate's entry point.
///
/// # Example
///
/// ```
/// use sparch_stream::{StreamConfig, StreamingExecutor};
/// use sparch_sparse::{algo, gen};
///
/// let a = gen::uniform_random(64, 64, 400, 1);
/// let b = gen::uniform_random(64, 48, 300, 2);
/// let (c, report) = StreamingExecutor::new(StreamConfig::default())
///     .multiply(&a, &b)
///     .unwrap();
/// // Structure is exact; float values regroup across panels, so compare
/// // to tolerance (integer-valued inputs are bit-identical).
/// assert!(c.approx_eq(&algo::gustavson(&a, &b), 1e-12));
/// assert_eq!(report.output_nnz, c.nnz());
/// ```
#[derive(Debug, Clone)]
pub struct StreamingExecutor {
    config: StreamConfig,
}

impl StreamingExecutor {
    /// An executor with the given configuration.
    pub fn new(config: StreamConfig) -> Self {
        StreamingExecutor { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Computes `C = A · B` through the streaming pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()` — the same contract as every
    /// `sparch_sparse::algo` kernel.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] if spill I/O fails.
    pub fn multiply(&self, a: &Csr, b: &Csr) -> Result<(Csr, StreamReport), StreamError> {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let panels = panel_ranges(a.cols(), self.config.panels)
            .into_iter()
            .map(|r| (r.clone(), a.col_panel(r)));
        self.multiply_from_panels(a.rows(), a.cols(), panels, b)
    }

    /// Computes `C = A · B` from pre-extracted column panels of `A` — the
    /// ingestion-facing entry point: `panels` may come from
    /// `sparch_sparse::mm::PanelReader`, so `A` is never materialized
    /// whole. Each item is a column range of `A` plus the corresponding
    /// `a_rows × range.len()` panel with localized column indices; ranges
    /// must tile `0..inner_dim` left to right.
    ///
    /// # Errors
    ///
    /// [`StreamError::Shape`] if the panels do not tile the declared
    /// shape or disagree with `b`; [`StreamError::Io`] on spill I/O
    /// failure.
    pub fn multiply_from_panels<I>(
        &self,
        a_rows: usize,
        inner_dim: usize,
        panels: I,
        b: &Csr,
    ) -> Result<(Csr, StreamReport), StreamError>
    where
        I: IntoIterator<Item = (Range<usize>, Csr)>,
    {
        if b.rows() != inner_dim {
            return Err(StreamError::Shape(format!(
                "inner dimension {inner_dim} != B rows {}",
                b.rows()
            )));
        }
        let pool = ShardPool::with_override(self.config.threads);
        let ways = self.config.merge_ways.max(2);
        let mut store = PartialStore::new(self.config.budget, self.spill_dir());

        // Multiply phase: panel pairs stream through in chunks of one
        // batch per worker, so at most `threads` un-inserted partials are
        // in flight while the store keeps everything older under budget.
        let mut weights: Vec<u64> = Vec::new();
        let mut partial_bytes_total = 0u64;
        let mut largest_partial_bytes = 0u64;
        let mut panel_count = 0usize;
        let mut covered = 0usize;
        let mut chunk: Vec<(Range<usize>, Csr)> = Vec::with_capacity(pool.threads());
        let mut panels = panels.into_iter();
        loop {
            chunk.clear();
            for (range, panel) in panels.by_ref().take(pool.threads()) {
                if range.start != covered || range.end > inner_dim {
                    return Err(StreamError::Shape(format!(
                        "panel {range:?} does not tile 0..{inner_dim} (covered 0..{covered})"
                    )));
                }
                if panel.rows() != a_rows || panel.cols() != range.len() {
                    return Err(StreamError::Shape(format!(
                        "panel {range:?} has shape {}x{}, expected {a_rows}x{}",
                        panel.rows(),
                        panel.cols(),
                        range.len()
                    )));
                }
                covered = range.end;
                chunk.push((range, panel));
            }
            if chunk.is_empty() {
                break;
            }
            panel_count += chunk.len();
            let partials = pool.scoped_map(&chunk, |_, (range, panel)| {
                algo::gustavson(panel, &b.row_panel(range.clone()))
            });
            for partial in partials {
                if partial.nnz() == 0 {
                    continue;
                }
                let bytes = partial.estimated_bytes();
                partial_bytes_total += bytes;
                largest_partial_bytes = largest_partial_bytes.max(bytes);
                let id = weights.len();
                weights.push(partial.nnz() as u64);
                store.insert(id, partial)?;
            }
        }
        if covered != inner_dim {
            return Err(StreamError::Shape(format!(
                "panels cover only 0..{covered} of 0..{inner_dim}"
            )));
        }

        // Merge phase: execute the k-ary Huffman plan (smallest partials
        // first — the paper's traffic-optimal order) round by round.
        let n = weights.len();
        let plan = huffman_plan(&weights, ways);
        let node_id = |node: PlanNode| match node {
            PlanNode::Leaf(l) => l,
            PlanNode::Round(r) => n + r,
        };
        let mut consumers = vec![usize::MAX; n + plan.rounds.len()];
        for (round, r) in plan.rounds.iter().enumerate() {
            for &child in &r.children {
                consumers[node_id(child)] = round;
            }
        }
        store.set_consumers(consumers);

        let result = if n == 0 {
            Csr::zero(a_rows, b.cols())
        } else if n == 1 {
            store.take_full(0)?
        } else {
            let mut result = None;
            for (round, r) in plan.rounds.iter().enumerate() {
                let ids: Vec<usize> = r.children.iter().map(|&c| node_id(c)).collect();
                let mut sources = Vec::with_capacity(ids.len());
                for &id in &ids {
                    sources.push(PartialSource::from(store.take(id)?));
                }
                let merged = merge_sources(a_rows, b.cols(), sources)?;
                for &id in &ids {
                    store.release(id);
                }
                if round + 1 == plan.rounds.len() {
                    result = Some(merged);
                } else {
                    store.insert(n + round, merged)?;
                }
            }
            result.expect("a multi-leaf plan ends in a final round")
        };

        let stats = store.stats().clone();
        store.cleanup();
        let report = StreamReport {
            a_rows,
            inner_dim,
            b_cols: b.cols(),
            panels: panel_count,
            partials: n,
            merge_rounds: plan.rounds.len(),
            merge_ways: ways,
            budget_bytes: self.config.budget.bytes(),
            peak_live_bytes: stats.peak_live_bytes,
            partial_bytes_total,
            largest_partial_bytes,
            spill_writes: stats.spill_writes,
            spill_reads: stats.spill_reads,
            spill_bytes_written: stats.spill_bytes_written,
            output_nnz: result.nnz(),
            threads: pool.threads(),
        };
        Ok((result, report))
    }

    /// A unique per-run spill directory under the configured (or system)
    /// temp root.
    fn spill_dir(&self) -> std::path::PathBuf {
        let base = self
            .config
            .spill_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        base.join(format!(
            "sparch-stream-{}-{}",
            std::process::id(),
            RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBudget;
    use sparch_sparse::gen;

    fn exec(budget: MemoryBudget, panels: usize, threads: usize) -> StreamingExecutor {
        StreamingExecutor::new(StreamConfig {
            budget,
            panels,
            merge_ways: 4,
            threads: Some(threads),
            spill_dir: None,
        })
    }

    /// An integer-valued random matrix (values in `-4..=4`, explicit
    /// zeros possible): products and sums are exact in f64, so the
    /// streamed result must be **bit-identical** to `gustavson` no matter
    /// how the panel split regroups the summation.
    fn int_matrix(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr {
        sparch_sparse::linalg::map_values(&gen::uniform_random(rows, cols, nnz, seed), |v| {
            (v * 4.0).round()
        })
    }

    #[test]
    fn matches_gustavson_in_core() {
        let a = int_matrix(96, 96, 600, 1);
        let b = int_matrix(96, 80, 500, 2);
        let (c, report) = exec(MemoryBudget::unbounded(), 5, 2)
            .multiply(&a, &b)
            .unwrap();
        assert_eq!(c, algo::gustavson(&a, &b));
        assert_eq!(report.spill_writes, 0);
        assert!(report.partials >= 2 && report.merge_rounds >= 1);
        assert!(report.peak_live_bytes <= report.partial_bytes_total);
        assert_eq!(report.output_nnz, c.nnz());
    }

    #[test]
    fn float_inputs_match_structurally_and_to_tolerance() {
        // Floating-point sums regroup across panels, so values may drift
        // by ulps — but the structure (row_ptr / col_idx, explicit zeros
        // included) must be exact, which approx_eq checks.
        let a = gen::rmat_graph500(96, 5, 1);
        let b = gen::uniform_random(96, 80, 500, 2);
        let (c, _) = exec(MemoryBudget::from_kb(8), 5, 2)
            .multiply(&a, &b)
            .unwrap();
        assert!(c.approx_eq(&algo::gustavson(&a, &b), 1e-12));
    }

    #[test]
    fn zero_budget_spills_every_partial_and_still_matches() {
        let a = int_matrix(64, 64, 400, 7);
        let (c, report) = exec(MemoryBudget::from_bytes(0), 6, 1)
            .multiply(&a, &a)
            .unwrap();
        assert_eq!(c, algo::gustavson(&a, &a));
        assert_eq!(report.peak_live_bytes, 0);
        assert!(report.spill_writes >= report.partials as u64);
        assert!(report.spill_reads > 0);
        assert!(report.spill_bytes_written > 0);
    }

    #[test]
    fn results_are_identical_across_budgets_panels_threads() {
        let a = int_matrix(80, 80, 500, 3);
        let b = int_matrix(80, 80, 350, 4);
        let expected = algo::gustavson(&a, &b);
        for budget in [0u64, 4 << 10, u64::MAX] {
            for panels in [1, 3, 4, 9] {
                for threads in [1, 4] {
                    let (c, _) = exec(MemoryBudget::from_bytes(budget), panels, threads)
                        .multiply(&a, &b)
                        .unwrap();
                    assert_eq!(
                        c, expected,
                        "budget {budget} panels {panels} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn float_results_are_identical_across_budgets_and_threads() {
        // At a fixed panel count the fold order is fixed, so even float
        // results are bit-identical no matter the budget or thread count.
        let a = gen::rmat_graph500(80, 6, 3);
        let b = gen::rmat_graph500(80, 4, 4);
        let reference = exec(MemoryBudget::unbounded(), 4, 1)
            .multiply(&a, &b)
            .unwrap()
            .0;
        for budget in [0u64, 4 << 10] {
            for threads in [1, 4] {
                let (c, _) = exec(MemoryBudget::from_bytes(budget), 4, threads)
                    .multiply(&a, &b)
                    .unwrap();
                assert_eq!(c, reference, "budget {budget} threads {threads}");
            }
        }
    }

    #[test]
    fn single_panel_degenerates_to_one_partial() {
        let a = gen::uniform_random(32, 32, 160, 5);
        let (c, report) = exec(MemoryBudget::unbounded(), 1, 1)
            .multiply(&a, &a)
            .unwrap();
        assert_eq!(c, algo::gustavson(&a, &a));
        assert_eq!(report.partials, 1);
        assert_eq!(report.merge_rounds, 0);
    }

    #[test]
    fn empty_operands_give_the_empty_product() {
        let (c, report) = exec(MemoryBudget::unbounded(), 4, 1)
            .multiply(&Csr::zero(5, 8), &Csr::zero(8, 3))
            .unwrap();
        assert_eq!((c.rows(), c.cols(), c.nnz()), (5, 3, 0));
        assert_eq!(report.partials, 0);
        assert_eq!(c, algo::gustavson(&Csr::zero(5, 8), &Csr::zero(8, 3)));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics_like_the_kernels() {
        let _ = exec(MemoryBudget::unbounded(), 2, 1).multiply(&Csr::zero(2, 3), &Csr::zero(2, 2));
    }

    #[test]
    fn panel_ingestion_validates_tiling() {
        let a = int_matrix(10, 12, 50, 1);
        let b = int_matrix(12, 10, 50, 2);
        let e = exec(MemoryBudget::unbounded(), 3, 1);
        // Gap in coverage.
        let bad = vec![(0..4, a.col_panel(0..4)), (6..12, a.col_panel(6..12))];
        assert!(matches!(
            e.multiply_from_panels(10, 12, bad, &b),
            Err(StreamError::Shape(_))
        ));
        // Wrong panel shape.
        let bad = vec![(0..12, a.col_panel(0..6))];
        assert!(matches!(
            e.multiply_from_panels(10, 12, bad, &b),
            Err(StreamError::Shape(_))
        ));
        // Missing tail.
        let bad = vec![(0..6, a.col_panel(0..6))];
        assert!(matches!(
            e.multiply_from_panels(10, 12, bad, &b),
            Err(StreamError::Shape(_))
        ));
        // B disagreeing with the declared inner dimension.
        assert!(matches!(
            e.multiply_from_panels(10, 9, vec![(0..9, a.col_panel(0..9))], &b),
            Err(StreamError::Shape(_))
        ));
        // And the happy path through the same entry point.
        let good: Vec<_> = panel_ranges(12, 3)
            .into_iter()
            .map(|r| (r.clone(), a.col_panel(r)))
            .collect();
        let (c, _) = e.multiply_from_panels(10, 12, good, &b).unwrap();
        assert_eq!(c, algo::gustavson(&a, &b));
    }

    #[test]
    fn report_serializes() {
        let a = gen::uniform_random(24, 24, 100, 8);
        let (_, report) = exec(MemoryBudget::from_kb(1), 4, 1)
            .multiply(&a, &a)
            .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: StreamReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
