//! The staged dataflow pipeline: reader → multiply → merge → spill.
//!
//! SpArch overlaps fetch with compute — the row prefetcher and the
//! condensed left matrix exist so the comparator array never stalls on
//! DRAM. The software pipeline mirrors that discipline with four
//! concurrently running stages around a single orchestrator thread:
//!
//! ```text
//!  reader thread       multiply workers        merge workers
//!  (both operands, ──▶ (ShardPool::scoped_ ──┐ (ShardPool::scoped_
//!   panel by panel) ch. workers, gustavson   │  workers, k-way
//!                       per panel pair)      │  merge_sources per
//!                                            │  plan round)
//!                                            ▼        ▲ round │ done
//!                                     orchestrator ───┘ jobs  │ events
//!                                     (store inserts,         │
//!                                      round dispatch) ◀──────┘
//!                                            │ spill jobs
//!                                            ▼
//!                                      writer thread
//!                                      (encode + write spill files)
//! ```
//!
//! The reader streams panel *pairs* — `A[:, p]` plus the matching
//! `B[p, :]` — so neither operand is ever materialized whole; the job
//! channel bound (`threads + 1` pairs) caps how much of either operand
//! is resident. Multiply workers pull pairs and publish partials into
//! the orchestrator's event queue, gated by a [`Permits`] counter so at
//! most `threads` un-inserted partials exist at once. The orchestrator
//! inserts each arrival into the budgeted [`PartialStore`] and
//! dispatches every merge round of the Huffman plan whose children are
//! all available onto the merge workers — *independent rounds run
//! concurrently*, up to the merge worker count. Spill write-back is
//! off the orchestrator too: the store hands [`SpillJob`]s to a
//! dedicated writer thread and marks the node unavailable until the
//! write lands. Disk ingest, multiplies, spill writes and merge rounds
//! all overlap instead of alternating.
//!
//! **Determinism.** The Huffman plan's leaf weights are the per-panel
//! `A`-column non-zero counts, fixed by the panel split alone — known
//! the moment the reader finishes, *before* the last multiply lands, and
//! entirely independent of stage timing, thread count, budget or codec.
//! The plan fixes every round's children up front, so however rounds
//! interleave across merge workers, each round folds exactly the same
//! inputs in the same child order — the fold order, and therefore every
//! output bit, depends only on the plan, never on which worker ran
//! first. Timing can shift *which* partials spill and *when* a round is
//! dispatched (spill and overlap counters vary at `threads > 1`), but
//! never what any round computes.

use crate::merge::{merge_sources, MergeScratch, PartialSource};
use crate::spill::{raw_size, write_partial, SpillFile};
use crate::store::{PartialStore, SpillJob, StoreStats};
use crate::{StreamConfig, StreamError};
use serde::{Deserialize, Serialize};
use sparch_core::sched::{huffman_plan, MergePlan, PlanNode};
use sparch_exec::{Permits, ShardPool, SharedQueue};
use sparch_obs::{Counter, Recorder, ThreadRecorder};
use sparch_sparse::{algo, Csr, Index};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Mutex;

/// One panel pair flowing from the reader into the multiply stage:
/// `A[:, range]` with localized columns and `B[range, :]` with localized
/// rows, plus the `A` panel's occupied-row index — the condensed view the
/// multiply kernel iterates instead of scanning all rows. The executor
/// records the index while slicing (or with one row-pointer sweep when
/// panels arrive pre-sliced), so the multiply workers never pay for it.
pub(crate) struct PanelPair {
    pub range: Range<usize>,
    pub a: Csr,
    pub b: Csr,
    /// Rows of `a` with at least one entry, strictly increasing.
    pub live: Vec<Index>,
}

/// Per-stage busy time and overlap evidence for one pipelined multiply.
///
/// Busy seconds are summed per stage (multiply and merge across all of
/// their workers), so they can exceed the wall clock — that excess *is*
/// the overlap. The counters are direct evidence of pipelining: they
/// count events that are impossible in a phase-alternating executor.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageReport {
    /// Time the reader stage spent pulling + validating panel pairs.
    pub reader_busy_seconds: f64,
    /// Total worker time handling multiply jobs end to end (summed over
    /// workers): the SpGEMM kernel plus the publish-gate wait for the
    /// orchestrator to consume earlier partials.
    pub multiply_busy_seconds: f64,
    /// Time inside the panel SpGEMM kernel itself, summed over multiply
    /// workers — the portion of `multiply_busy_seconds` that scales with
    /// the flop count (the multiply twin of `merge_kernel_seconds`).
    pub multiply_kernel_seconds: f64,
    /// Multiply jobs served entirely from already-warm worker scratch
    /// (no SPA allocation or growth). With `p` panels on `w` workers,
    /// at most `w` jobs are cold, so this is at least `p - w`.
    pub multiply_scratch_reuses: u64,
    /// Time the merge stage spent on partials end to end: orchestrator
    /// bookkeeping (store inserts, round dispatch) plus
    /// `merge_kernel_seconds`. Spill encoding/writing is *not* included
    /// — it runs on the writer thread (`spill_write_seconds`).
    pub merge_busy_seconds: f64,
    /// Time inside the k-way merge kernel itself, summed over merge
    /// workers — the portion of `merge_busy_seconds` that scales with
    /// `merge_triples`.
    pub merge_kernel_seconds: f64,
    /// Wall time spent encoding + writing spill files (on the writer
    /// thread once the pipeline is running, so it overlaps every other
    /// stage).
    pub spill_write_seconds: f64,
    /// Triples consumed by merge rounds (summed input non-zeros across
    /// all rounds). `merge_triples / merge_kernel_seconds` is the merge
    /// kernel's throughput.
    pub merge_triples: u64,
    /// Panel reads that completed while ≥ 1 multiply was in flight —
    /// the reader ingesting while the compute stage holds unfinished
    /// work. "In flight" spans from the reader handing a pair to the
    /// multiply stage until the orchestrator consumes the partial, so
    /// the counter measures *pipelining* (stages progressing with
    /// upstream work outstanding) rather than physical simultaneity, and
    /// is meaningful even on a single core. A phase-alternating executor
    /// scores 0 by construction.
    pub reads_overlapping_multiply: u64,
    /// Merge rounds dispatched while ≥ 1 multiply was in flight (same
    /// definition) — the merge stage folding while the compute stage
    /// still holds work.
    pub rounds_overlapping_multiply: u64,
    /// Merge rounds dispatched while ≥ 1 multiply *or* ≥ 1 other merge
    /// round was in flight — rounds that ran concurrently with other
    /// pipeline work instead of strictly after it.
    pub rounds_merged_concurrently: u64,
    /// Spill writes handed to the dedicated writer thread instead of
    /// blocking the orchestrator.
    pub spill_writeback_offloaded: u64,
}

/// What one pipeline run produced, before the executor folds it into its
/// public [`StreamReport`](crate::StreamReport).
pub(crate) struct PipelineOutcome {
    pub result: Csr,
    /// Panel pairs the reader validated (including all-empty `A` panels
    /// that never became merge leaves).
    pub panels: usize,
    /// Merge-plan leaves: panels whose `A` panel had any non-zeros.
    pub partials: usize,
    pub merge_rounds: usize,
    pub partial_bytes_total: u64,
    pub largest_partial_bytes: u64,
    pub store_stats: StoreStats,
    pub stages: StageReport,
}

/// A multiply job: one panel pair tagged with its merge-plan leaf id.
struct MultiplyJob {
    leaf: usize,
    a: Csr,
    b: Csr,
    /// Occupied-row index of `a` (see [`PanelPair::live`]).
    live: Vec<Index>,
}

/// A merge round handed to a merge worker: the plan round index plus its
/// already-taken (budget-pinned or spill-streaming) inputs.
struct RoundJob {
    round: usize,
    sources: Vec<PartialSource>,
}

/// Everything the producer stages funnel into the orchestrator. One
/// unbounded channel (std has no `select`) carries them all; each
/// producer kind is individually bounded — multiplies by the [`Permits`]
/// gate, rounds by the dispatch cap, spills by the writer's
/// `sync_channel(1)` — so the queue never grows past a few entries.
enum Event {
    /// A multiply worker finished leaf `leaf`.
    MultiplyDone {
        leaf: usize,
        partial: Csr,
        /// Whole-job worker time (kernel + publish-gate wait).
        seconds: f64,
        /// Time inside the SpGEMM kernel alone.
        kernel_seconds: f64,
        /// Whether the job ran entirely on already-warm worker scratch.
        warm: bool,
    },
    /// A merge worker finished plan round `round`.
    RoundDone {
        round: usize,
        outcome: Result<Csr, StreamError>,
        kernel_seconds: f64,
        triples: u64,
    },
    /// The writer thread finished (or failed) the spill of node `id`;
    /// on success carries the spill file, its raw-equivalent bytes and
    /// the write time.
    SpillDone {
        id: usize,
        outcome: Result<(SpillFile, u64, f64), StreamError>,
    },
    /// Every multiply worker has exited: all `MultiplyDone` events are
    /// already queued ahead of this, and the plan weights are published.
    MultiplyStageClosed,
    /// Every merge worker has exited. Arrives mid-run only if the stage
    /// died abnormally — normally the orchestrator outlives it.
    MergeStageClosed,
}

/// What the reader thread learned, returned through its join handle.
struct ReaderOutcome {
    busy_seconds: f64,
    reads_overlapping_multiply: u64,
    /// Panel pairs validated, including pruned all-empty `A` panels.
    panels: usize,
    error: Option<StreamError>,
}

/// The shared plumbing the orchestrator drives: owning `round_tx` means
/// dropping these links is what lets the merge workers exit.
struct OrchestratorLinks<'a> {
    round_tx: SyncSender<RoundJob>,
    weights_slot: &'a Mutex<Option<Vec<u64>>>,
    inflight: &'a AtomicUsize,
    gate: &'a Permits,
    abort: &'a AtomicBool,
}

/// Runs the staged pipeline over a stream of panel pairs.
///
/// `pairs` yields `(range, A-panel, B-panel)` items left to right; the
/// reader validates that ranges tile `0..inner_dim` and that panel
/// shapes agree with `a_rows`/`b_cols`. Iterator errors (e.g. a disk
/// reader failing mid-file) abort the run with that error.
/// Every stage runs its timing through an [`sparch_obs`] span lane: the
/// busy-seconds in [`StageReport`] are the `end()` return values of the
/// very spans an enabled recorder exports, so the report is a view of
/// the trace (span taxonomy: `read-panel` on the reader lane;
/// `multiply-job` wrapping `kernel` + `publish-wait` on each multiply
/// lane; `merge-round` on merge lanes; `spill-write` on the writer lane;
/// `orchestrate` on the orchestrator lane; `claim-wait` measures channel
/// waits outside every busy figure). With a disabled recorder the lanes
/// allocate nothing.
pub(crate) fn run<I>(
    config: &StreamConfig,
    a_rows: usize,
    inner_dim: usize,
    b_cols: usize,
    pairs: I,
    spill_dir: PathBuf,
    recorder: &Recorder,
) -> Result<PipelineOutcome, StreamError>
where
    I: Iterator<Item = Result<PanelPair, StreamError>> + Send,
{
    let pool = ShardPool::with_override(config.threads);
    let merge_pool = ShardPool::new(config.merge_workers.unwrap_or(pool.threads()));
    let ways = config.merge_ways.max(2);
    let mut store = PartialStore::new(config.budget, spill_dir, config.spill_codec);

    // Stage plumbing. The job channel is bounded (at most `threads + 1`
    // pairs queued for multiply) and each event producer is bounded (see
    // `Event`), which is what keeps the pipeline's transient memory a
    // constant factor of the panel size.
    let (job_tx, job_rx) = sync_channel::<MultiplyJob>(pool.threads() + 1);
    let (evt_tx, evt_rx) = channel::<Event>();
    // Round jobs never outnumber merge workers (the dispatch cap), so
    // this capacity means the orchestrator never blocks sending one.
    let (round_tx, round_rx) = sync_channel::<RoundJob>(merge_pool.threads());
    // Spill write-back: the orchestrator blocks only when a write is
    // already in progress *and* one is queued — the natural backpressure
    // that keeps at most two partial-sized buffers with the writer.
    let (spill_tx, spill_rx) = sync_channel::<SpillJob>(1);
    store.set_spill_sink(spill_tx);

    // The job/round receivers become shared claim queues so any worker
    // in a stage can take the next job. Each stage *closes* its queue
    // once every worker is done — even by panic: the job-channel
    // disconnect is what unblocks a reader mid-send; without the
    // unconditional close a worker panic would wedge it instead of
    // propagating at join.
    let job_rx = SharedQueue::new(job_rx);
    let round_rx = SharedQueue::new(round_rx);
    // Jobs in the submitted-to-consumed window (reader sent the pair,
    // orchestrator has not yet received the partial); the overlap
    // counters sample this.
    let inflight = AtomicUsize::new(0);
    // Bounds un-consumed multiply results (the event channel itself is
    // unbounded): a worker takes a permit to publish, the orchestrator
    // returns it on consumption.
    let gate = Permits::new(pool.threads());
    // Raised by the orchestrator on its first failure so the reader
    // stops ingesting promptly — a disk-full on the first spill must not
    // cost the whole remaining ingest + multiply bill.
    let abort = AtomicBool::new(false);
    // The reader publishes every leaf's weight here when it finishes —
    // the orchestrator builds the Huffman plan from it mid-flight.
    let weights_slot: Mutex<Option<Vec<u64>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        let (weights_ref, inflight_ref, abort_ref, gate_ref) =
            (&weights_slot, &inflight, &abort, &gate);
        let reader_lane = recorder.thread("reader");
        let reader = scope.spawn(move || {
            reader_stage(
                pairs,
                a_rows,
                inner_dim,
                b_cols,
                job_tx,
                weights_ref,
                inflight_ref,
                abort_ref,
                reader_lane,
            )
        });

        let multiply_evt = evt_tx.clone();
        let job_rx_ref = &job_rx;
        let workers = scope.spawn(move || {
            let evt_proto = Mutex::new(multiply_evt);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.scoped_workers(|_| {
                    let tx = evt_proto.lock().expect("event sender poisoned").clone();
                    let lane = recorder.thread("multiply");
                    multiply_worker(job_rx_ref, &tx, gate_ref, lane);
                });
            }));
            // Close the job channel and announce the stage end, panic or
            // not (see the channel setup above). The Closed event is what
            // tells the orchestrator no more partials can arrive.
            job_rx_ref.close();
            let _ = evt_proto
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .send(Event::MultiplyStageClosed);
            if let Err(panic) = outcome {
                std::panic::resume_unwind(panic);
            }
        });

        let merge_evt = evt_tx.clone();
        let round_rx_ref = &round_rx;
        let mergers = scope.spawn(move || {
            let evt_proto = Mutex::new(merge_evt);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                merge_pool.scoped_workers(|_| {
                    let tx = evt_proto.lock().expect("event sender poisoned").clone();
                    let lane = recorder.thread("merge");
                    merge_worker(round_rx_ref, &tx, a_rows, b_cols, lane);
                });
            }));
            round_rx_ref.close();
            let _ = evt_proto
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .send(Event::MergeStageClosed);
            if let Err(panic) = outcome {
                std::panic::resume_unwind(panic);
            }
        });

        let writer_evt = evt_tx.clone();
        let writer_lane = recorder.thread("spill-writer");
        let spill_counters = SpillCounters {
            files: recorder.counter("stream.spill_files_written"),
            bytes: recorder.counter("stream.spill_bytes_written"),
            raw_bytes: recorder.counter("stream.spill_bytes_raw_equivalent"),
        };
        let writer =
            scope.spawn(move || spill_writer(spill_rx, writer_evt, writer_lane, spill_counters));

        // The orchestrator holds only the receiver: if every stage dies,
        // the disconnect (rather than a deadlock) ends the loop.
        drop(evt_tx);

        let mut merge = MergeStage::new(
            store,
            a_rows,
            b_cols,
            ways,
            merge_pool.threads(),
            recorder.thread("orchestrator"),
        );
        merge.run(
            &evt_rx,
            OrchestratorLinks {
                round_tx,
                weights_slot: &weights_slot,
                inflight: &inflight,
                gate: &gate,
                abort: &abort,
            },
        );

        let reader = reader.join().expect("reader stage panicked");
        workers.join().expect("multiply worker panicked");
        mergers.join().expect("merge worker panicked");
        writer.join().expect("spill writer panicked");
        merge.finish(reader)
    })
}

/// The reader stage: pulls panel pairs, validates tiling and shapes,
/// tags non-empty `A` panels with leaf ids and feeds them to the
/// multiply stage, then publishes the plan weights. Stops early when
/// the orchestrator raises `abort` (its failure is the one reported).
#[allow(clippy::too_many_arguments)]
fn reader_stage<I>(
    mut pairs: I,
    a_rows: usize,
    inner_dim: usize,
    b_cols: usize,
    job_tx: SyncSender<MultiplyJob>,
    weights_slot: &Mutex<Option<Vec<u64>>>,
    inflight: &AtomicUsize,
    abort: &AtomicBool,
    mut lane: ThreadRecorder,
) -> ReaderOutcome
where
    I: Iterator<Item = Result<PanelPair, StreamError>> + Send,
{
    let mut covered = 0usize;
    let mut weights: Vec<u64> = Vec::new();
    let mut busy = 0f64;
    let mut overlapping = 0u64;
    let mut panels = 0usize;
    let mut error = None;
    let mut aborted = false;
    loop {
        if abort.load(Ordering::Relaxed) {
            // The orchestrator failed; whatever it recorded is the root
            // cause. Skip the coverage check — stopping short is the
            // point.
            aborted = true;
            break;
        }
        // One span per pull + validate; its duration *is* the report's
        // reader busy time (the final, empty pull included).
        let span = lane.begin("stream", "read-panel");
        let Some(item) = pairs.next() else {
            busy += lane.end(span);
            break;
        };
        let verdict = item.and_then(|pair| {
            validate_pair(&pair, covered, a_rows, inner_dim, b_cols).map(|()| pair)
        });
        busy += lane.end_with(span, &[("panel", panels as u64)]);
        if inflight.load(Ordering::Relaxed) > 0 {
            overlapping += 1;
        }
        let pair = match verdict {
            Ok(pair) => pair,
            Err(e) => {
                error = Some(e);
                break;
            }
        };
        covered = pair.range.end;
        panels += 1;
        if pair.a.nnz() == 0 {
            // An empty A panel's product is empty whatever B holds: it
            // is pruned here, deterministically, and never becomes a
            // merge leaf.
            continue;
        }
        let leaf = weights.len();
        weights.push(pair.a.nnz() as u64);
        // Count the job in flight *before* handing it over: a fast
        // worker could otherwise finish it — and the orchestrator
        // decrement — before this thread reached the increment,
        // wrapping the counter below zero and fabricating overlap.
        inflight.fetch_add(1, Ordering::Relaxed);
        if job_tx
            .send(MultiplyJob {
                leaf,
                a: pair.a,
                b: pair.b,
                live: pair.live,
            })
            .is_err()
        {
            // Workers are gone (a failure is already being reported
            // downstream); the job never entered the pipeline.
            inflight.fetch_sub(1, Ordering::Relaxed);
            break;
        }
    }
    if error.is_none() && !aborted && covered != inner_dim {
        error = Some(StreamError::Shape(format!(
            "panels cover only 0..{covered} of 0..{inner_dim}"
        )));
    }
    // Publish the plan weights *before* dropping the job sender: by the
    // time the multiply stage closes, the orchestrator is guaranteed to
    // find them.
    *weights_slot.lock().expect("weights slot poisoned") = Some(weights);
    drop(job_tx);
    ReaderOutcome {
        busy_seconds: busy,
        reads_overlapping_multiply: overlapping,
        panels,
        error,
    }
}

/// Shape/tiling validation for one incoming panel pair.
fn validate_pair(
    pair: &PanelPair,
    covered: usize,
    a_rows: usize,
    inner_dim: usize,
    b_cols: usize,
) -> Result<(), StreamError> {
    let range = &pair.range;
    if range.start != covered || range.end > inner_dim || range.end < range.start {
        return Err(StreamError::Shape(format!(
            "panel {range:?} does not tile 0..{inner_dim} (covered 0..{covered})"
        )));
    }
    if pair.a.rows() != a_rows || pair.a.cols() != range.len() {
        return Err(StreamError::Shape(format!(
            "A panel {range:?} has shape {}x{}, expected {a_rows}x{}",
            pair.a.rows(),
            pair.a.cols(),
            range.len()
        )));
    }
    if pair.b.rows() != range.len() || pair.b.cols() != b_cols {
        return Err(StreamError::Shape(format!(
            "B panel {range:?} has shape {}x{}, expected {}x{b_cols}",
            pair.b.rows(),
            pair.b.cols(),
            range.len()
        )));
    }
    Ok(())
}

/// One multiply worker: pulls jobs until the reader closes the channel,
/// multiplies, and publishes partials (with the time they took) into the
/// event queue, one permit per un-consumed result.
///
/// The worker owns one [`algo::MultiplyScratch`] for its whole lifetime
/// — the SPA arrays warm up on the first job and every later job of
/// comparable width runs allocation-free (the same per-worker reuse
/// discipline as [`merge_worker`]'s `MergeScratch`). Each job visits
/// only the occupied rows recorded at slicing time.
fn multiply_worker(
    job_rx: &SharedQueue<MultiplyJob>,
    evt_tx: &Sender<Event>,
    gate: &Permits,
    mut lane: ThreadRecorder,
) {
    let mut scratch = algo::MultiplyScratch::new();
    loop {
        let wait = lane.begin("stream", "claim-wait");
        let job = job_rx.claim();
        lane.end(wait);
        let Some(job) = job else { break };
        let reuses_before = scratch.reuses();
        // The whole-job span (kernel + publish-gate wait) is what the
        // report sums as multiply busy seconds; the nested spans split
        // the attribution.
        let job_span = lane.begin("stream", "multiply-job");
        let kernel_span = lane.begin("stream", "kernel");
        let partial = algo::gustavson_scratch_on_rows(&job.a, &job.b, &job.live, &mut scratch);
        let kernel_seconds = lane.end(kernel_span);
        let warm = scratch.reuses() > reuses_before;
        let gate_span = lane.begin("stream", "publish-wait");
        gate.acquire();
        lane.end(gate_span);
        let seconds = lane.end_with(
            job_span,
            &[("leaf", job.leaf as u64), ("nnz", partial.nnz() as u64)],
        );
        if evt_tx
            .send(Event::MultiplyDone {
                leaf: job.leaf,
                partial,
                seconds,
                kernel_seconds,
                warm,
            })
            .is_err()
        {
            gate.release();
            break;
        }
    }
}

/// One merge worker: pulls round jobs until the orchestrator closes the
/// channel, runs the k-way kernel (reusing its scratch lanes across
/// rounds), and reports the result.
fn merge_worker(
    round_rx: &SharedQueue<RoundJob>,
    evt_tx: &Sender<Event>,
    a_rows: usize,
    b_cols: usize,
    mut lane: ThreadRecorder,
) {
    let mut scratch = MergeScratch::new();
    loop {
        let wait = lane.begin("stream", "claim-wait");
        let job = round_rx.claim();
        lane.end(wait);
        let Some(job) = job else { break };
        let triples: u64 = job.sources.iter().map(|s| s.remaining_nnz() as u64).sum();
        let span = lane.begin("stream", "merge-round");
        let outcome = merge_sources(a_rows, b_cols, job.sources, &mut scratch);
        let kernel_seconds =
            lane.end_with(span, &[("round", job.round as u64), ("triples", triples)]);
        if evt_tx
            .send(Event::RoundDone {
                round: job.round,
                outcome,
                kernel_seconds,
                triples,
            })
            .is_err()
        {
            break;
        }
    }
}

/// The spill writer: encodes and writes each handed-off partial, then
/// reports the outcome (never blocking — the event channel is
/// unbounded), so the orchestrator keeps scheduling while spills land.
fn spill_writer(
    spill_rx: Receiver<SpillJob>,
    evt_tx: Sender<Event>,
    mut lane: ThreadRecorder,
    counters: SpillCounters,
) {
    while let Ok(SpillJob {
        id,
        path,
        csr,
        codec,
    }) = spill_rx.recv()
    {
        let raw = raw_size(&csr);
        let span = lane.begin("stream", "spill-write");
        let outcome = write_partial(&path, &csr, codec);
        let seconds = lane.end_with(
            span,
            &[
                ("node", id as u64),
                ("bytes", outcome.as_ref().map_or(0, |f| f.bytes)),
            ],
        );
        if let Ok(file) = &outcome {
            counters.files.incr();
            counters.bytes.add(file.bytes);
            counters.raw_bytes.add(raw);
        }
        let outcome = outcome.map(|file| (file, raw, seconds));
        // The partial's only copy dies here, before the completion is
        // announced — the store already stopped counting its bytes.
        drop(csr);
        if evt_tx.send(Event::SpillDone { id, outcome }).is_err() {
            break;
        }
    }
}

/// Spill-traffic counters the writer thread feeds (no-ops when tracing
/// is off; mirrored in `StreamReport`'s spill fields).
struct SpillCounters {
    files: Counter,
    bytes: Counter,
    raw_bytes: Counter,
}

/// Where a plan round stands in the orchestrator's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundState {
    Pending,
    InFlight,
    Done,
}

/// The orchestrator: owns the budgeted store, builds the Huffman plan as
/// soon as the reader publishes the weights, and dispatches every merge
/// round whose children are all available onto the merge workers —
/// several at once when the plan allows it.
struct MergeStage {
    store: PartialStore,
    a_rows: usize,
    b_cols: usize,
    ways: usize,
    /// Dispatch cap: rounds in flight never exceed the merge worker
    /// count (also the round channel's capacity, so sends never block).
    max_rounds_inflight: usize,
    plan: Option<MergePlan>,
    arrived: Vec<bool>,
    round_state: Vec<RoundState>,
    rounds_done: usize,
    rounds_inflight: usize,
    multiply_closed: bool,
    merge_closed: bool,
    result: Option<Csr>,
    partial_bytes_total: u64,
    largest_partial_bytes: u64,
    multiply_busy: f64,
    multiply_kernel_seconds: f64,
    multiply_scratch_reuses: u64,
    merge_busy: f64,
    merge_kernel_seconds: f64,
    merge_triples: u64,
    rounds_overlapping: u64,
    rounds_concurrent: u64,
    failure: Option<StreamError>,
    /// Span lane for orchestrator bookkeeping (`orchestrate` spans); the
    /// sum of those spans plus the merge workers' `merge-round` spans is
    /// exactly `merge_busy_seconds`.
    lane: ThreadRecorder,
}

impl MergeStage {
    fn new(
        store: PartialStore,
        a_rows: usize,
        b_cols: usize,
        ways: usize,
        max_rounds_inflight: usize,
        lane: ThreadRecorder,
    ) -> Self {
        MergeStage {
            store,
            a_rows,
            b_cols,
            ways,
            max_rounds_inflight: max_rounds_inflight.max(1),
            plan: None,
            arrived: Vec::new(),
            round_state: Vec::new(),
            rounds_done: 0,
            rounds_inflight: 0,
            multiply_closed: false,
            merge_closed: false,
            result: None,
            partial_bytes_total: 0,
            largest_partial_bytes: 0,
            multiply_busy: 0.0,
            multiply_kernel_seconds: 0.0,
            multiply_scratch_reuses: 0,
            merge_busy: 0.0,
            merge_kernel_seconds: 0.0,
            merge_triples: 0,
            rounds_overlapping: 0,
            rounds_concurrent: 0,
            failure: None,
            lane,
        }
    }

    /// Consumes stage events until the run is complete, interleaving
    /// store inserts and round dispatches. On failure it raises `abort`
    /// so the reader stops ingesting, then keeps draining so the other
    /// stages can always finish — no early return, no deadlock.
    fn run(&mut self, evt_rx: &Receiver<Event>, links: OrchestratorLinks<'_>) {
        while !self.finished() {
            let Ok(event) = evt_rx.recv() else {
                // Every producer died without announcing itself — a bug,
                // but one that must surface as an error, not a hang.
                if self.failure.is_none() {
                    self.failure =
                        Some(StreamError::Io("pipeline stages disconnected early".into()));
                }
                break;
            };
            self.handle(event, &links);
            if self.failure.is_some() {
                links.abort.store(true, Ordering::Relaxed);
            }
        }
        // Disconnect the merge workers (round_tx drops with `links`) and
        // the writer: both stages exit once their queues drain.
        self.store.remove_spill_sink();
    }

    fn handle(&mut self, event: Event, links: &OrchestratorLinks<'_>) {
        match event {
            Event::MultiplyDone {
                leaf,
                partial,
                seconds,
                kernel_seconds,
                warm,
            } => {
                links.inflight.fetch_sub(1, Ordering::Relaxed);
                links.gate.release();
                self.multiply_busy += seconds;
                self.multiply_kernel_seconds += kernel_seconds;
                self.multiply_scratch_reuses += u64::from(warm);
                if self.failure.is_some() {
                    return;
                }
                let span = self.lane.begin("stream", "orchestrate");
                self.insert_leaf(leaf, partial);
                self.try_build_plan(links.weights_slot);
                self.dispatch_rounds(links);
                self.merge_busy += self.lane.end(span);
            }
            Event::RoundDone {
                round,
                outcome,
                kernel_seconds,
                triples,
            } => {
                self.rounds_inflight -= 1;
                self.round_state[round] = RoundState::Done;
                self.rounds_done += 1;
                self.merge_kernel_seconds += kernel_seconds;
                self.merge_triples += triples;
                match outcome {
                    Ok(merged) if self.failure.is_none() => {
                        let span = self.lane.begin("stream", "orchestrate");
                        let (ids, output_id, is_final) = {
                            let plan = self.plan.as_ref().expect("a dispatched round has a plan");
                            let n = plan.num_leaves;
                            let ids: Vec<usize> = plan.rounds[round]
                                .children
                                .iter()
                                .map(|&c| node_id(c, n))
                                .collect();
                            (ids, n + round, round + 1 == plan.rounds.len())
                        };
                        for &id in &ids {
                            self.store.release(id);
                        }
                        if is_final {
                            self.result = Some(merged);
                        } else if let Err(e) = self.store.insert(output_id, merged) {
                            self.failure = Some(e);
                        }
                        if self.failure.is_none() {
                            self.dispatch_rounds(links);
                        }
                        self.merge_busy += self.lane.end(span);
                    }
                    // Failure already recorded — the round only needed
                    // accounting so the drain can terminate.
                    Ok(_) => {}
                    Err(e) => {
                        if self.failure.is_none() {
                            self.failure = Some(e);
                        }
                    }
                }
            }
            Event::SpillDone { id, outcome } => {
                match self.store.complete_spill(id, outcome) {
                    Err(e) => {
                        if self.failure.is_none() {
                            self.failure = Some(e);
                        }
                    }
                    Ok(()) if self.failure.is_none() => {
                        // A node just became available — rounds gated on
                        // its write-back may be dispatchable now.
                        let span = self.lane.begin("stream", "orchestrate");
                        self.dispatch_rounds(links);
                        self.merge_busy += self.lane.end(span);
                    }
                    Ok(()) => {}
                }
            }
            Event::MultiplyStageClosed => {
                self.multiply_closed = true;
                if self.failure.is_some() {
                    return;
                }
                let span = self.lane.begin("stream", "orchestrate");
                // Every MultiplyDone is queued ahead of this event, so
                // all leaves that will ever arrive have arrived; and the
                // reader published the weights before the stage could
                // close. Anything else is a lost stage.
                self.try_build_plan(links.weights_slot);
                match &self.plan {
                    None => {
                        self.failure = Some(StreamError::Io(
                            "reader stage ended without publishing merge-plan weights".into(),
                        ));
                    }
                    Some(_) if self.arrived.iter().any(|&a| !a) => {
                        self.failure = Some(StreamError::Io(
                            "multiply stage ended before every partial arrived".into(),
                        ));
                    }
                    Some(_) => self.dispatch_rounds(links),
                }
                self.merge_busy += self.lane.end(span);
            }
            Event::MergeStageClosed => {
                // Normally sent only after the orchestrator drops the
                // round channel — seeing it mid-run means the stage died
                // with rounds unaccounted for.
                self.merge_closed = true;
                if self.rounds_inflight > 0 && self.failure.is_none() {
                    self.failure = Some(StreamError::Io("merge worker stage ended early".into()));
                }
            }
        }
    }

    /// The run is complete when no more events can change the outcome:
    /// the multiply stage has closed, nothing is in flight, and (absent
    /// a failure) the plan has fully executed.
    fn finished(&self) -> bool {
        if !self.multiply_closed || self.store.spills_in_flight() > 0 {
            return false;
        }
        if self.failure.is_some() {
            return self.rounds_inflight == 0 || self.merge_closed;
        }
        match &self.plan {
            Some(plan) => self.rounds_done == plan.rounds.len() && self.rounds_inflight == 0,
            None => false,
        }
    }

    fn insert_leaf(&mut self, leaf: usize, partial: Csr) {
        let bytes = partial.estimated_bytes();
        self.partial_bytes_total += bytes;
        self.largest_partial_bytes = self.largest_partial_bytes.max(bytes);
        if self.arrived.len() <= leaf {
            self.arrived.resize(leaf + 1, false);
        }
        self.arrived[leaf] = true;
        if let Err(e) = self.store.insert(leaf, partial) {
            self.failure = Some(e);
        }
    }

    /// Builds the Huffman plan once the reader has published the leaf
    /// weights. The weights depend only on the panel split, so the plan
    /// — and with it the fold order — is identical at every thread
    /// count, budget and codec.
    fn try_build_plan(&mut self, weights_slot: &Mutex<Option<Vec<u64>>>) {
        if self.plan.is_some() {
            return;
        }
        let Some(weights) = weights_slot.lock().expect("weights slot poisoned").take() else {
            return;
        };
        let n = weights.len();
        if self.arrived.len() < n {
            self.arrived.resize(n, false);
        }
        let plan = huffman_plan(&weights, self.ways);
        let mut consumers = vec![usize::MAX; n + plan.rounds.len()];
        for (round, r) in plan.rounds.iter().enumerate() {
            for &child in &r.children {
                consumers[node_id(child, n)] = round;
            }
        }
        self.store.set_consumers(consumers);
        self.round_state = vec![RoundState::Pending; plan.rounds.len()];
        self.plan = Some(plan);
    }

    /// Dispatches every pending round whose children are all available,
    /// lowest round id first, until the in-flight cap is reached. Round
    /// children always reference earlier rounds, so one ascending scan
    /// per call suffices; later events re-scan as children land.
    fn dispatch_rounds(&mut self, links: &OrchestratorLinks<'_>) {
        let num_rounds = match &self.plan {
            Some(plan) => plan.rounds.len(),
            None => return,
        };
        let mut r = 0;
        while r < num_rounds
            && self.failure.is_none()
            && self.rounds_inflight < self.max_rounds_inflight
        {
            if self.round_state[r] != RoundState::Pending {
                r += 1;
                continue;
            }
            let ids = {
                let plan = self.plan.as_ref().expect("plan checked above");
                let n = plan.num_leaves;
                let round = &plan.rounds[r];
                let ready = round.children.iter().all(|&c| {
                    let produced = match c {
                        PlanNode::Leaf(l) => self.arrived[l],
                        PlanNode::Round(prev) => self.round_state[prev] == RoundState::Done,
                    };
                    // `available` is false while the node's spill
                    // write-back is still on the writer thread.
                    produced && self.store.available(node_id(c, n))
                });
                if ready {
                    Some(
                        round
                            .children
                            .iter()
                            .map(|&c| node_id(c, n))
                            .collect::<Vec<usize>>(),
                    )
                } else {
                    None
                }
            };
            let Some(ids) = ids else {
                r += 1;
                continue;
            };
            let mut sources = Vec::with_capacity(ids.len());
            for &id in &ids {
                match self.store.take(id) {
                    Ok(taken) => sources.push(PartialSource::from(taken)),
                    Err(e) => {
                        self.failure = Some(e);
                        return;
                    }
                }
            }
            if links.round_tx.send(RoundJob { round: r, sources }).is_err() {
                self.failure = Some(StreamError::Io("merge worker stage is gone".into()));
                return;
            }
            let multiplies = links.inflight.load(Ordering::Relaxed);
            if multiplies > 0 {
                self.rounds_overlapping += 1;
            }
            if multiplies > 0 || self.rounds_inflight > 0 {
                self.rounds_concurrent += 1;
            }
            self.round_state[r] = RoundState::InFlight;
            self.rounds_inflight += 1;
            r += 1;
        }
    }

    /// Resolves the run: reader errors win (they are the root cause),
    /// then orchestrator failures, then the degenerate zero- and
    /// one-leaf results.
    fn finish(mut self, reader: ReaderOutcome) -> Result<PipelineOutcome, StreamError> {
        if let Some(e) = reader.error {
            self.store.cleanup();
            return Err(e);
        }
        if let Some(e) = self.failure.take() {
            self.store.cleanup();
            return Err(e);
        }
        let plan = self.plan.take().expect("reader published the plan weights");
        let n = plan.num_leaves;
        let result = if n == 0 {
            Csr::zero(self.a_rows, self.b_cols)
        } else if n == 1 {
            match self.store.take_full(0) {
                Ok(csr) => csr,
                Err(e) => {
                    self.store.cleanup();
                    return Err(e);
                }
            }
        } else {
            debug_assert_eq!(self.rounds_done, plan.rounds.len());
            self.result
                .take()
                .expect("a multi-leaf plan ends in a final round")
        };
        let store_stats = self.store.stats().clone();
        self.store.cleanup();
        Ok(PipelineOutcome {
            result,
            panels: reader.panels,
            partials: n,
            merge_rounds: plan.rounds.len(),
            partial_bytes_total: self.partial_bytes_total,
            largest_partial_bytes: self.largest_partial_bytes,
            store_stats: store_stats.clone(),
            stages: StageReport {
                reader_busy_seconds: reader.busy_seconds,
                multiply_busy_seconds: self.multiply_busy,
                multiply_kernel_seconds: self.multiply_kernel_seconds,
                multiply_scratch_reuses: self.multiply_scratch_reuses,
                merge_busy_seconds: self.merge_busy + self.merge_kernel_seconds,
                merge_kernel_seconds: self.merge_kernel_seconds,
                spill_write_seconds: store_stats.spill_write_seconds,
                merge_triples: self.merge_triples,
                reads_overlapping_multiply: reader.reads_overlapping_multiply,
                rounds_overlapping_multiply: self.rounds_overlapping,
                rounds_merged_concurrently: self.rounds_concurrent,
                spill_writeback_offloaded: store_stats.spill_writeback_offloaded,
            },
        })
    }
}

/// Store/plan node id: leaves are `0..n`, round outputs `n + round`.
fn node_id(node: PlanNode, n: usize) -> usize {
    match node {
        PlanNode::Leaf(l) => l,
        PlanNode::Round(r) => n + r,
    }
}
