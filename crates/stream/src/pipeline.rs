//! The staged dataflow pipeline: reader → multiply → merge/spill.
//!
//! SpArch overlaps fetch with compute — the row prefetcher and the
//! condensed left matrix exist so the comparator array never stalls on
//! DRAM. The software pipeline mirrors that discipline with three
//! concurrently running stages connected by bounded channels:
//!
//! ```text
//!  reader thread          multiply workers           merge/spill stage
//!  (both operands,   ──▶  (ShardPool::scoped_   ──▶  (orchestrator
//!   panel by panel)  ch.   workers, gustavson    ch.   thread: store
//!                          per panel pair)             inserts, spill
//!                                                      writes, Huffman
//!                                                      merge rounds)
//! ```
//!
//! The reader streams panel *pairs* — `A[:, p]` plus the matching
//! `B[p, :]` — so neither operand is ever materialized whole; the
//! channel bound (`threads + 1` pairs) caps how much of either operand
//! is resident. Multiply workers pull pairs and push partials through a
//! second bounded channel (`threads` un-inserted partials at most), and
//! the merge/spill stage inserts each arrival into the budgeted
//! [`PartialStore`] — which is where spill write-back happens, off the
//! reader's and workers' critical paths — and executes merge rounds the
//! moment their children are available. Disk ingest, multiplies, spill
//! writes and merge rounds all overlap instead of alternating.
//!
//! **Determinism.** The Huffman plan's leaf weights are the per-panel
//! `A`-column non-zero counts, fixed by the panel split alone — known
//! the moment the reader finishes, *before* the last multiply lands, and
//! entirely independent of stage timing, thread count, budget or codec.
//! Rounds execute in plan order on the single merge thread, so the fold
//! order — and therefore every output bit — depends only on the plan,
//! never on which stage happened to run first. Arrival order can shift
//! *when* a partial is evicted (spill counters may vary across timings
//! at `threads > 1`), but never what any merge round computes.

use crate::merge::{merge_sources, PartialSource};
use crate::store::{PartialStore, StoreStats};
use crate::{StreamConfig, StreamError};
use serde::{Deserialize, Serialize};
use sparch_core::sched::{huffman_plan, MergePlan, PlanNode};
use sparch_exec::ShardPool;
use sparch_sparse::{algo, Csr};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Mutex;
use std::time::Instant;

/// One panel pair flowing from the reader into the multiply stage:
/// `A[:, range]` with localized columns and `B[range, :]` with localized
/// rows.
pub(crate) struct PanelPair {
    pub range: Range<usize>,
    pub a: Csr,
    pub b: Csr,
}

/// Per-stage busy time and overlap evidence for one pipelined multiply.
///
/// Busy seconds are summed per stage (multiply across all workers), so
/// they can exceed the wall clock — that excess *is* the overlap. The
/// two counters are direct evidence of pipelining: they count events
/// that are impossible in a phase-alternating executor.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageReport {
    /// Time the reader stage spent pulling + validating panel pairs.
    pub reader_busy_seconds: f64,
    /// Total worker time inside panel multiplies (summed over workers).
    pub multiply_busy_seconds: f64,
    /// Time the merge/spill stage spent inserting partials, writing
    /// spills and executing merge rounds.
    pub merge_busy_seconds: f64,
    /// The portion of `merge_busy_seconds` spent encoding + writing
    /// spill files.
    pub spill_write_seconds: f64,
    /// Panel reads that completed while ≥ 1 multiply was in flight —
    /// the reader ingesting while the compute stage holds unfinished
    /// work. "In flight" spans from the reader handing a pair to the
    /// multiply stage until the merge stage consumes the partial, so the
    /// counter measures *pipelining* (stages progressing with upstream
    /// work outstanding) rather than physical simultaneity, and is
    /// meaningful even on a single core. A phase-alternating executor
    /// scores 0 by construction.
    pub reads_overlapping_multiply: u64,
    /// Merge rounds executed while ≥ 1 multiply was in flight (same
    /// definition) — the merge stage folding while the compute stage
    /// still holds work.
    pub rounds_overlapping_multiply: u64,
}

/// What one pipeline run produced, before the executor folds it into its
/// public [`StreamReport`](crate::StreamReport).
pub(crate) struct PipelineOutcome {
    pub result: Csr,
    /// Panel pairs the reader validated (including all-empty `A` panels
    /// that never became merge leaves).
    pub panels: usize,
    /// Merge-plan leaves: panels whose `A` panel had any non-zeros.
    pub partials: usize,
    pub merge_rounds: usize,
    pub partial_bytes_total: u64,
    pub largest_partial_bytes: u64,
    pub store_stats: StoreStats,
    pub stages: StageReport,
}

/// A multiply job: one panel pair tagged with its merge-plan leaf id.
struct MultiplyJob {
    leaf: usize,
    a: Csr,
    b: Csr,
}

/// What the reader thread learned, returned through its join handle.
struct ReaderOutcome {
    busy_seconds: f64,
    reads_overlapping_multiply: u64,
    /// Panel pairs validated, including pruned all-empty `A` panels.
    panels: usize,
    error: Option<StreamError>,
}

/// Runs the staged pipeline over a stream of panel pairs.
///
/// `pairs` yields `(range, A-panel, B-panel)` items left to right; the
/// reader validates that ranges tile `0..inner_dim` and that panel
/// shapes agree with `a_rows`/`b_cols`. Iterator errors (e.g. a disk
/// reader failing mid-file) abort the run with that error.
pub(crate) fn run<I>(
    config: &StreamConfig,
    a_rows: usize,
    inner_dim: usize,
    b_cols: usize,
    pairs: I,
    spill_dir: PathBuf,
) -> Result<PipelineOutcome, StreamError>
where
    I: Iterator<Item = Result<PanelPair, StreamError>> + Send,
{
    let pool = ShardPool::with_override(config.threads);
    let ways = config.merge_ways.max(2);
    let store = PartialStore::new(config.budget, spill_dir, config.spill_codec);

    // Stage plumbing. Both channels are bounded — that is what makes the
    // pipeline's transient memory a constant factor of the panel size:
    // at most `threads + 1` pairs queued for multiply, at most `threads`
    // finished partials waiting for the merge/spill stage (plus one pair
    // in each worker's hands).
    let (job_tx, job_rx) = sync_channel::<MultiplyJob>(pool.threads() + 1);
    let (res_tx, res_rx) = sync_channel::<(usize, Csr, f64)>(pool.threads());
    // The job receiver and the prototype result sender live in Options
    // so the worker-stage thread can drop both once every worker is done
    // — even by panic. The result-channel disconnect is what ends the
    // merge stage's receive loop, and the job-channel disconnect is what
    // unblocks a reader mid-send; without the unconditional cleanup a
    // worker panic would wedge both instead of propagating at join.
    let job_rx = Mutex::new(Some(job_rx));
    let res_tx = Mutex::new(Some(res_tx));
    // Jobs in the submitted-to-consumed window (reader sent the pair,
    // merge stage has not yet received the partial); the overlap
    // counters sample this.
    let inflight = AtomicUsize::new(0);
    // Raised by the merge/spill stage on its first failure so the
    // reader stops ingesting promptly — a disk-full on the first spill
    // must not cost the whole remaining ingest + multiply bill.
    let abort = AtomicBool::new(false);
    // The reader publishes every leaf's weight here when it finishes —
    // the merge stage builds the Huffman plan from it mid-flight.
    let weights_slot: Mutex<Option<Vec<u64>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        let (weights_ref, inflight_ref, abort_ref) = (&weights_slot, &inflight, &abort);
        let reader = scope.spawn(move || {
            reader_stage(
                pairs,
                a_rows,
                inner_dim,
                b_cols,
                job_tx,
                weights_ref,
                inflight_ref,
                abort_ref,
            )
        });
        let workers = scope.spawn(|| {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.scoped_workers(|_| {
                    let tx = res_tx
                        .lock()
                        .expect("result sender poisoned")
                        .clone()
                        .expect("sender alive while workers run");
                    multiply_worker(&job_rx, &tx)
                });
            }));
            // Close both channel ends this stage owns, panic or not (see
            // the channel setup above).
            drop(res_tx.lock().unwrap_or_else(|e| e.into_inner()).take());
            drop(job_rx.lock().unwrap_or_else(|e| e.into_inner()).take());
            if let Err(panic) = outcome {
                std::panic::resume_unwind(panic);
            }
        });

        let mut merge = MergeStage::new(store, a_rows, b_cols, ways);
        merge.run(&res_rx, &weights_slot, &inflight, &abort);

        let reader = reader.join().expect("reader stage panicked");
        workers.join().expect("multiply worker panicked");
        merge.finish(reader)
    })
}

/// The reader stage: pulls panel pairs, validates tiling and shapes,
/// tags non-empty `A` panels with leaf ids and feeds them to the
/// multiply stage, then publishes the plan weights. Stops early when
/// the merge stage raises `abort` (its failure is the one reported).
#[allow(clippy::too_many_arguments)]
fn reader_stage<I>(
    mut pairs: I,
    a_rows: usize,
    inner_dim: usize,
    b_cols: usize,
    job_tx: SyncSender<MultiplyJob>,
    weights_slot: &Mutex<Option<Vec<u64>>>,
    inflight: &AtomicUsize,
    abort: &AtomicBool,
) -> ReaderOutcome
where
    I: Iterator<Item = Result<PanelPair, StreamError>> + Send,
{
    let mut covered = 0usize;
    let mut weights: Vec<u64> = Vec::new();
    let mut busy = 0f64;
    let mut overlapping = 0u64;
    let mut panels = 0usize;
    let mut error = None;
    let mut aborted = false;
    loop {
        if abort.load(Ordering::Relaxed) {
            // The merge stage failed; whatever it recorded is the root
            // cause. Skip the coverage check — stopping short is the
            // point.
            aborted = true;
            break;
        }
        let t0 = Instant::now();
        let Some(item) = pairs.next() else {
            busy += t0.elapsed().as_secs_f64();
            break;
        };
        let verdict = item.and_then(|pair| {
            validate_pair(&pair, covered, a_rows, inner_dim, b_cols).map(|()| pair)
        });
        busy += t0.elapsed().as_secs_f64();
        if inflight.load(Ordering::Relaxed) > 0 {
            overlapping += 1;
        }
        let pair = match verdict {
            Ok(pair) => pair,
            Err(e) => {
                error = Some(e);
                break;
            }
        };
        covered = pair.range.end;
        panels += 1;
        if pair.a.nnz() == 0 {
            // An empty A panel's product is empty whatever B holds: it
            // is pruned here, deterministically, and never becomes a
            // merge leaf.
            continue;
        }
        let leaf = weights.len();
        weights.push(pair.a.nnz() as u64);
        // Count the job in flight *before* handing it over: a fast
        // worker could otherwise finish it — and the merge stage
        // decrement — before this thread reached the increment,
        // wrapping the counter below zero and fabricating overlap.
        inflight.fetch_add(1, Ordering::Relaxed);
        if job_tx
            .send(MultiplyJob {
                leaf,
                a: pair.a,
                b: pair.b,
            })
            .is_err()
        {
            // Workers are gone (a failure is already being reported
            // downstream); the job never entered the pipeline.
            inflight.fetch_sub(1, Ordering::Relaxed);
            break;
        }
    }
    if error.is_none() && !aborted && covered != inner_dim {
        error = Some(StreamError::Shape(format!(
            "panels cover only 0..{covered} of 0..{inner_dim}"
        )));
    }
    // Publish the plan weights *before* dropping the job sender: by the
    // time the workers disconnect the result channel, the merge stage is
    // guaranteed to find them.
    *weights_slot.lock().expect("weights slot poisoned") = Some(weights);
    drop(job_tx);
    ReaderOutcome {
        busy_seconds: busy,
        reads_overlapping_multiply: overlapping,
        panels,
        error,
    }
}

/// Shape/tiling validation for one incoming panel pair.
fn validate_pair(
    pair: &PanelPair,
    covered: usize,
    a_rows: usize,
    inner_dim: usize,
    b_cols: usize,
) -> Result<(), StreamError> {
    let range = &pair.range;
    if range.start != covered || range.end > inner_dim || range.end < range.start {
        return Err(StreamError::Shape(format!(
            "panel {range:?} does not tile 0..{inner_dim} (covered 0..{covered})"
        )));
    }
    if pair.a.rows() != a_rows || pair.a.cols() != range.len() {
        return Err(StreamError::Shape(format!(
            "A panel {range:?} has shape {}x{}, expected {a_rows}x{}",
            pair.a.rows(),
            pair.a.cols(),
            range.len()
        )));
    }
    if pair.b.rows() != range.len() || pair.b.cols() != b_cols {
        return Err(StreamError::Shape(format!(
            "B panel {range:?} has shape {}x{}, expected {}x{b_cols}",
            pair.b.rows(),
            pair.b.cols(),
            range.len()
        )));
    }
    Ok(())
}

/// One multiply worker: pulls jobs until the reader closes the channel,
/// multiplies, and hands partials (with the time they took) downstream.
fn multiply_worker(
    job_rx: &Mutex<Option<Receiver<MultiplyJob>>>,
    res_tx: &SyncSender<(usize, Csr, f64)>,
) {
    loop {
        // The lock is held only for the claim (including any blocking
        // wait for the reader), never for the multiply itself — claiming
        // serializes, compute parallelizes.
        let claimed = {
            let guard = job_rx.lock().expect("job receiver poisoned");
            match guard.as_ref() {
                Some(rx) => rx.recv(),
                None => break,
            }
        };
        let job = match claimed {
            Ok(job) => job,
            Err(_) => break,
        };
        let t0 = Instant::now();
        let partial = algo::gustavson(&job.a, &job.b);
        let seconds = t0.elapsed().as_secs_f64();
        if res_tx.send((job.leaf, partial, seconds)).is_err() {
            break;
        }
    }
}

/// The merge/spill stage: owns the budgeted store, builds the Huffman
/// plan as soon as the reader publishes the weights, and executes merge
/// rounds the moment their children have all arrived.
struct MergeStage {
    store: PartialStore,
    a_rows: usize,
    b_cols: usize,
    ways: usize,
    plan: Option<MergePlan>,
    arrived: Vec<bool>,
    next_round: usize,
    result: Option<Csr>,
    partial_bytes_total: u64,
    largest_partial_bytes: u64,
    multiply_busy: f64,
    merge_busy: f64,
    rounds_overlapping: u64,
    failure: Option<StreamError>,
}

impl MergeStage {
    fn new(store: PartialStore, a_rows: usize, b_cols: usize, ways: usize) -> Self {
        MergeStage {
            store,
            a_rows,
            b_cols,
            ways,
            plan: None,
            arrived: Vec::new(),
            next_round: 0,
            result: None,
            partial_bytes_total: 0,
            largest_partial_bytes: 0,
            multiply_busy: 0.0,
            merge_busy: 0.0,
            rounds_overlapping: 0,
            failure: None,
        }
    }

    /// Consumes multiply results until every worker is done, interleaving
    /// store inserts (spill write-back included) and any merge rounds
    /// that become ready. On failure it raises `abort` so the reader
    /// stops ingesting, then keeps draining so the upstream stages can
    /// always finish — no early return, no deadlock.
    fn run(
        &mut self,
        res_rx: &Receiver<(usize, Csr, f64)>,
        weights_slot: &Mutex<Option<Vec<u64>>>,
        inflight: &AtomicUsize,
        abort: &AtomicBool,
    ) {
        while let Ok((leaf, partial, seconds)) = res_rx.recv() {
            inflight.fetch_sub(1, Ordering::Relaxed);
            self.multiply_busy += seconds;
            if self.failure.is_some() {
                continue;
            }
            let t0 = Instant::now();
            self.insert_leaf(leaf, partial);
            self.try_build_plan(weights_slot);
            self.advance_rounds(inflight);
            self.merge_busy += t0.elapsed().as_secs_f64();
            if self.failure.is_some() {
                abort.store(true, Ordering::Relaxed);
            }
        }
        // The last result can land before the reader publishes the
        // weights; the channel disconnect happens strictly after, so one
        // final attempt always sees them.
        if self.failure.is_none() {
            let t0 = Instant::now();
            self.try_build_plan(weights_slot);
            self.advance_rounds(inflight);
            self.merge_busy += t0.elapsed().as_secs_f64();
        }
    }

    fn insert_leaf(&mut self, leaf: usize, partial: Csr) {
        let bytes = partial.estimated_bytes();
        self.partial_bytes_total += bytes;
        self.largest_partial_bytes = self.largest_partial_bytes.max(bytes);
        if self.arrived.len() <= leaf {
            self.arrived.resize(leaf + 1, false);
        }
        self.arrived[leaf] = true;
        if let Err(e) = self.store.insert(leaf, partial) {
            self.failure = Some(e);
        }
    }

    /// Builds the Huffman plan once the reader has published the leaf
    /// weights. The weights depend only on the panel split, so the plan
    /// — and with it the fold order — is identical at every thread
    /// count, budget and codec.
    fn try_build_plan(&mut self, weights_slot: &Mutex<Option<Vec<u64>>>) {
        if self.plan.is_some() {
            return;
        }
        let Some(weights) = weights_slot.lock().expect("weights slot poisoned").take() else {
            return;
        };
        let n = weights.len();
        if self.arrived.len() < n {
            self.arrived.resize(n, false);
        }
        let plan = huffman_plan(&weights, self.ways);
        let mut consumers = vec![usize::MAX; n + plan.rounds.len()];
        for (round, r) in plan.rounds.iter().enumerate() {
            for &child in &r.children {
                consumers[node_id(child, n)] = round;
            }
        }
        self.store.set_consumers(consumers);
        self.plan = Some(plan);
    }

    /// Executes every merge round whose children are all present, in
    /// plan order. Round children always reference earlier rounds, so
    /// only leaf availability gates progress.
    fn advance_rounds(&mut self, inflight: &AtomicUsize) {
        loop {
            let Some(plan) = &self.plan else { return };
            if self.failure.is_some() || self.next_round >= plan.rounds.len() {
                return;
            }
            let round = &plan.rounds[self.next_round];
            let ready = round.children.iter().all(|&c| match c {
                PlanNode::Leaf(l) => self.arrived[l],
                PlanNode::Round(r) => r < self.next_round,
            });
            if !ready {
                return;
            }
            let n = plan.num_leaves;
            let ids: Vec<usize> = round.children.iter().map(|&c| node_id(c, n)).collect();
            let is_final = self.next_round + 1 == plan.rounds.len();
            if inflight.load(Ordering::Relaxed) > 0 {
                self.rounds_overlapping += 1;
            }
            match self.execute_round(&ids, is_final) {
                Ok(()) => self.next_round += 1,
                Err(e) => {
                    self.failure = Some(e);
                    return;
                }
            }
        }
    }

    fn execute_round(&mut self, ids: &[usize], is_final: bool) -> Result<(), StreamError> {
        let mut sources = Vec::with_capacity(ids.len());
        for &id in ids {
            sources.push(PartialSource::from(self.store.take(id)?));
        }
        let merged = merge_sources(self.a_rows, self.b_cols, sources)?;
        for &id in ids {
            self.store.release(id);
        }
        let n = self
            .plan
            .as_ref()
            .expect("plan exists in a round")
            .num_leaves;
        if is_final {
            self.result = Some(merged);
        } else {
            self.store.insert(n + self.next_round, merged)?;
        }
        Ok(())
    }

    /// Resolves the run: reader errors win (they are the root cause),
    /// then merge/spill failures, then the degenerate zero- and one-leaf
    /// results.
    fn finish(mut self, reader: ReaderOutcome) -> Result<PipelineOutcome, StreamError> {
        if let Some(e) = reader.error {
            self.store.cleanup();
            return Err(e);
        }
        if let Some(e) = self.failure.take() {
            self.store.cleanup();
            return Err(e);
        }
        let plan = self.plan.take().expect("reader published the plan weights");
        let n = plan.num_leaves;
        let result = if n == 0 {
            Csr::zero(self.a_rows, self.b_cols)
        } else if n == 1 {
            match self.store.take_full(0) {
                Ok(csr) => csr,
                Err(e) => {
                    self.store.cleanup();
                    return Err(e);
                }
            }
        } else {
            debug_assert_eq!(self.next_round, plan.rounds.len());
            self.result
                .take()
                .expect("a multi-leaf plan ends in a final round")
        };
        let store_stats = self.store.stats().clone();
        self.store.cleanup();
        Ok(PipelineOutcome {
            result,
            panels: reader.panels,
            partials: n,
            merge_rounds: plan.rounds.len(),
            partial_bytes_total: self.partial_bytes_total,
            largest_partial_bytes: self.largest_partial_bytes,
            store_stats: store_stats.clone(),
            stages: StageReport {
                reader_busy_seconds: reader.busy_seconds,
                multiply_busy_seconds: self.multiply_busy,
                merge_busy_seconds: self.merge_busy,
                spill_write_seconds: store_stats.spill_write_seconds,
                reads_overlapping_multiply: reader.reads_overlapping_multiply,
                rounds_overlapping_multiply: self.rounds_overlapping,
            },
        })
    }
}

/// Store/plan node id: leaves are `0..n`, round outputs `n + round`.
fn node_id(node: PlanNode, n: usize) -> usize {
    match node {
        PlanNode::Leaf(l) => l,
        PlanNode::Round(r) => n + r,
    }
}
