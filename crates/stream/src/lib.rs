//! Streaming out-of-core SpGEMM for the SpArch reproduction.
//!
//! SpArch's whole premise is doing outer-product SpGEMM under a *bounded
//! on-chip budget*: condense the left matrix, produce partial-product
//! matrices, and merge them in an order (the Huffman scheduler, §II-C)
//! that minimizes how many times partials round-trip through DRAM. The
//! software backends in `sparch_sparse::algo` have the opposite shape —
//! they materialize both operands and the whole output in RAM, so
//! matrices larger than memory are simply out of scope.
//!
//! This crate brings the paper's partial-matrix discipline to the
//! software layer as a **staged dataflow pipeline** — three concurrent
//! stages connected by bounded channels, so disk ingest, panel
//! multiplies, spill write-back and merge rounds overlap instead of
//! alternating (see the [`pipeline`-module](crate) docs for the stage
//! diagram). A [`StreamingExecutor`]:
//!
//! 1. **reader stage** — streams *both* operands panel pair by panel
//!    pair: `A`'s column panels and `B`'s matching row panels
//!    (`A · B = Σ_p A[:, p] · B[p, :]`), from memory, or from disk via
//!    `sparch_sparse::mm::{PanelReader, RowPanelReader}` so neither
//!    operand is ever materialized whole; boundaries come from the
//!    uniform or nnz-balanced splitter ([`PanelBalance`]),
//! 2. **multiply stage** — `sparch_exec::ShardPool` workers pull pairs
//!    from the bounded channel and multiply them while the reader keeps
//!    reading,
//! 3. **merge/spill stage** — folds arriving partials through a
//!    multi-round k-way merge whose round order comes from the **same**
//!    k-ary Huffman scheduler the cycle-level simulator uses
//!    (`sparch_core::sched::huffman_plan`, smallest first, weighted by
//!    per-panel `A` non-zeros), executing each round the moment its
//!    children are present — concurrently with the multiplies still in
//!    flight — and
//! 4. keeps the resident set of partials under an explicit
//!    [`MemoryBudget`]: partials that do not fit spill to a temp
//!    directory in a compact binary format — raw sorted COO or the
//!    delta+varint codec ([`SpillCodec`], [`spill`]-module docs) — and
//!    *stream* back in for their merge round — a spilled partial is
//!    consumed through a small read buffer, never re-materialized.
//!
//! The merged result is **bit-identical to `algo::gustavson`** for
//! exactly-representable arithmetic and structurally identical always
//! (same `row_ptr`/`col_idx`, including the repository-wide
//! keep-structural-zeros convention), at every budget, panel count,
//! thread count, spill codec and balance mode — the merge order depends
//! only on the Huffman plan, whose weights are fixed by the panel split
//! alone, never by stage timing or what happened to spill.
//! `crates/stream/tests/` pins this across the `gen::arb` grid and
//! audits the budget with a counting allocator.
//!
//! # Example
//!
//! ```
//! use sparch_stream::{MemoryBudget, StreamConfig, StreamingExecutor};
//! use sparch_sparse::{algo, gen};
//!
//! let a = gen::rmat_graph500(128, 6, 1);
//! let exec = StreamingExecutor::new(StreamConfig {
//!     budget: MemoryBudget::from_kb(64), // force the spill path
//!     panels: 6,
//!     ..StreamConfig::default()
//! });
//! let (c, report) = exec.multiply(&a, &a).unwrap();
//! assert!(c.approx_eq(&algo::gustavson(&a, &a), 1e-12));
//! assert!(report.peak_live_bytes <= report.budget_bytes);
//! ```

pub mod config;
pub mod executor;
pub mod merge;
mod pipeline;
pub mod spill;
mod store;
#[doc(hidden)]
pub mod tempdir;

pub use config::{MemoryBudget, PanelBalance, SpillCodec, StreamConfig};
pub use executor::{StageReport, StreamReport, StreamingExecutor};

use std::fmt;

/// Errors from the streaming pipeline.
///
/// Shape violations can only arrive through the panel-ingestion entry
/// point ([`StreamingExecutor::multiply_from_panels`]); the in-memory
/// entry point panics on incompatible operands exactly like the
/// `sparch_sparse::algo` kernels do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Spill-file or ingestion I/O failed (disk full, unwritable temp
    /// dir, truncated spill).
    Io(String),
    /// Ingested panels disagree with the declared operand shapes.
    Shape(String),
    /// An operand's panel stream failed while being read (e.g. a
    /// malformed `.mtx` discovered mid-pass); carries the source
    /// parser's message.
    Ingest(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(msg) => write!(f, "stream i/o error: {msg}"),
            StreamError::Shape(msg) => write!(f, "stream shape error: {msg}"),
            StreamError::Ingest(msg) => write!(f, "stream ingest error: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e.to_string())
    }
}

impl From<sparch_sparse::SparseError> for StreamError {
    fn from(e: sparch_sparse::SparseError) -> Self {
        StreamError::Ingest(e.to_string())
    }
}
