//! The memory-budgeted partial store.
//!
//! Between the multiply phase and each merge round, the pipeline's
//! partials live here. The store enforces the [`MemoryBudget`] as an
//! invariant — the bytes of resident (in-memory) partials never exceed
//! the budget, and `peak_live_bytes` records the high-water mark — by
//! spilling partials to disk via the [`spill`](crate::spill) format.
//!
//! Eviction order is the software twin of the paper's look-ahead idea:
//! once the Huffman merge plan is known, the store knows exactly when
//! every partial is consumed, so it evicts the one needed *farthest in
//! the future* (Bélády's optimal policy — the same principle as the
//! row prefetcher's replacement, §II-E). Before the plan exists (during
//! the multiply phase), it evicts the largest partial: the Huffman
//! scheduler merges smallest-first, so the largest partials are the ones
//! consumed last.

use crate::spill::{raw_size, write_partial, SpillFile, SpillReader};
use crate::{MemoryBudget, SpillCodec, StreamError};
use sparch_sparse::Csr;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::mpsc::SyncSender;

/// Running spill/residency telemetry, folded into the executor's report.
#[derive(Debug, Default, Clone)]
pub(crate) struct StoreStats {
    pub peak_live_bytes: u64,
    pub spill_writes: u64,
    pub spill_reads: u64,
    pub spill_bytes_written: u64,
    /// What the same spills would have cost in the raw format — the
    /// codec's savings denominator.
    pub spill_bytes_raw_equivalent: u64,
    /// Wall time spent encoding + writing spill files. With a writer
    /// thread installed this runs entirely off the orchestrator, so it
    /// overlaps every other stage.
    pub spill_write_seconds: f64,
    /// Spill writes handed to the dedicated writer thread instead of
    /// blocking the merge/spill orchestrator.
    pub spill_writeback_offloaded: u64,
}

/// One spill write handed to the dedicated writer thread: the partial to
/// encode plus where it goes. The store already un-counted its bytes —
/// the writer owns the only copy until the write completes.
#[derive(Debug)]
pub(crate) struct SpillJob {
    pub id: usize,
    pub path: PathBuf,
    pub csr: Csr,
    pub codec: SpillCodec,
}

/// One merge-round input, as handed to the k-way merge: either a resident
/// CSR (owned, its bytes still counted against the budget until the round
/// releases it) or a streaming reader over a spilled partial.
#[derive(Debug)]
pub(crate) enum Taken {
    Mem(Csr),
    Disk(SpillReader),
}

/// The budget-enforcing holding area for partial matrices, keyed by plan
/// node id (leaves `0..n`, round outputs `n + round`).
#[derive(Debug)]
pub(crate) struct PartialStore {
    budget: u64,
    spill_dir: PathBuf,
    codec: SpillCodec,
    dir_created: bool,
    resident: HashMap<usize, Csr>,
    spilled: HashMap<usize, SpillFile>,
    /// Bytes of partials currently counted as live: resident entries plus
    /// partials pinned by an in-flight merge round.
    live_bytes: u64,
    /// Bytes pinned per node by [`PartialStore::take`] until release.
    pinned: HashMap<usize, u64>,
    /// Spill files opened by `take`, deleted at release.
    pending_delete: HashMap<usize, PathBuf>,
    /// `consumers[node] = round that consumes it`, known once the merge
    /// plan is built; enables exact farthest-future-use eviction.
    consumers: Option<Vec<usize>>,
    /// Where spill writes go when write-back is offloaded to the writer
    /// thread; `None` writes inline (the seed behavior, kept for unit
    /// tests and as the no-pipeline fallback).
    sink: Option<SyncSender<SpillJob>>,
    /// Nodes whose spill write is in flight on the writer thread: not
    /// resident, not yet readable. [`PartialStore::available`] is false
    /// until [`PartialStore::complete_spill`] lands.
    spilling: HashSet<usize>,
    stats: StoreStats,
}

impl PartialStore {
    pub fn new(budget: MemoryBudget, spill_dir: PathBuf, codec: SpillCodec) -> Self {
        PartialStore {
            budget: budget.bytes(),
            spill_dir,
            codec,
            dir_created: false,
            resident: HashMap::new(),
            spilled: HashMap::new(),
            live_bytes: 0,
            pinned: HashMap::new(),
            pending_delete: HashMap::new(),
            consumers: None,
            sink: None,
            spilling: HashSet::new(),
            stats: StoreStats::default(),
        }
    }

    /// Installs the merge plan's consumption schedule, switching eviction
    /// from the largest-first heuristic to exact farthest-future-use.
    pub fn set_consumers(&mut self, consumers: Vec<usize>) {
        self.consumers = Some(consumers);
    }

    /// Routes spill writes through the dedicated writer thread from now
    /// on. The caller must feed every resulting [`SpillJob`] outcome back
    /// via [`PartialStore::complete_spill`].
    pub fn set_spill_sink(&mut self, sink: SyncSender<SpillJob>) {
        self.sink = Some(sink);
    }

    /// Drops the writer-thread sink (disconnecting the writer once the
    /// last in-flight job drains); later spills, if any, write inline.
    pub fn remove_spill_sink(&mut self) {
        self.sink = None;
    }

    /// Whether node `id` can be taken right now: resident, or spilled
    /// with the write completed. False while its write-back is still in
    /// flight on the writer thread.
    pub fn available(&self, id: usize) -> bool {
        self.resident.contains_key(&id) || self.spilled.contains_key(&id)
    }

    /// Spill writes currently in flight on the writer thread.
    pub fn spills_in_flight(&self) -> usize {
        self.spilling.len()
    }

    /// Records the writer thread's outcome for node `id`: on success the
    /// node becomes readable (and the byte/time counters land); an I/O
    /// failure is returned for the orchestrator to report.
    pub fn complete_spill(
        &mut self,
        id: usize,
        outcome: Result<(SpillFile, u64, f64), StreamError>,
    ) -> Result<(), StreamError> {
        assert!(self.spilling.remove(&id), "spill {id} was not in flight");
        let (file, raw_equivalent, seconds) = outcome?;
        self.stats.spill_bytes_written += file.bytes;
        self.stats.spill_bytes_raw_equivalent += raw_equivalent;
        self.stats.spill_write_seconds += seconds;
        self.spilled.insert(id, file);
        Ok(())
    }

    /// Accepts a freshly produced partial. If it does not fit alongside
    /// the current residents, other residents are evicted
    /// (farthest-future-use first); if it still does not fit — the
    /// budget is smaller than this single partial — it goes straight to
    /// disk and is never counted as live.
    pub fn insert(&mut self, id: usize, csr: Csr) -> Result<(), StreamError> {
        let bytes = csr.estimated_bytes();
        while self.live_bytes.saturating_add(bytes) > self.budget {
            if !self.evict_one()? {
                break;
            }
        }
        if self.live_bytes.saturating_add(bytes) > self.budget {
            self.spill(id, csr)?;
            return Ok(());
        }
        self.resident.insert(id, csr);
        self.live_bytes += bytes;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.live_bytes);
        Ok(())
    }

    /// Opens node `id` for a merge round. Resident partials stay counted
    /// against the budget (they remain in memory while the round runs);
    /// spilled partials come back as a bounded-buffer streaming reader.
    pub fn take(&mut self, id: usize) -> Result<Taken, StreamError> {
        debug_assert!(
            !self.spilling.contains(&id),
            "partial {id} taken while its spill write is in flight"
        );
        if let Some(csr) = self.resident.remove(&id) {
            self.pinned.insert(id, csr.estimated_bytes());
            return Ok(Taken::Mem(csr));
        }
        let file = self
            .spilled
            .remove(&id)
            .unwrap_or_else(|| panic!("partial {id} neither resident nor spilled"));
        self.stats.spill_reads += 1;
        let reader = SpillReader::open(&file.path)?;
        self.pending_delete.insert(id, file.path);
        Ok(Taken::Disk(reader))
    }

    /// Marks node `id` fully consumed: un-counts pinned bytes and deletes
    /// its spill file.
    pub fn release(&mut self, id: usize) {
        if let Some(bytes) = self.pinned.remove(&id) {
            self.live_bytes -= bytes;
        }
        if let Some(path) = self.pending_delete.remove(&id) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Fully materializes node `id` — used only when a lone partial *is*
    /// the final result.
    pub fn take_full(&mut self, id: usize) -> Result<Csr, StreamError> {
        match self.take(id)? {
            Taken::Mem(csr) => {
                self.release(id);
                Ok(csr)
            }
            Taken::Disk(reader) => {
                let csr = reader.read_all()?;
                self.release(id);
                Ok(csr)
            }
        }
    }

    /// Spill/residency counters accumulated so far.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Removes the run's spill directory (best-effort; spill files are
    /// deleted as they are consumed, so this normally just removes an
    /// empty directory).
    pub fn cleanup(&mut self) {
        if self.dir_created {
            let _ = std::fs::remove_dir_all(&self.spill_dir);
            self.dir_created = false;
        }
    }

    /// Evicts one resident partial to disk. Returns `false` when nothing
    /// is evictable (only pinned partials remain live).
    fn evict_one(&mut self) -> Result<bool, StreamError> {
        // Farthest future use when the plan is known; largest-first
        // before that. Ties break toward the smallest id — fully
        // deterministic either way.
        let victim = match &self.consumers {
            Some(consumers) => self
                .resident
                .iter()
                .map(|(&id, csr)| (consumers[id], csr.estimated_bytes(), id))
                .max_by_key(|&(round, bytes, id)| (round, bytes, std::cmp::Reverse(id)))
                .map(|(_, _, id)| id),
            None => self
                .resident
                .iter()
                .map(|(&id, csr)| (csr.estimated_bytes(), id))
                .max_by_key(|&(bytes, id)| (bytes, std::cmp::Reverse(id)))
                .map(|(_, id)| id),
        };
        let Some(id) = victim else {
            return Ok(false);
        };
        let csr = self.resident.remove(&id).expect("victim is resident");
        self.live_bytes -= csr.estimated_bytes();
        self.spill(id, csr)?;
        Ok(true)
    }

    /// Writes node `id` out — through the writer thread when a sink is
    /// installed (the partial's bytes travel with the job and are no
    /// longer the store's), inline otherwise.
    fn spill(&mut self, id: usize, csr: Csr) -> Result<(), StreamError> {
        if !self.dir_created {
            std::fs::create_dir_all(&self.spill_dir).map_err(|e| {
                StreamError::Io(format!(
                    "failed to create spill dir {}: {e}",
                    self.spill_dir.display()
                ))
            })?;
            self.dir_created = true;
        }
        let path = self.spill_dir.join(format!("partial-{id}.bin"));
        self.stats.spill_writes += 1;
        if let Some(sink) = self.sink.clone() {
            let codec = self.codec;
            sink.send(SpillJob {
                id,
                path,
                csr,
                codec,
            })
            .map_err(|_| StreamError::Io("spill writer thread is gone".into()))?;
            self.spilling.insert(id);
            self.stats.spill_writeback_offloaded += 1;
            return Ok(());
        }
        let t0 = std::time::Instant::now();
        let raw = raw_size(&csr);
        let file = write_partial(&path, &csr, self.codec)?;
        self.stats.spill_bytes_written += file.bytes;
        self.stats.spill_bytes_raw_equivalent += raw;
        self.stats.spill_write_seconds += t0.elapsed().as_secs_f64();
        self.spilled.insert(id, file);
        Ok(())
    }
}

impl Drop for PartialStore {
    fn drop(&mut self) {
        // Error paths may leave spill files behind; sweep them with the
        // directory.
        self.cleanup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparch_sparse::gen;

    fn dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sparch_store_{tag}_{}", std::process::id()))
    }

    fn partial(seed: u64) -> Csr {
        gen::uniform_random(16, 16, 64, seed)
    }

    #[test]
    fn unbounded_budget_never_spills() {
        let mut store =
            PartialStore::new(MemoryBudget::unbounded(), dir("nospill"), SpillCodec::Raw);
        for id in 0..4 {
            store.insert(id, partial(id as u64)).unwrap();
        }
        assert_eq!(store.stats().spill_writes, 0);
        assert!(store.stats().peak_live_bytes > 0);
        for id in 0..4 {
            assert!(matches!(store.take(id).unwrap(), Taken::Mem(_)));
            store.release(id);
        }
    }

    #[test]
    fn zero_budget_spills_everything_and_streams_back() {
        let mut store = PartialStore::new(
            MemoryBudget::from_bytes(0),
            dir("allspill"),
            SpillCodec::Raw,
        );
        let originals: Vec<Csr> = (0..3).map(|s| partial(s as u64)).collect();
        for (id, p) in originals.iter().enumerate() {
            store.insert(id, p.clone()).unwrap();
        }
        assert_eq!(store.stats().spill_writes, 3);
        assert_eq!(store.stats().peak_live_bytes, 0);
        for (id, p) in originals.iter().enumerate() {
            match store.take(id).unwrap() {
                Taken::Disk(reader) => assert_eq!(&reader.read_all().unwrap(), p),
                Taken::Mem(_) => panic!("partial {id} should have spilled"),
            }
            store.release(id);
        }
        assert_eq!(store.stats().spill_reads, 3);
        store.cleanup();
    }

    #[test]
    fn budget_is_a_live_bytes_invariant() {
        // Budget fits roughly two partials; the third insert must evict.
        let p = partial(1);
        let budget = MemoryBudget::from_bytes(p.estimated_bytes() * 2 + 16);
        let mut store = PartialStore::new(budget, dir("invariant"), SpillCodec::Raw);
        for id in 0..5 {
            store.insert(id, partial(id as u64)).unwrap();
            assert!(
                store.stats().peak_live_bytes <= budget.bytes(),
                "budget exceeded after insert {id}"
            );
        }
        assert!(store.stats().spill_writes >= 3);
        store.cleanup();
    }

    #[test]
    fn consumers_schedule_evicts_farthest_use_first() {
        let p = partial(7);
        let budget = MemoryBudget::from_bytes(p.estimated_bytes() * 2 + 16);
        let mut store = PartialStore::new(budget, dir("belady"), SpillCodec::Raw);
        // Node 0 is consumed last (round 9), node 1 soon (round 0).
        store.set_consumers(vec![9, 0, 1, 2]);
        store.insert(0, partial(10)).unwrap();
        store.insert(1, partial(11)).unwrap();
        store.insert(2, partial(12)).unwrap(); // must evict node 0
        assert!(matches!(store.take(1).unwrap(), Taken::Mem(_)));
        store.release(1);
        assert!(matches!(store.take(2).unwrap(), Taken::Mem(_)));
        store.release(2);
        assert!(matches!(store.take(0).unwrap(), Taken::Disk(_)));
        store.release(0);
        store.cleanup();
    }

    #[test]
    fn take_full_round_trips_both_paths() {
        let p = partial(3);
        let mut resident =
            PartialStore::new(MemoryBudget::unbounded(), dir("full_mem"), SpillCodec::Raw);
        resident.insert(0, p.clone()).unwrap();
        assert_eq!(resident.take_full(0).unwrap(), p);
        let mut spilly = PartialStore::new(
            MemoryBudget::from_bytes(0),
            dir("full_disk"),
            SpillCodec::Raw,
        );
        spilly.insert(0, p.clone()).unwrap();
        assert_eq!(spilly.take_full(0).unwrap(), p);
        spilly.cleanup();
    }

    #[test]
    fn cleanup_removes_the_spill_directory() {
        let d = dir("cleanup");
        let mut store = PartialStore::new(MemoryBudget::from_bytes(0), d.clone(), SpillCodec::Raw);
        store.insert(0, partial(1)).unwrap();
        assert!(d.exists());
        store.take_full(0).unwrap();
        store.cleanup();
        assert!(!d.exists());
    }
}
