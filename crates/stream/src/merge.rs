//! Streaming k-way merge of partial matrices.
//!
//! Each merge round consumes up to `ways` partials — resident CSRs or
//! spilled-partial readers — as sorted `(row, col)` streams and folds
//! them into one partial, summing duplicate coordinates. This is the
//! software analogue of the paper's comparator-array merge tree: the
//! inputs are sorted COO streams, the output is a sorted COO stream, and
//! entries that fold to zero are **kept** (zero elimination is a
//! separate, explicit stage everywhere in this repository).
//!
//! Determinism: for one set of sources the fold order is fixed — heap
//! order by `(row, col)` with ties broken by source position, and source
//! positions come from the Huffman plan — so the merged values are
//! bit-identical regardless of which sources happened to spill and how
//! many threads produced them.

use crate::spill::SpillReader;
use crate::store::Taken;
use crate::StreamError;
use sparch_sparse::{Csr, CsrBuilder, Triple};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One sorted input stream of a merge round.
#[derive(Debug)]
pub(crate) enum PartialSource {
    /// A resident partial, iterated in place.
    Mem { csr: Csr, row: usize, pos: usize },
    /// A spilled partial, streamed through a bounded buffer.
    Disk(SpillReader),
}

impl From<Taken> for PartialSource {
    fn from(taken: Taken) -> Self {
        match taken {
            Taken::Mem(csr) => PartialSource::Mem {
                csr,
                row: 0,
                pos: 0,
            },
            Taken::Disk(reader) => PartialSource::Disk(reader),
        }
    }
}

impl PartialSource {
    /// The next `(row, col, value)` in row-major order, or `None`.
    fn next_triple(&mut self) -> Result<Option<Triple>, StreamError> {
        match self {
            PartialSource::Mem { csr, row, pos } => {
                if *pos >= csr.nnz() {
                    return Ok(None);
                }
                while csr.row_ptr()[*row + 1] <= *pos {
                    *row += 1;
                }
                let t = (*row as u32, csr.col_indices()[*pos], csr.values()[*pos]);
                *pos += 1;
                Ok(Some(t))
            }
            PartialSource::Disk(reader) => reader.next_triple(),
        }
    }
}

/// Merges sorted partial streams into one `rows × cols` partial, folding
/// duplicate coordinates by addition (explicit zeros kept).
pub(crate) fn merge_sources(
    rows: usize,
    cols: usize,
    mut sources: Vec<PartialSource>,
) -> Result<Csr, StreamError> {
    let mut out = CsrBuilder::new(rows, cols);
    // Heap keys are (row, col, source-index): coordinate order first, and
    // within one coordinate the plan's child order — a fixed, documented
    // fold order.
    let mut heap: BinaryHeap<Reverse<(u32, u32, usize)>> = BinaryHeap::with_capacity(sources.len());
    let mut heads: Vec<Option<Triple>> = Vec::with_capacity(sources.len());
    for (s, src) in sources.iter_mut().enumerate() {
        let head = src.next_triple()?;
        if let Some((r, c, _)) = head {
            heap.push(Reverse((r, c, s)));
        }
        heads.push(head);
    }

    let mut acc: Option<Triple> = None;
    while let Some(Reverse((r, c, s))) = heap.pop() {
        let (_, _, v) = heads[s].take().expect("head present for heap entry");
        acc = match acc {
            Some((ar, ac, av)) if (ar, ac) == (r, c) => Some((ar, ac, av + v)),
            Some((ar, ac, av)) => {
                out.push(ar, ac, av);
                Some((r, c, v))
            }
            None => Some((r, c, v)),
        };
        let next = sources[s].next_triple()?;
        if let Some((nr, nc, _)) = next {
            heap.push(Reverse((nr, nc, s)));
        }
        heads[s] = next;
    }
    if let Some((r, c, v)) = acc {
        out.push(r, c, v);
    }
    Ok(out.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::write_partial;
    use sparch_sparse::{algo, gen, linalg};
    use std::path::PathBuf;

    fn mem(csr: Csr) -> PartialSource {
        PartialSource::Mem {
            csr,
            row: 0,
            pos: 0,
        }
    }

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sparch_merge_{tag}_{}.bin", std::process::id()))
    }

    /// Element-wise sum oracle via repeated linalg addition on dense.
    fn sum_oracle(parts: &[Csr]) -> Csr {
        let mut acc = parts[0].clone();
        for p in &parts[1..] {
            acc = linalg::add(&acc, p);
        }
        acc
    }

    #[test]
    fn merges_mem_sources_like_matrix_addition() {
        let parts: Vec<Csr> = (0..3)
            .map(|s| gen::uniform_random(12, 14, 40, s as u64))
            .collect();
        let merged = merge_sources(12, 14, parts.iter().cloned().map(mem).collect()).unwrap();
        assert_eq!(merged, sum_oracle(&parts));
    }

    #[test]
    fn disk_and_mem_sources_merge_identically() {
        let parts: Vec<Csr> = (0..4)
            .map(|s| gen::uniform_random(10, 10, 30, 50 + s as u64))
            .collect();
        let all_mem = merge_sources(10, 10, parts.iter().cloned().map(mem).collect()).unwrap();
        // Spill sources 1 and 3 to disk.
        let mut mixed = Vec::new();
        let mut files = Vec::new();
        for (s, p) in parts.iter().enumerate() {
            if s % 2 == 1 {
                let path = temp(&format!("mixed{s}"));
                write_partial(&path, p, crate::SpillCodec::Varint).unwrap();
                mixed.push(PartialSource::Disk(SpillReader::open(&path).unwrap()));
                files.push(path);
            } else {
                mixed.push(mem(p.clone()));
            }
        }
        let merged = merge_sources(10, 10, mixed).unwrap();
        assert_eq!(merged, all_mem);
        for f in files {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn folded_zeros_are_kept() {
        let a = Csr::try_new(1, 2, vec![0, 2], vec![0, 1], vec![2.0, 1.0]).unwrap();
        let b = Csr::try_new(1, 2, vec![0, 1], vec![0], vec![-2.0]).unwrap();
        let merged = merge_sources(1, 2, vec![mem(a), mem(b)]).unwrap();
        assert_eq!(merged.nnz(), 2, "cancelled entry must stay structural");
        assert_eq!(merged.get(0, 0), Some(0.0));
        assert_eq!(merged.get(0, 1), Some(1.0));
    }

    #[test]
    fn single_and_empty_sources() {
        let m = gen::uniform_random(6, 6, 12, 3);
        assert_eq!(merge_sources(6, 6, vec![mem(m.clone())]).unwrap(), m);
        let empty = merge_sources(6, 6, vec![]).unwrap();
        assert_eq!(empty.nnz(), 0);
        assert_eq!((empty.rows(), empty.cols()), (6, 6));
        let with_zero = merge_sources(6, 6, vec![mem(m.clone()), mem(Csr::zero(6, 6))]).unwrap();
        assert_eq!(with_zero, m);
    }

    #[test]
    fn panel_partials_reassemble_the_product() {
        // The real use: partials of A[:, p] · B[p, :] merge to A · B.
        let a = gen::rmat_graph500(40, 4, 2);
        let b = gen::uniform_random(40, 32, 200, 3);
        let parts: Vec<Csr> = sparch_sparse::panel_ranges(a.cols(), 5)
            .into_iter()
            .map(|r| algo::gustavson(&a.col_panel(r.clone()), &b.row_panel(r)))
            .filter(|p| p.nnz() > 0)
            .collect();
        let merged = merge_sources(40, 32, parts.into_iter().map(mem).collect()).unwrap();
        assert_eq!(merged, algo::gustavson(&a, &b));
    }
}
