//! Streaming k-way merge of partial matrices.
//!
//! Each merge round consumes up to `ways` partials — resident CSRs or
//! spilled-partial readers — as sorted `(row, col)` streams and folds
//! them into one partial, summing duplicate coordinates. This is the
//! software analogue of the paper's comparator-array merge tree: the
//! inputs are sorted COO streams, the output is a sorted COO stream, and
//! entries that fold to zero are **kept** (zero elimination is a
//! separate, explicit stage everywhere in this repository).
//!
//! The kernel is built for throughput, mirroring how the paper's merger
//! is a wide comparator array rather than a one-comparator heap:
//!
//! * **Chunked sources.** [`PartialSource::next_chunk`] decodes sources
//!   in batches into reused scratch columns — packed
//!   `(row << 32) | col` keys plus values — so the inner merge loop
//!   compares single `u64`s and never touches the decoder. Spilled
//!   partials batch-decode whole buffered spans (branch-free LEB128 in
//!   `spill.rs`); resident CSRs are walked with the row scan amortized
//!   per chunk instead of per triple.
//! * **Loser tree.** The k-way fold replaces the seed's `BinaryHeap` +
//!   `Option` accumulator with a tournament (loser) tree: advancing the
//!   winner replays exactly one root-to-leaf path — `log₂ k` branchless
//!   comparisons, no sift-down, no per-triple allocation.
//! * **Galloping two-way fast path.** `ways == 2` rounds (the most
//!   common plan shape) skip the tree entirely: two cursors, with runs
//!   of non-overlapping keys located by exponential-then-binary search
//!   and copied out in bulk.
//! * **Pre-sized output.** `merge_sources` pre-sizes its [`CsrBuilder`]
//!   from the summed source nnz (an exact upper bound), so the output
//!   never reallocates mid-merge.
//!
//! Determinism: for one set of sources the fold order is fixed — key
//! order by `(row, col)` with ties broken by source position, and source
//! positions come from the Huffman plan — so the merged values are
//! bit-identical regardless of which sources happened to spill and how
//! many threads produced them. The seed heap kernel is kept as
//! [`merge_sources_reference`] and a differential suite pins the two to
//! byte-equal outputs.

use crate::spill::SpillReader;
use crate::store::Taken;
use crate::StreamError;
use sparch_sparse::{Csr, CsrBuilder, Index, Triple};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Entries decoded per [`PartialSource::next_chunk`] call: 16 KiB of
/// scratch per lane (8 B key + 8 B value), small enough that a full
/// merge fan-in stays well under the allocator-audited slack, large
/// enough to amortize decode and refill overhead.
const CHUNK_ENTRIES: usize = 1024;

/// One sorted input stream of a merge round.
#[derive(Debug)]
pub struct PartialSource(Inner);

#[derive(Debug)]
enum Inner {
    /// A resident partial, iterated in place.
    Mem { csr: Csr, row: usize, pos: usize },
    /// A spilled partial, streamed through a bounded buffer.
    Disk(SpillReader),
}

impl From<Taken> for PartialSource {
    fn from(taken: Taken) -> Self {
        match taken {
            Taken::Mem(csr) => PartialSource::from_csr(csr),
            Taken::Disk(reader) => PartialSource::from_spill(reader),
        }
    }
}

impl PartialSource {
    /// A source over a resident CSR.
    pub fn from_csr(csr: Csr) -> Self {
        PartialSource(Inner::Mem {
            csr,
            row: 0,
            pos: 0,
        })
    }

    /// A source streaming a spilled partial back from disk.
    pub fn from_spill(reader: SpillReader) -> Self {
        PartialSource(Inner::Disk(reader))
    }

    /// Entries this source has not yet produced — the exact residual
    /// nnz, used to pre-size merge outputs.
    pub fn remaining_nnz(&self) -> usize {
        match &self.0 {
            Inner::Mem { csr, pos, .. } => csr.nnz() - pos,
            Inner::Disk(reader) => reader.remaining() as usize,
        }
    }

    /// The next `(row, col, value)` in row-major order, or `None` — the
    /// per-triple path, used by [`merge_sources_reference`].
    fn next_triple(&mut self) -> Result<Option<Triple>, StreamError> {
        match &mut self.0 {
            Inner::Mem { csr, row, pos } => {
                if *pos >= csr.nnz() {
                    return Ok(None);
                }
                while csr.row_ptr()[*row + 1] <= *pos {
                    *row += 1;
                }
                let t = (*row as u32, csr.col_indices()[*pos], csr.values()[*pos]);
                *pos += 1;
                Ok(Some(t))
            }
            Inner::Disk(reader) => reader.next_triple(),
        }
    }

    /// Decodes up to `max` entries into the caller's scratch columns —
    /// packed `(row << 32) | col` keys plus values — returning how many
    /// were produced (0 only when the source is exhausted). Resident
    /// CSRs amortize the row scan across the chunk; spilled partials
    /// batch-decode through [`SpillReader::next_chunk`].
    pub fn next_chunk(
        &mut self,
        max: usize,
        keys: &mut Vec<u64>,
        vals: &mut Vec<f64>,
    ) -> Result<usize, StreamError> {
        match &mut self.0 {
            Inner::Mem { csr, row, pos } => {
                keys.clear();
                vals.clear();
                let end = pos.saturating_add(max).min(csr.nnz());
                let rp = csr.row_ptr();
                let ci = csr.col_indices();
                let vs = csr.values();
                let mut p = *pos;
                let mut r = *row;
                while p < end {
                    while rp[r + 1] <= p {
                        r += 1;
                    }
                    let stop = rp[r + 1].min(end);
                    let hi = (r as u64) << 32;
                    for j in p..stop {
                        keys.push(hi | ci[j] as u64);
                        vals.push(vs[j]);
                    }
                    p = stop;
                }
                let n = p - *pos;
                *pos = p;
                *row = r;
                Ok(n)
            }
            Inner::Disk(reader) => reader.next_chunk(max, keys, vals),
        }
    }
}

/// One source's decode lane: reused key/value columns plus a cursor.
#[derive(Debug, Default)]
struct Lane {
    keys: Vec<u64>,
    vals: Vec<f64>,
    pos: usize,
}

/// Reusable per-worker scratch for [`merge_sources`]: one decode lane
/// per merge way, kept allocated across rounds so steady-state merging
/// never touches the allocator for scratch.
#[derive(Debug, Default)]
pub struct MergeScratch {
    lanes: Vec<Lane>,
}

impl MergeScratch {
    /// An empty scratch; lanes grow on first use and are then reused.
    pub fn new() -> Self {
        MergeScratch::default()
    }

    fn reset(&mut self, ways: usize) {
        if self.lanes.len() < ways {
            self.lanes.resize_with(ways, Lane::default);
        }
        for lane in &mut self.lanes[..ways] {
            lane.keys.clear();
            lane.vals.clear();
            lane.pos = 0;
        }
    }
}

/// Refills `lane` from `src`; `false` means the source is exhausted.
fn refill(src: &mut PartialSource, lane: &mut Lane) -> Result<bool, StreamError> {
    lane.pos = 0;
    Ok(src.next_chunk(CHUNK_ENTRIES, &mut lane.keys, &mut lane.vals)? > 0)
}

/// Unpacks a key and appends the entry; keys arrive strictly increasing
/// by construction, so this takes the trusted fast path.
fn emit(out: &mut CsrBuilder, key: u64, val: f64) {
    out.push_trusted((key >> 32) as Index, key as u32, val);
}

/// Entries at the front of `keys` strictly below `limit`, found by
/// exponential probe + binary search. `keys[0] < limit` must hold.
fn gallop(keys: &[u64], limit: u64) -> usize {
    debug_assert!(!keys.is_empty() && keys[0] < limit);
    let mut hi = 1usize;
    while hi < keys.len() && keys[hi] < limit {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(keys.len());
    lo + keys[lo..hi].partition_point(|&k| k < limit)
}

/// Merges sorted partial streams into one `rows × cols` partial, folding
/// duplicate coordinates by addition (explicit zeros kept). The output
/// builder is pre-sized from the summed source nnz, an exact upper
/// bound, so it never reallocates mid-merge.
pub fn merge_sources(
    rows: usize,
    cols: usize,
    mut sources: Vec<PartialSource>,
    scratch: &mut MergeScratch,
) -> Result<Csr, StreamError> {
    let total: usize = sources.iter().map(PartialSource::remaining_nnz).sum();
    let mut out = CsrBuilder::with_capacity(rows, cols, total);
    scratch.reset(sources.len());
    match sources.len() {
        0 => {}
        1 => drain_single(&mut sources[0], &mut scratch.lanes[0], &mut out)?,
        2 => merge_two(&mut sources, scratch, &mut out)?,
        _ => merge_k(&mut sources, scratch, &mut out)?,
    }
    Ok(out.finish())
}

/// A one-source "merge" is a straight chunked copy.
fn drain_single(
    src: &mut PartialSource,
    lane: &mut Lane,
    out: &mut CsrBuilder,
) -> Result<(), StreamError> {
    while refill(src, lane)? {
        for (&k, &v) in lane.keys.iter().zip(&lane.vals) {
            emit(out, k, v);
        }
    }
    Ok(())
}

/// The galloping two-way fast path: coordinates unique within each
/// source, so a collision folds exactly two values (source 0 first,
/// matching the reference heap's tie-break) and disjoint runs copy out
/// in bulk without an accumulator.
fn merge_two(
    sources: &mut [PartialSource],
    scratch: &mut MergeScratch,
    out: &mut CsrBuilder,
) -> Result<(), StreamError> {
    let (src0, src1) = sources.split_at_mut(1);
    let (src0, src1) = (&mut src0[0], &mut src1[0]);
    let (l0, l1) = scratch.lanes.split_at_mut(1);
    let (l0, l1) = (&mut l0[0], &mut l1[0]);
    let mut a0 = refill(src0, l0)?;
    let mut a1 = refill(src1, l1)?;
    while a0 && a1 {
        let k0 = l0.keys[l0.pos];
        let k1 = l1.keys[l1.pos];
        if k0 == k1 {
            emit(out, k0, l0.vals[l0.pos] + l1.vals[l1.pos]);
            l0.pos += 1;
            if l0.pos == l0.keys.len() {
                a0 = refill(src0, l0)?;
            }
            l1.pos += 1;
            if l1.pos == l1.keys.len() {
                a1 = refill(src1, l1)?;
            }
        } else if k0 < k1 {
            let run = gallop(&l0.keys[l0.pos..], k1);
            for j in l0.pos..l0.pos + run {
                emit(out, l0.keys[j], l0.vals[j]);
            }
            l0.pos += run;
            if l0.pos == l0.keys.len() {
                a0 = refill(src0, l0)?;
            }
        } else {
            let run = gallop(&l1.keys[l1.pos..], k0);
            for j in l1.pos..l1.pos + run {
                emit(out, l1.keys[j], l1.vals[j]);
            }
            l1.pos += run;
            if l1.pos == l1.keys.len() {
                a1 = refill(src1, l1)?;
            }
        }
    }
    while a0 {
        for j in l0.pos..l0.keys.len() {
            emit(out, l0.keys[j], l0.vals[j]);
        }
        a0 = refill(src0, l0)?;
    }
    while a1 {
        for j in l1.pos..l1.keys.len() {
            emit(out, l1.keys[j], l1.vals[j]);
        }
        a1 = refill(src1, l1)?;
    }
    Ok(())
}

/// `true` when leaf `a` wins the match against leaf `b`: alive beats
/// exhausted, then `(key, source index)` order — the exact pop order of
/// the reference heap's `Reverse((row, col, source))` keys.
fn leads(a: usize, b: usize, head: &[u64], alive: &[bool]) -> bool {
    match (alive[a], alive[b]) {
        (true, true) => (head[a], a) < (head[b], b),
        (true, false) => true,
        (false, true) => false,
        (false, false) => a < b,
    }
}

/// The loser-tree k-way fold for `ways ≥ 3`. Internal nodes hold match
/// losers; advancing the winner replays one leaf-to-root path of
/// `log₂ ways` comparisons.
fn merge_k(
    sources: &mut [PartialSource],
    scratch: &mut MergeScratch,
    out: &mut CsrBuilder,
) -> Result<(), StreamError> {
    let ways = sources.len();
    let w = ways.next_power_of_two();
    let mut head = vec![0u64; w];
    let mut alive = vec![false; w];
    for s in 0..ways {
        if refill(&mut sources[s], &mut scratch.lanes[s])? {
            head[s] = scratch.lanes[s].keys[0];
            alive[s] = true;
        }
    }
    // Seed the tree by playing every match bottom-up; `win[n]` is the
    // winner advancing out of node `n`, `losers[n]` the one staying.
    let mut losers = vec![0usize; w];
    let mut win = vec![0usize; 2 * w];
    for (s, slot) in win[w..].iter_mut().enumerate() {
        *slot = s;
    }
    for n in (1..w).rev() {
        let (a, b) = (win[2 * n], win[2 * n + 1]);
        if leads(a, b, &head, &alive) {
            win[n] = a;
            losers[n] = b;
        } else {
            win[n] = b;
            losers[n] = a;
        }
    }
    let mut winner = win[1];
    drop(win);

    let (mut acc_key, mut acc_val, mut have) = (0u64, 0.0f64, false);
    while alive[winner] {
        let s = winner;
        let lane = &mut scratch.lanes[s];
        let k = head[s];
        let v = lane.vals[lane.pos];
        if have && k == acc_key {
            acc_val += v;
        } else {
            if have {
                emit(out, acc_key, acc_val);
            }
            acc_key = k;
            acc_val = v;
            have = true;
        }
        lane.pos += 1;
        if lane.pos == lane.keys.len() && !refill(&mut sources[s], lane)? {
            alive[s] = false;
        } else {
            head[s] = lane.keys[lane.pos];
        }
        // Replay the path from leaf `s` to the root.
        let mut n = (w + s) >> 1;
        while n >= 1 {
            if leads(losers[n], winner, &head, &alive) {
                std::mem::swap(&mut losers[n], &mut winner);
            }
            n >>= 1;
        }
    }
    if have {
        emit(out, acc_key, acc_val);
    }
    Ok(())
}

/// The seed per-triple kernel — `BinaryHeap` over source heads with an
/// `Option` accumulator — kept verbatim as the differential oracle and
/// the micro-bench baseline. Output is byte-identical to
/// [`merge_sources`] on every input.
pub fn merge_sources_reference(
    rows: usize,
    cols: usize,
    mut sources: Vec<PartialSource>,
) -> Result<Csr, StreamError> {
    let mut out = CsrBuilder::new(rows, cols);
    // Heap keys are (row, col, source-index): coordinate order first, and
    // within one coordinate the plan's child order — a fixed, documented
    // fold order.
    let mut heap: BinaryHeap<Reverse<(u32, u32, usize)>> = BinaryHeap::with_capacity(sources.len());
    let mut heads: Vec<Option<Triple>> = Vec::with_capacity(sources.len());
    for (s, src) in sources.iter_mut().enumerate() {
        let head = src.next_triple()?;
        if let Some((r, c, _)) = head {
            heap.push(Reverse((r, c, s)));
        }
        heads.push(head);
    }

    let mut acc: Option<Triple> = None;
    while let Some(Reverse((r, c, s))) = heap.pop() {
        let (_, _, v) = heads[s].take().expect("head present for heap entry");
        acc = match acc {
            Some((ar, ac, av)) if (ar, ac) == (r, c) => Some((ar, ac, av + v)),
            Some((ar, ac, av)) => {
                out.push(ar, ac, av);
                Some((r, c, v))
            }
            None => Some((r, c, v)),
        };
        let next = sources[s].next_triple()?;
        if let Some((nr, nc, _)) = next {
            heap.push(Reverse((nr, nc, s)));
        }
        heads[s] = next;
    }
    if let Some((r, c, v)) = acc {
        out.push(r, c, v);
    }
    Ok(out.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::write_partial;
    use crate::tempdir::TempDir;
    use crate::SpillCodec;
    use sparch_sparse::{algo, gen, linalg};

    fn mem(csr: Csr) -> PartialSource {
        PartialSource::from_csr(csr)
    }

    fn merge(rows: usize, cols: usize, sources: Vec<PartialSource>) -> Csr {
        merge_sources(rows, cols, sources, &mut MergeScratch::new()).unwrap()
    }

    /// Element-wise sum oracle via repeated linalg addition on dense.
    fn sum_oracle(parts: &[Csr]) -> Csr {
        let mut acc = parts[0].clone();
        for p in &parts[1..] {
            acc = linalg::add(&acc, p);
        }
        acc
    }

    #[test]
    fn merges_mem_sources_like_matrix_addition() {
        let parts: Vec<Csr> = (0..3)
            .map(|s| gen::uniform_random(12, 14, 40, s as u64))
            .collect();
        let merged = merge(12, 14, parts.iter().cloned().map(mem).collect());
        assert_eq!(merged, sum_oracle(&parts));
    }

    #[test]
    fn disk_and_mem_sources_merge_identically() {
        let dir = TempDir::new("merge_mixed");
        let parts: Vec<Csr> = (0..4)
            .map(|s| gen::uniform_random(10, 10, 30, 50 + s as u64))
            .collect();
        let all_mem = merge(10, 10, parts.iter().cloned().map(mem).collect());
        // Spill sources 1 and 3 to disk.
        let mut mixed = Vec::new();
        for (s, p) in parts.iter().enumerate() {
            if s % 2 == 1 {
                let path = dir.file(&format!("mixed{s}.bin"));
                write_partial(&path, p, SpillCodec::Varint).unwrap();
                mixed.push(PartialSource::from_spill(SpillReader::open(&path).unwrap()));
            } else {
                mixed.push(mem(p.clone()));
            }
        }
        let merged = merge(10, 10, mixed);
        assert_eq!(merged, all_mem);
    }

    #[test]
    fn folded_zeros_are_kept() {
        let a = Csr::try_new(1, 2, vec![0, 2], vec![0, 1], vec![2.0, 1.0]).unwrap();
        let b = Csr::try_new(1, 2, vec![0, 1], vec![0], vec![-2.0]).unwrap();
        let merged = merge(1, 2, vec![mem(a), mem(b)]);
        assert_eq!(merged.nnz(), 2, "cancelled entry must stay structural");
        assert_eq!(merged.get(0, 0), Some(0.0));
        assert_eq!(merged.get(0, 1), Some(1.0));
    }

    #[test]
    fn single_and_empty_sources() {
        let m = gen::uniform_random(6, 6, 12, 3);
        assert_eq!(merge(6, 6, vec![mem(m.clone())]), m);
        let empty = merge(6, 6, vec![]);
        assert_eq!(empty.nnz(), 0);
        assert_eq!((empty.rows(), empty.cols()), (6, 6));
        let with_zero = merge(6, 6, vec![mem(m.clone()), mem(Csr::zero(6, 6))]);
        assert_eq!(with_zero, m);
    }

    #[test]
    fn panel_partials_reassemble_the_product() {
        // The real use: partials of A[:, p] · B[p, :] merge to A · B.
        let a = gen::rmat_graph500(40, 4, 2);
        let b = gen::uniform_random(40, 32, 200, 3);
        let parts: Vec<Csr> = sparch_sparse::panel_ranges(a.cols(), 5)
            .into_iter()
            .map(|r| algo::gustavson(&a.col_panel(r.clone()), &b.row_panel(r)))
            .filter(|p| p.nnz() > 0)
            .collect();
        let merged = merge(40, 32, parts.into_iter().map(mem).collect());
        assert_eq!(merged, algo::gustavson(&a, &b));
    }

    /// The loser-tree/gallop kernel must be byte-identical to the seed
    /// `BinaryHeap` kernel at every fan-in, over heavily overlapping
    /// sources (duplicate coordinates in most merge steps) and over
    /// disk/mem mixes under both codecs.
    #[test]
    fn chunked_kernel_matches_reference_heap() {
        let dir = TempDir::new("merge_differential");
        for ways in [2usize, 3, 4, 5, 7, 8, 9] {
            // Same shape for all sources → dense coordinate collisions;
            // float values so fold order differences would show in bits.
            let parts: Vec<Csr> = (0..ways)
                .map(|s| gen::uniform_random(30, 26, 220, 400 + s as u64))
                .collect();
            for codec in [SpillCodec::Raw, SpillCodec::Varint] {
                let make = |spill_mask: usize| -> Vec<PartialSource> {
                    parts
                        .iter()
                        .enumerate()
                        .map(|(s, p)| {
                            if spill_mask >> (s % 8) & 1 == 1 {
                                let path = dir.file(&format!("d{ways}_{codec}_{spill_mask}_{s}"));
                                write_partial(&path, p, codec).unwrap();
                                PartialSource::from_spill(SpillReader::open(&path).unwrap())
                            } else {
                                mem(p.clone())
                            }
                        })
                        .collect()
                };
                // All-mem, all-disk, and an alternating mix.
                for mask in [0usize, 0xff, 0b0101_0101] {
                    let fast = merge(30, 26, make(mask));
                    let slow = merge_sources_reference(30, 26, make(mask)).unwrap();
                    assert_eq!(fast, slow, "ways {ways} {codec} mask {mask:#x}");
                    for (a, b) in fast.values().iter().zip(slow.values()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "ways {ways} {codec}");
                    }
                }
            }
        }
    }

    /// Degenerate fan-ins agree with the reference too: empty sources,
    /// singletons, full cancellation, and every source identical.
    #[test]
    fn kernel_edge_cases_match_reference() {
        let m = gen::uniform_random(9, 9, 25, 77);
        let neg = linalg::map_values(&m, |v| -v);
        let cases: Vec<Vec<Csr>> = vec![
            vec![],
            vec![Csr::zero(9, 9)],
            vec![m.clone()],
            vec![m.clone(), neg.clone()],
            vec![m.clone(), neg.clone(), m.clone()],
            vec![Csr::zero(9, 9); 5],
            vec![m.clone(); 4],
            vec![m.clone(), Csr::zero(9, 9), m.clone(), Csr::zero(9, 9), neg],
        ];
        for (i, parts) in cases.into_iter().enumerate() {
            let fast = merge(9, 9, parts.iter().cloned().map(mem).collect());
            let slow = merge_sources_reference(9, 9, parts.into_iter().map(mem).collect()).unwrap();
            assert_eq!(fast, slow, "case {i}");
        }
    }

    /// Chunk boundaries are invisible: a merge whose sources span many
    /// refills (nnz ≫ CHUNK_ENTRIES) still matches the oracle.
    #[test]
    fn multi_chunk_sources_merge_correctly() {
        let parts: Vec<Csr> = (0..3)
            .map(|s| gen::uniform_random(120, 110, 4 * CHUNK_ENTRIES, 900 + s as u64))
            .collect();
        let merged = merge(120, 110, parts.iter().cloned().map(mem).collect());
        assert_eq!(merged, sum_oracle(&parts));
        let two = merge(120, 110, parts[..2].iter().cloned().map(mem).collect());
        assert_eq!(two, sum_oracle(&parts[..2]));
    }
}
