//! Deterministic synthetic matrix generators.
//!
//! The paper evaluates on 20 SuiteSparse/SNAP matrices plus synthesized
//! R-MAT graphs. We cannot ship the proprietary collections, so the
//! benchmark suite substitutes structure-matched synthetic matrices
//! (see DESIGN.md §5): R-MAT for power-law graphs, stencils for FEM/PDE
//! matrices, banded-plus-random for circuit-like matrices. All generators
//! take an explicit `seed` and are fully deterministic.

#[cfg(any(test, feature = "arb"))]
pub mod arb;
mod rmat;
mod structured;

pub use rmat::{rmat, rmat_graph500, RmatConfig};
pub use structured::{
    banded, block_sparse, diagonal_noise, kron, poisson3d, powerlaw_rows, uniform_random,
};

use crate::Csr;

/// Named generator recipe, serializable so benchmark suites can describe
/// their workloads declaratively.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Recipe {
    /// Erdős–Rényi uniform random: `rows x cols` with `nnz` non-zeros.
    Uniform {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// Target number of non-zeros.
        nnz: usize,
    },
    /// R-MAT power-law graph adjacency matrix: `n x n`, about
    /// `n * avg_degree` edges.
    Rmat {
        /// Number of vertices (matrix order).
        n: usize,
        /// Average out-degree (nnz per row).
        avg_degree: usize,
    },
    /// 7-point Poisson stencil on an `nx x ny x nz` grid
    /// (order = `nx*ny*nz`).
    Poisson3d {
        /// Grid points per dimension.
        nx: usize,
        /// Grid points per dimension.
        ny: usize,
        /// Grid points per dimension.
        nz: usize,
    },
    /// Banded matrix with additional random fill (circuit-like).
    Banded {
        /// Matrix order.
        n: usize,
        /// Half bandwidth (entries per side of the diagonal).
        half_bandwidth: usize,
        /// Extra uniformly random non-zeros sprinkled outside the band.
        extra_nnz: usize,
    },
    /// Rows with power-law lengths (web-crawl-like).
    PowerlawRows {
        /// Matrix order.
        n: usize,
        /// Target total nnz.
        nnz: usize,
        /// Power-law exponent (larger = more skewed).
        alpha: f64,
    },
    /// Block-sparse matrix (pruned-DNN-weight-like).
    BlockSparse {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// Edge length of the square blocks.
        block: usize,
        /// Fraction of blocks that are populated, in `(0, 1]`.
        block_density: f64,
    },
}

impl Recipe {
    /// Materializes the recipe with the given seed.
    pub fn build(&self, seed: u64) -> Csr {
        match *self {
            Recipe::Uniform { rows, cols, nnz } => uniform_random(rows, cols, nnz, seed),
            Recipe::Rmat { n, avg_degree } => rmat_graph500(n, avg_degree, seed),
            Recipe::Poisson3d { nx, ny, nz } => poisson3d(nx, ny, nz),
            Recipe::Banded {
                n,
                half_bandwidth,
                extra_nnz,
            } => banded(n, half_bandwidth, extra_nnz, seed),
            Recipe::PowerlawRows { n, nnz, alpha } => powerlaw_rows(n, nnz, alpha, seed),
            Recipe::BlockSparse {
                rows,
                cols,
                block,
                block_density,
            } => block_sparse(rows, cols, block, block_density, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipes_build_deterministically() {
        let recipes = [
            Recipe::Uniform {
                rows: 50,
                cols: 40,
                nnz: 200,
            },
            Recipe::Rmat {
                n: 64,
                avg_degree: 4,
            },
            Recipe::Poisson3d {
                nx: 4,
                ny: 4,
                nz: 4,
            },
            Recipe::Banded {
                n: 50,
                half_bandwidth: 2,
                extra_nnz: 20,
            },
            Recipe::PowerlawRows {
                n: 60,
                nnz: 300,
                alpha: 1.8,
            },
            Recipe::BlockSparse {
                rows: 32,
                cols: 32,
                block: 4,
                block_density: 0.25,
            },
        ];
        for recipe in &recipes {
            let a = recipe.build(42);
            let b = recipe.build(42);
            assert_eq!(a, b, "{recipe:?} not deterministic");
            assert!(a.nnz() > 0, "{recipe:?} generated an empty matrix");
        }
    }

    #[test]
    fn recipe_serde_round_trip() {
        let r = Recipe::Rmat {
            n: 128,
            avg_degree: 8,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: Recipe = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
