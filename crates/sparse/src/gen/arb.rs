//! Shared proptest strategies for random sparse matrices (test support).
//!
//! Before this module existed, every `#[cfg(test)]` block rolled its own
//! random-matrix builder (`gen::uniform_random` with ad-hoc dims in each
//! algo module, a hand-written COO strategy in `tests/properties.rs`).
//! This module centralizes them as composable [`proptest`] strategies over
//! three axes:
//!
//! * **dims** — bounded shapes, including the degenerate `1×N` / `N×1`,
//! * **density** — a target entry count drawn up to a bound,
//! * **value class** — [`ValueClass`]: small integers (cancellation to
//!   exact zero is common), unit pattern values, or continuous floats.
//!
//! It is compiled for this crate's own unit tests and, for external
//! consumers (the facade's `tests/`), behind the `arb` cargo feature:
//!
//! ```toml
//! [dev-dependencies]
//! sparch-sparse = { workspace = true, features = ["arb"] }
//! ```
//!
//! Plain (non-proptest) tests draw deterministic cases from a strategy
//! with [`sample`], so "run this check on 5 random pairs" tests share the
//! same generators as the property tests.

use crate::{Coo, Csr};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::TestRng;

/// How stored values are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueClass {
    /// Integers in `[-4, 4]` **excluding 0** — folds cancel to exact zero
    /// often, but no entry starts as an explicit zero.
    SmallInt,
    /// Integers in `[-4, 4]` *including 0* — explicit zeros are stored.
    SmallIntWithZeros,
    /// Every value is `1.0` (pattern matrices).
    Unit,
    /// Continuous floats in `(-4, 4)`, never exactly zero.
    Float,
}

/// Strategy for one stored value of the given class.
pub fn value(class: ValueClass) -> BoxedStrategy<f64> {
    match class {
        ValueClass::SmallInt => (1i32..=4, prop_oneof![Just(1.0), Just(-1.0)])
            .prop_map(|(m, s)| m as f64 * s)
            .boxed(),
        ValueClass::SmallIntWithZeros => (-4i32..=4).prop_map(|v| v as f64).boxed(),
        ValueClass::Unit => Just(1.0).boxed(),
        ValueClass::Float => (0.0625f64..4.0, prop_oneof![Just(1.0), Just(-1.0)])
            .prop_map(|(m, s)| m * s)
            .boxed(),
    }
}

/// Strategy for matrix dims: `1..=max_rows` × `1..=max_cols` (so `1×N`
/// and `N×1` edge shapes occur naturally).
pub fn dims(max_rows: usize, max_cols: usize) -> impl Strategy<Value = (usize, usize)> {
    (1..=max_rows, 1..=max_cols)
}

/// Strategy for a random CSR matrix with the given shape bounds, up to
/// `max_nnz` raw entries of the given value class. Duplicate coordinates
/// are folded (COO canonicalization); explicit zeros — whether stored
/// directly by [`ValueClass::SmallIntWithZeros`] or produced by folds —
/// are **kept**, matching the repository-wide convention that zero
/// elimination is a separate, explicit stage.
pub fn csr_with(
    max_rows: usize,
    max_cols: usize,
    max_nnz: usize,
    class: ValueClass,
) -> impl Strategy<Value = Csr> {
    dims(max_rows, max_cols).prop_flat_map(move |(r, c)| {
        vec((0..r as u32, 0..c as u32, value(class)), 0..max_nnz.max(1)).prop_map(move |entries| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v);
            }
            coo.to_csr()
        })
    })
}

/// Strategy matching the historical `small_matrix()` of
/// `tests/properties.rs`: shape `< 24×24`, small-integer values, folded
/// duplicates, **zeros pruned** (structurally sparse input).
pub fn csr(max_rows: usize, max_cols: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    dims(max_rows, max_cols).prop_flat_map(move |(r, c)| {
        vec(
            (
                0..r as u32,
                0..c as u32,
                value(ValueClass::SmallIntWithZeros),
            ),
            0..max_nnz.max(1),
        )
        .prop_map(move |entries| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
            coo.sort_dedup();
            coo.prune_zeros();
            coo.to_csr()
        })
    })
}

/// Strategy for a shape-compatible SpGEMM pair `(A, B)` with
/// `A: r×k`, `B: k×c`, each with up to `max_nnz` entries of `class`.
pub fn spgemm_pair(
    max_dim: usize,
    max_nnz: usize,
    class: ValueClass,
) -> impl Strategy<Value = (Csr, Csr)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(move |(r, k, c)| {
        (
            vec((0..r as u32, 0..k as u32, value(class)), 0..max_nnz.max(1)),
            vec((0..k as u32, 0..c as u32, value(class)), 0..max_nnz.max(1)),
        )
            .prop_map(move |(ea, eb)| {
                let mut ca = Coo::new(r, k);
                for (i, j, v) in ea {
                    ca.push(i, j, v);
                }
                let mut cb = Coo::new(k, c);
                for (i, j, v) in eb {
                    cb.push(i, j, v);
                }
                (ca.to_csr(), cb.to_csr())
            })
    })
}

/// Draws one deterministic case from `strategy` for the given seed — the
/// bridge that lets plain `#[test]`s ("check 5 random pairs") reuse these
/// strategies without the `proptest!` macro.
pub fn sample<S: Strategy>(strategy: &S, seed: u64) -> S::Value {
    strategy.generate(&mut TestRng::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_deterministic() {
        let s = csr(16, 16, 40);
        assert_eq!(sample(&s, 3), sample(&s, 3));
    }

    #[test]
    fn spgemm_pairs_are_compatible() {
        let s = spgemm_pair(20, 60, ValueClass::SmallInt);
        for seed in 0..20 {
            let (a, b) = sample(&s, seed);
            assert_eq!(a.cols(), b.rows(), "seed {seed}");
        }
    }

    #[test]
    fn value_classes_respect_their_contract() {
        for seed in 0..30 {
            let v = sample(&value(ValueClass::SmallInt), seed);
            assert!(v != 0.0 && v.fract() == 0.0 && v.abs() <= 4.0);
            let v = sample(&value(ValueClass::Unit), seed);
            assert_eq!(v, 1.0);
            let v = sample(&value(ValueClass::Float), seed);
            assert!(v != 0.0 && v.abs() < 4.0);
        }
    }

    #[test]
    fn csr_prunes_zeros_but_csr_with_keeps_them() {
        let pruned = csr(12, 12, 80);
        for seed in 0..20 {
            let m = sample(&pruned, seed);
            assert!(m.values().iter().all(|&v| v != 0.0), "seed {seed}");
        }
        // With zeros allowed, some seed stores an explicit zero.
        let kept = csr_with(12, 12, 80, ValueClass::SmallIntWithZeros);
        assert!((0..50).any(|seed| sample(&kept, seed).values().contains(&0.0)));
    }
}
