//! Structured generators: uniform random, banded, stencil, power-law rows,
//! block-sparse. Together with R-MAT these cover the structural classes of
//! the paper's 20-matrix suite (FEM/PDE meshes, circuits, road networks,
//! social/web graphs, DNN weights).

use crate::{Coo, Csr, Index};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng_for(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn random_value(rng: &mut ChaCha8Rng) -> f64 {
    // Uniform in [-1, 1] excluding exact zero so nnz is preserved.
    loop {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if v != 0.0 {
            return v;
        }
    }
}

/// Erdős–Rényi uniform random matrix with exactly `nnz` distinct non-zeros
/// (capped at `rows * cols`).
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero while `nnz > 0`.
pub fn uniform_random(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr {
    if nnz > 0 {
        assert!(
            rows > 0 && cols > 0,
            "cannot place {nnz} entries in an empty shape"
        );
    }
    let mut rng = rng_for(seed);
    let cells = (rows as u128) * (cols as u128);
    let nnz = nnz.min(cells.min(usize::MAX as u128) as usize);
    let mut coo = Coo::new(rows, cols);
    if cells > 0 && (nnz as u128) * 4 >= cells {
        // Dense-ish: sample by reservoir over all cells to guarantee exactness.
        let mut all: Vec<u64> = (0..cells as u64).collect();
        all.shuffle(&mut rng);
        for &cell in all.iter().take(nnz) {
            let r = (cell / cols as u64) as Index;
            let c = (cell % cols as u64) as Index;
            coo.push(r, c, random_value(&mut rng));
        }
    } else {
        // Sparse: rejection-sample distinct cells.
        let mut used = std::collections::HashSet::with_capacity(nnz * 2);
        while used.len() < nnz {
            let r = rng.gen_range(0..rows as u64);
            let c = rng.gen_range(0..cols as u64);
            if used.insert(r * cols as u64 + c) {
                coo.push(r as Index, c as Index, random_value(&mut rng));
            }
        }
    }
    coo.to_csr()
}

/// Banded matrix of order `n` with `half_bandwidth` entries on each side of
/// the diagonal, plus `extra_nnz` random off-band entries (circuit-matrix
/// surrogate: mostly-banded with irregular coupling).
pub fn banded(n: usize, half_bandwidth: usize, extra_nnz: usize, seed: u64) -> Csr {
    let mut rng = rng_for(seed);
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        let lo = r.saturating_sub(half_bandwidth);
        let hi = (r + half_bandwidth).min(n.saturating_sub(1));
        for c in lo..=hi {
            coo.push(r as Index, c as Index, random_value(&mut rng));
        }
    }
    for _ in 0..extra_nnz {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        coo.push(r as Index, c as Index, random_value(&mut rng));
    }
    coo.sort_dedup();
    coo.to_csr()
}

/// Diagonal matrix with `noise_nnz` additional random entries. Useful for
/// scaling/normalization tests.
pub fn diagonal_noise(n: usize, noise_nnz: usize, seed: u64) -> Csr {
    banded(n, 0, noise_nnz, seed)
}

/// 7-point Poisson stencil on a 3-D grid — the classic FEM/PDE sparsity
/// pattern (`poisson3Da`, `2cubes_sphere`, `offshore`, `filter3D` class in
/// the paper's suite). Order is `nx * ny * nz`; each row couples to its six
/// grid neighbours plus itself.
pub fn poisson3d(nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| -> Index { ((z * ny + y) * nx + x) as Index };
    let mut coo = Coo::new(n, n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let me = idx(x, y, z);
                coo.push(me, me, 6.0);
                if x > 0 {
                    coo.push(me, idx(x - 1, y, z), -1.0);
                }
                if x + 1 < nx {
                    coo.push(me, idx(x + 1, y, z), -1.0);
                }
                if y > 0 {
                    coo.push(me, idx(x, y - 1, z), -1.0);
                }
                if y + 1 < ny {
                    coo.push(me, idx(x, y + 1, z), -1.0);
                }
                if z > 0 {
                    coo.push(me, idx(x, y, z - 1), -1.0);
                }
                if z + 1 < nz {
                    coo.push(me, idx(x, y, z + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// Matrix whose row lengths follow a (discretized) power law with exponent
/// `alpha`, column targets uniform — a surrogate for crawl graphs like
/// `webbase-1M` whose hub rows dominate.
pub fn powerlaw_rows(n: usize, nnz: usize, alpha: f64, seed: u64) -> Csr {
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = rng_for(seed);
    // Zipf-like weights over rows; shuffle so heavy rows land anywhere.
    let mut weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-alpha)).collect();
    weights.shuffle(&mut rng);
    let total: f64 = weights.iter().sum();
    let mut coo = Coo::new(n, n);
    let mut remaining = nnz as i64;
    for (r, w) in weights.iter().enumerate() {
        if remaining <= 0 {
            break;
        }
        let mut len = ((w / total) * nnz as f64).round() as i64;
        if len == 0 {
            len = i64::from(rng.gen_bool((w / total * nnz as f64).clamp(0.0, 1.0)));
        }
        let len = len.min(remaining).min(n as i64) as usize;
        let mut cols = std::collections::HashSet::with_capacity(len * 2);
        while cols.len() < len {
            cols.insert(rng.gen_range(0..n));
        }
        // Sort so value assignment does not depend on HashSet iteration
        // order (which is nondeterministic across instances).
        let mut cols: Vec<usize> = cols.into_iter().collect();
        cols.sort_unstable();
        for c in cols {
            coo.push(r as Index, c as Index, random_value(&mut rng));
        }
        remaining -= len as i64;
    }
    // Rounding and row-capacity caps can leave a deficit; fill it with
    // uniform spill so the total stays close to the requested nnz.
    while remaining > 0 {
        coo.push(
            rng.gen_range(0..n) as Index,
            rng.gen_range(0..n) as Index,
            random_value(&mut rng),
        );
        remaining -= 1;
    }
    coo.sort_dedup();
    coo.to_csr()
}

/// Block-sparse matrix: a grid of `block x block` tiles, each populated
/// (densely, with random values) with probability `block_density` — the
/// structured-pruned DNN weight pattern from the paper's intro motivation.
///
/// # Panics
///
/// Panics if `block == 0` or `block_density` is outside `(0, 1]`.
pub fn block_sparse(rows: usize, cols: usize, block: usize, block_density: f64, seed: u64) -> Csr {
    assert!(block > 0, "block must be positive");
    assert!(
        block_density > 0.0 && block_density <= 1.0,
        "block_density must be in (0, 1]"
    );
    let mut rng = rng_for(seed);
    let mut coo = Coo::new(rows, cols);
    let rblocks = rows.div_ceil(block);
    let cblocks = cols.div_ceil(block);
    for br in 0..rblocks {
        for bc in 0..cblocks {
            if rng.gen::<f64>() < block_density {
                for r in (br * block)..((br + 1) * block).min(rows) {
                    for c in (bc * block)..((bc + 1) * block).min(cols) {
                        coo.push(r as Index, c as Index, random_value(&mut rng));
                    }
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_exact_nnz() {
        let m = uniform_random(30, 40, 100, 1);
        assert_eq!(m.nnz(), 100);
        assert_eq!(m.rows(), 30);
        assert_eq!(m.cols(), 40);
    }

    #[test]
    fn uniform_caps_at_full() {
        let m = uniform_random(5, 5, 100, 1);
        assert_eq!(m.nnz(), 25);
    }

    #[test]
    fn uniform_deterministic() {
        assert_eq!(uniform_random(20, 20, 50, 9), uniform_random(20, 20, 50, 9));
    }

    #[test]
    fn banded_structure() {
        let m = banded(10, 1, 0, 3);
        // tridiagonal: 3n - 2 entries
        assert_eq!(m.nnz(), 28);
        for (r, c, _) in m.iter() {
            assert!((r as i64 - c as i64).abs() <= 1);
        }
    }

    #[test]
    fn diagonal_noise_has_full_diagonal() {
        let m = diagonal_noise(8, 5, 4);
        for i in 0..8 {
            assert!(m.get(i, i).is_some(), "missing diagonal at {i}");
        }
    }

    #[test]
    fn poisson3d_symmetric_structure() {
        let m = poisson3d(3, 3, 3);
        assert_eq!(m.rows(), 27);
        // interior point has 7 entries, corners 4
        assert_eq!(m.row_nnz(13), 7); // center of 3x3x3
        assert_eq!(m.row_nnz(0), 4); // corner
        let t = m.transpose();
        assert_eq!(t, m, "stencil matrix should be structurally symmetric");
    }

    #[test]
    fn poisson3d_row_sums_zero_interior() {
        let m = poisson3d(3, 3, 3);
        let (_, vals) = m.row(13);
        let sum: f64 = vals.iter().sum();
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn powerlaw_rows_skewed() {
        let m = powerlaw_rows(500, 4000, 1.5, 2);
        let mean = m.nnz() as f64 / m.rows() as f64;
        assert!(m.max_row_nnz() as f64 > 5.0 * mean);
        // Spill-fill keeps the total near the target (duplicate folding
        // can remove a small fraction).
        assert!((m.nnz() as f64 - 4000.0).abs() < 400.0, "nnz = {}", m.nnz());
    }

    #[test]
    fn powerlaw_rows_deterministic() {
        assert_eq!(
            powerlaw_rows(200, 1500, 1.8, 7),
            powerlaw_rows(200, 1500, 1.8, 7)
        );
    }

    #[test]
    fn block_sparse_block_alignment() {
        let m = block_sparse(16, 16, 4, 0.5, 6);
        assert!(
            m.nnz().is_multiple_of(16),
            "whole 4x4 blocks only, nnz = {}",
            m.nnz()
        );
        assert!(m.nnz() > 0);
    }

    #[test]
    #[should_panic(expected = "block_density")]
    fn block_sparse_rejects_zero_density() {
        let _ = block_sparse(8, 8, 2, 0.0, 0);
    }
}

/// Kronecker product `a ⊗ b` — the deterministic relative of R-MAT
/// (R-MAT is a stochastic Kronecker graph) and a standard way to grow
/// self-similar benchmark matrices: `kron` of two power-law factors is
/// power-law with multiplied dimensions.
///
/// # Panics
///
/// Panics if the product dimensions overflow `u32` indices.
pub fn kron(a: &Csr, b: &Csr) -> Csr {
    let rows = a.rows().checked_mul(b.rows()).expect("row overflow");
    let cols = a.cols().checked_mul(b.cols()).expect("col overflow");
    assert!(
        rows <= u32::MAX as usize && cols <= u32::MAX as usize,
        "indices exceed u32"
    );
    let mut coo = Coo::new(rows, cols);
    for (ar, ac, av) in a.iter() {
        for (br, bc, bv) in b.iter() {
            coo.push(
                ar * b.rows() as Index + br,
                ac * b.cols() as Index + bc,
                av * bv,
            );
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod kron_tests {
    use super::*;
    use crate::Dense;

    #[test]
    fn kron_small_known() {
        // [[1,0],[0,2]] ⊗ [[3]] = [[3,0],[0,6]]
        let a = Dense::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).to_csr();
        let b = Dense::from_rows(&[&[3.0]]).to_csr();
        let k = kron(&a, &b);
        assert_eq!(k.to_dense(), Dense::from_rows(&[&[3.0, 0.0], &[0.0, 6.0]]));
    }

    #[test]
    fn kron_nnz_multiplies() {
        let a = uniform_random(6, 5, 12, 1);
        let b = uniform_random(4, 7, 9, 2);
        let k = kron(&a, &b);
        assert_eq!(k.nnz(), a.nnz() * b.nnz());
        assert_eq!(k.rows(), 24);
        assert_eq!(k.cols(), 35);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD) for compatible shapes.
        let a = uniform_random(3, 4, 6, 3);
        let c = uniform_random(4, 3, 6, 4);
        let b = uniform_random(2, 3, 4, 5);
        let d = uniform_random(3, 2, 4, 6);
        let left = crate::algo::gustavson(&kron(&a, &b), &kron(&c, &d));
        let right = kron(
            &crate::algo::gustavson(&a, &c),
            &crate::algo::gustavson(&b, &d),
        );
        assert!(left.approx_eq(&right, 1e-9));
    }
}
