//! R-MAT (Recursive MATrix) power-law graph generator.
//!
//! The paper's Figure 14 sweeps "synthesized rMAT data" from the Graph 500
//! reference (Murphy et al., ref. 29), with matrix orders 5k–80k and average
//! degrees 4–32. R-MAT drops each edge into a quadrant of the adjacency
//! matrix recursively with probabilities `(a, b, c, d)`; the Graph 500
//! parameters `(0.57, 0.19, 0.19, 0.05)` yield the heavy power-law skew
//! that stresses SpGEMM load balance.

use crate::{Coo, Csr, Index};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters for the R-MAT generator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RmatConfig {
    /// Number of vertices. Rounded up to the next power of two internally;
    /// the emitted matrix is truncated back to `n`.
    pub n: usize,
    /// Number of edges to sample (before duplicate folding).
    pub edges: usize,
    /// Quadrant probability a (top-left).
    pub a: f64,
    /// Quadrant probability b (top-right).
    pub b: f64,
    /// Quadrant probability c (bottom-left).
    pub c: f64,
    /// Noise applied to the probabilities per level, as in the Graph 500
    /// reference implementation, to avoid exactly self-similar structure.
    pub noise: f64,
}

impl RmatConfig {
    /// Graph 500 reference parameters for a graph with `n` vertices and
    /// average degree `avg_degree`.
    pub fn graph500(n: usize, avg_degree: usize) -> Self {
        RmatConfig {
            n,
            edges: n * avg_degree,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }

    /// The implied d-quadrant probability (`1 - a - b - c`).
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT adjacency matrix with unit edge weights.
///
/// Duplicate edges are folded (summed), so the resulting nnz is slightly
/// below `config.edges` for dense-ish settings.
///
/// # Panics
///
/// Panics if probabilities are not a sub-distribution (`a+b+c > 1`) or if
/// `n == 0`.
pub fn rmat(config: &RmatConfig, seed: u64) -> Csr {
    assert!(config.n > 0, "n must be positive");
    assert!(
        config.a >= 0.0 && config.b >= 0.0 && config.c >= 0.0 && config.d() >= 0.0,
        "quadrant probabilities must form a distribution"
    );
    let levels = (config.n as f64).log2().ceil() as u32;
    let size = 1usize << levels;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::new(config.n, config.n);
    for _ in 0..config.edges {
        let (mut r, mut c) = (0usize, 0usize);
        let mut span = size;
        while span > 1 {
            span /= 2;
            // Per-level noisy probabilities (Graph 500 style).
            let na = config.a * (1.0 + config.noise * (rng.gen::<f64>() - 0.5));
            let nb = config.b * (1.0 + config.noise * (rng.gen::<f64>() - 0.5));
            let nc = config.c * (1.0 + config.noise * (rng.gen::<f64>() - 0.5));
            let nd = config.d() * (1.0 + config.noise * (rng.gen::<f64>() - 0.5));
            let total = na + nb + nc + nd;
            let x = rng.gen::<f64>() * total;
            if x < na {
                // top-left: nothing to add
            } else if x < na + nb {
                c += span;
            } else if x < na + nb + nc {
                r += span;
            } else {
                r += span;
                c += span;
            }
        }
        if r < config.n && c < config.n {
            coo.push(r as Index, c as Index, 1.0);
        }
    }
    coo.to_csr()
}

/// Convenience constructor matching the paper's Figure 14 axes:
/// `rmat-<n>-x<avg_degree>` with Graph 500 probabilities.
pub fn rmat_graph500(n: usize, avg_degree: usize, seed: u64) -> Csr {
    rmat(&RmatConfig::graph500(n, avg_degree), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = rmat_graph500(256, 8, 11);
        let b = rmat_graph500(256, 8, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat_graph500(256, 8, 1);
        let b = rmat_graph500(256, 8, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn edge_count_close_to_target() {
        let cfg = RmatConfig::graph500(512, 8);
        let m = rmat(&cfg, 3);
        // Duplicates fold, and a few edges land outside the truncated range,
        // but the bulk must survive.
        assert!(
            m.nnz() > cfg.edges / 2,
            "nnz {} << edges {}",
            m.nnz(),
            cfg.edges
        );
        assert!(m.nnz() <= cfg.edges);
    }

    #[test]
    fn power_law_skew_present() {
        // With Graph 500 parameters, the max row is far above the mean row.
        let m = rmat_graph500(1024, 8, 5);
        let mean = m.nnz() as f64 / m.rows() as f64;
        let max = m.max_row_nnz() as f64;
        assert!(
            max > 4.0 * mean,
            "expected heavy skew, got max {max} vs mean {mean:.2}"
        );
    }

    #[test]
    fn uniform_probabilities_have_low_skew() {
        let cfg = RmatConfig {
            n: 1024,
            edges: 8192,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            noise: 0.0,
        };
        let m = rmat(&cfg, 5);
        let mean = m.nnz() as f64 / m.rows() as f64;
        let max = m.max_row_nnz() as f64;
        assert!(
            max < 4.0 * mean,
            "uniform rmat should be balanced: max {max} mean {mean}"
        );
    }

    #[test]
    fn non_power_of_two_order_truncates() {
        let m = rmat_graph500(300, 4, 7);
        assert_eq!(m.rows(), 300);
        assert_eq!(m.cols(), 300);
        assert!(m
            .iter()
            .all(|(r, c, _)| (r as usize) < 300 && (c as usize) < 300));
    }

    #[test]
    #[should_panic(expected = "distribution")]
    fn rejects_bad_probabilities() {
        let cfg = RmatConfig {
            n: 16,
            edges: 10,
            a: 0.6,
            b: 0.3,
            c: 0.3,
            noise: 0.0,
        };
        let _ = rmat(&cfg, 0);
    }
}
