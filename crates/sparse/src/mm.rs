//! Matrix Market (`.mtx`) reader and writer.
//!
//! The paper evaluates on matrices from the SuiteSparse collection and SNAP,
//! which are distributed in the Matrix Market exchange format. This module
//! implements the `coordinate` variant (the one used for sparse matrices)
//! with `real`, `integer` and `pattern` fields and `general` / `symmetric` /
//! `skew-symmetric` symmetry.
//!
//! # Example
//!
//! ```
//! use sparch_sparse::{mm, Coo};
//!
//! let text = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2.0\n";
//! let m = mm::read_str(text)?;
//! assert_eq!(m.nnz(), 2);
//! assert_eq!(mm::read_str(&mm::write_string(&m))?, m);
//! # Ok::<(), sparch_sparse::SparseError>(())
//! ```

use crate::{panel_ranges, Coo, Index, SparseError};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Field type declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Reads a Matrix Market coordinate stream into a [`Coo`] matrix.
///
/// Symmetric and skew-symmetric inputs are expanded to their full general
/// form (mirrored entries materialized), matching how SpGEMM consumes them.
/// Pattern matrices get the value `1.0` for every stored entry.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] on malformed headers, size lines or
/// entries, and [`SparseError::IndexOutOfBounds`] if an entry exceeds the
/// declared shape.
pub fn read<R: Read>(reader: R) -> Result<Coo, SparseError> {
    let mut lines = BufReader::new(reader).lines();
    let preamble = parse_preamble(&mut lines)?;
    let mut coo = Coo::new(preamble.rows, preamble.cols);
    scan_entries(lines, &preamble, |r0, c0, v| coo.push(r0, c0, v))?;
    Ok(coo)
}

/// Everything the header and size line declare about a coordinate stream.
#[derive(Debug, Clone, Copy)]
struct Preamble {
    field: Field,
    symmetry: Symmetry,
    rows: usize,
    cols: usize,
    declared_nnz: usize,
}

/// Parses the banner line, skips comments, and parses the size line —
/// the shared front half of [`read`] and [`PanelReader`].
fn parse_preamble<L>(lines: &mut L) -> Result<Preamble, SparseError>
where
    L: Iterator<Item = std::io::Result<String>>,
{
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty stream".into()))?
        .map_err(SparseError::from)?;
    let (field, symmetry) = parse_header(&header)?;

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| SparseError::Parse("missing size line".into()))?
            .map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!("bad size line: {size_line:?}")));
    }
    Ok(Preamble {
        field,
        symmetry,
        rows: dims[0].parse().map_err(|_| bad_num(dims[0]))?,
        cols: dims[1].parse().map_err(|_| bad_num(dims[1]))?,
        declared_nnz: dims[2].parse().map_err(|_| bad_num(dims[2]))?,
    })
}

/// Walks every entry line after the size line, fully validating each
/// (parse errors and bounds checks are identical for every consumer),
/// expanding symmetry, and handing each **stored** entry — primary, plus
/// the mirrored one for (skew-)symmetric inputs — to `f` in file order.
/// Enforces the declared entry count at the end.
fn scan_entries<L, F>(lines: L, p: &Preamble, mut f: F) -> Result<(), SparseError>
where
    L: Iterator<Item = std::io::Result<String>>,
    F: FnMut(Index, Index, f64),
{
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let r: usize = parts
            .next()
            .ok_or_else(|| SparseError::Parse("missing row".into()))?
            .parse()
            .map_err(|_| bad_num(trimmed))?;
        let c: usize = parts
            .next()
            .ok_or_else(|| SparseError::Parse("missing col".into()))?
            .parse()
            .map_err(|_| bad_num(trimmed))?;
        let v: f64 = match p.field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => parts
                .next()
                .ok_or_else(|| SparseError::Parse("missing value".into()))?
                .parse()
                .map_err(|_| bad_num(trimmed))?,
        };
        if r == 0 || c == 0 || r > p.rows || c > p.cols {
            return Err(SparseError::IndexOutOfBounds {
                row: r.saturating_sub(1) as Index,
                col: c.saturating_sub(1) as Index,
                rows: p.rows,
                cols: p.cols,
            });
        }
        let (r0, c0) = ((r - 1) as Index, (c - 1) as Index);
        f(r0, c0, v);
        match p.symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric if r0 != c0 => f(c0, r0, v),
            Symmetry::SkewSymmetric if r0 != c0 => f(c0, r0, -v),
            _ => {}
        }
        seen += 1;
    }
    if seen != p.declared_nnz {
        return Err(SparseError::Parse(format!(
            "declared {} entries but found {seen}",
            p.declared_nnz
        )));
    }
    Ok(())
}

/// Streams a `.mtx` file into column-panel COO chunks without ever
/// materializing the full matrix: each call to
/// [`PanelReader::next_panel`] re-scans the file and keeps only the
/// entries whose (expanded) column falls in that panel's range, so peak
/// memory is one panel, not the whole matrix — the ingestion half of the
/// out-of-core streaming pipeline.
///
/// The trade is deliberate: `panels` passes over the file buy an
/// `O(nnz / panels)` resident set. Every pass runs the *same* validation
/// as [`read`], so malformed input surfaces the same
/// [`SparseError::Parse`] / [`SparseError::IndexOutOfBounds`] taxonomy
/// (on the first panel, or [`PanelReader::open`] for preamble errors).
///
/// # Example
///
/// ```no_run
/// use sparch_sparse::mm;
///
/// let mut reader = mm::read_panels("matrix.mtx", 4)?;
/// while let Some(panel) = reader.next_panel() {
///     let (cols, coo) = panel?;
///     println!("panel {:?}: {} entries", cols, coo.nnz());
/// }
/// # Ok::<(), sparch_sparse::SparseError>(())
/// ```
#[derive(Debug)]
pub struct PanelReader {
    path: PathBuf,
    preamble: Preamble,
    ranges: Vec<Range<usize>>,
    next: usize,
}

impl PanelReader {
    /// Opens the file and parses its header and size line, splitting the
    /// column space into up to `panels` balanced ranges
    /// ([`crate::panel_ranges`]).
    ///
    /// # Errors
    ///
    /// [`SparseError::Io`] if the file cannot be opened, otherwise the
    /// same preamble errors as [`read`].
    pub fn open<P: AsRef<Path>>(path: P, panels: usize) -> Result<Self, SparseError> {
        let (path, preamble) = open_preamble(path)?;
        Ok(PanelReader {
            ranges: panel_ranges(preamble.cols, panels),
            path,
            preamble,
            next: 0,
        })
    }

    /// Opens the file with an explicit column-panel partition — the entry
    /// point for nnz-balanced splits, where the ranges come from
    /// [`crate::panel_ranges_by_nnz`] over a [`scan_col_nnz`] histogram
    /// rather than the uniform default.
    ///
    /// # Panics
    ///
    /// Panics if the ranges do not tile `0..cols` contiguously left to
    /// right (programmer error, like [`crate::Csr::col_panel`]'s bounds).
    ///
    /// # Errors
    ///
    /// Same as [`PanelReader::open`].
    pub fn open_with_ranges<P: AsRef<Path>>(
        path: P,
        ranges: Vec<Range<usize>>,
    ) -> Result<Self, SparseError> {
        let (path, preamble) = open_preamble(path)?;
        assert_ranges_tile(&ranges, preamble.cols, "column");
        Ok(PanelReader {
            ranges,
            path,
            preamble,
            next: 0,
        })
    }

    /// Declared number of rows.
    pub fn rows(&self) -> usize {
        self.preamble.rows
    }

    /// Declared number of columns.
    pub fn cols(&self) -> usize {
        self.preamble.cols
    }

    /// Declared entry count (before symmetry expansion).
    pub fn declared_nnz(&self) -> usize {
        self.preamble.declared_nnz
    }

    /// Number of panels this reader will yield (≤ the requested count:
    /// empty panels are never produced, so a 3-column file asked for 8
    /// panels yields 3).
    pub fn panels(&self) -> usize {
        self.ranges.len()
    }

    /// The column ranges this reader will yield, in order — hand these
    /// to [`RowPanelReader::open_with_ranges`] to split the right
    /// operand identically.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Reads the next column panel: one full pass over the file keeping
    /// only entries (after symmetry expansion) whose column lies in the
    /// panel's range. The returned [`Coo`] has shape
    /// `rows × range.len()` with **localized** column indices
    /// (`col - range.start`), ready to become the right operand's row
    /// panel counterpart via [`crate::Csr::row_panel`].
    ///
    /// Returns `None` once every panel has been yielded.
    #[allow(clippy::type_complexity)]
    pub fn next_panel(&mut self) -> Option<Result<(Range<usize>, Coo), SparseError>> {
        let range = self.ranges.get(self.next)?.clone();
        self.next += 1;
        Some(self.scan_panel(range))
    }

    fn scan_panel(&self, range: Range<usize>) -> Result<(Range<usize>, Coo), SparseError> {
        // Re-parse the preamble to position the stream; it was validated
        // at open, so failures here mean the file changed under us.
        let mut lines = BufReader::new(std::fs::File::open(&self.path)?).lines();
        let preamble = parse_preamble(&mut lines)?;
        let mut coo = Coo::new(preamble.rows, range.len());
        let (lo, hi) = (range.start as Index, range.end as Index);
        scan_entries(lines, &preamble, |r0, c0, v| {
            if (lo..hi).contains(&c0) {
                coo.push(r0, c0 - lo, v);
            }
        })?;
        Ok((range, coo))
    }
}

impl Iterator for PanelReader {
    type Item = Result<(Range<usize>, Coo), SparseError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_panel()
    }
}

/// Streams a `.mtx` file into **row-panel** COO chunks — the right
/// operand's counterpart to [`PanelReader`]: where the column-panel
/// reader slices `A[:, p]`, this slices `B[p, :]`, so both operands of
/// the streaming pipeline's outer-product split
/// `A · B = Σ_p A[:, p] · B[p, :]` can come straight from disk without
/// ever materializing a whole matrix. CSR row slices stream naturally,
/// which is why the split is over rows here.
///
/// Each call to [`RowPanelReader::next_panel`] re-scans the file and
/// keeps only the entries whose (expanded) **row** falls in that panel's
/// range, with **localized** row indices (`row - range.start`) and shape
/// `range.len() × cols`. Every pass runs the *same* validation as
/// [`read`] — shared [`parse_preamble`]/[`scan_entries`] internals — so
/// malformed input surfaces the identical [`SparseError::Parse`] /
/// [`SparseError::IndexOutOfBounds`] taxonomy (on the first panel, or at
/// [`RowPanelReader::open`] for preamble errors).
#[derive(Debug)]
pub struct RowPanelReader {
    path: PathBuf,
    preamble: Preamble,
    ranges: Vec<Range<usize>>,
    next: usize,
}

impl RowPanelReader {
    /// Opens the file and parses its header and size line, splitting the
    /// row space into up to `panels` balanced ranges
    /// ([`crate::panel_ranges`]).
    ///
    /// # Errors
    ///
    /// [`SparseError::Io`] if the file cannot be opened, otherwise the
    /// same preamble errors as [`read`].
    pub fn open<P: AsRef<Path>>(path: P, panels: usize) -> Result<Self, SparseError> {
        let (path, preamble) = open_preamble(path)?;
        Ok(RowPanelReader {
            ranges: panel_ranges(preamble.rows, panels),
            path,
            preamble,
            next: 0,
        })
    }

    /// Opens the file with an explicit row-panel partition, so `B`'s row
    /// panels can mirror `A`'s (possibly nnz-balanced) column split —
    /// the pipeline pairs panel `p` of both operands, and the ranges
    /// must agree exactly.
    ///
    /// # Panics
    ///
    /// Panics if the ranges do not tile `0..rows` contiguously left to
    /// right.
    ///
    /// # Errors
    ///
    /// Same as [`RowPanelReader::open`].
    pub fn open_with_ranges<P: AsRef<Path>>(
        path: P,
        ranges: Vec<Range<usize>>,
    ) -> Result<Self, SparseError> {
        let (path, preamble) = open_preamble(path)?;
        assert_ranges_tile(&ranges, preamble.rows, "row");
        Ok(RowPanelReader {
            ranges,
            path,
            preamble,
            next: 0,
        })
    }

    /// Declared number of rows.
    pub fn rows(&self) -> usize {
        self.preamble.rows
    }

    /// Declared number of columns.
    pub fn cols(&self) -> usize {
        self.preamble.cols
    }

    /// Declared entry count (before symmetry expansion).
    pub fn declared_nnz(&self) -> usize {
        self.preamble.declared_nnz
    }

    /// Number of panels this reader will yield.
    pub fn panels(&self) -> usize {
        self.ranges.len()
    }

    /// The row ranges this reader will yield, in order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Reads the next row panel: one full pass over the file keeping only
    /// entries (after symmetry expansion) whose row lies in the panel's
    /// range. The returned [`Coo`] has shape `range.len() × cols` with
    /// localized row indices, ready to be the right operand of one panel
    /// multiply.
    ///
    /// Returns `None` once every panel has been yielded.
    #[allow(clippy::type_complexity)]
    pub fn next_panel(&mut self) -> Option<Result<(Range<usize>, Coo), SparseError>> {
        let range = self.ranges.get(self.next)?.clone();
        self.next += 1;
        Some(self.scan_panel(range))
    }

    fn scan_panel(&self, range: Range<usize>) -> Result<(Range<usize>, Coo), SparseError> {
        let mut lines = BufReader::new(std::fs::File::open(&self.path)?).lines();
        let preamble = parse_preamble(&mut lines)?;
        let mut coo = Coo::new(range.len(), preamble.cols);
        let (lo, hi) = (range.start as Index, range.end as Index);
        scan_entries(lines, &preamble, |r0, c0, v| {
            if (lo..hi).contains(&r0) {
                coo.push(r0 - lo, c0, v);
            }
        })?;
        Ok((range, coo))
    }
}

impl Iterator for RowPanelReader {
    type Item = Result<(Range<usize>, Coo), SparseError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_panel()
    }
}

/// Opens the file and parses the preamble — the shared front of every
/// panel reader.
fn open_preamble<P: AsRef<Path>>(path: P) -> Result<(PathBuf, Preamble), SparseError> {
    let path = path.as_ref().to_path_buf();
    let mut lines = BufReader::new(std::fs::File::open(&path)?).lines();
    let preamble = parse_preamble(&mut lines)?;
    Ok((path, preamble))
}

/// Panics unless `ranges` tiles `0..total` contiguously left to right.
fn assert_ranges_tile(ranges: &[Range<usize>], total: usize, axis: &str) {
    let mut covered = 0usize;
    for r in ranges {
        assert!(
            r.start == covered && r.end >= r.start,
            "{axis} panel {r:?} does not tile 0..{total} (covered 0..{covered})"
        );
        covered = r.end;
    }
    assert!(
        covered == total,
        "{axis} panels cover only 0..{covered} of 0..{total}"
    );
}

/// One validated pass over a `.mtx` file producing the per-column
/// non-zero histogram (after symmetry expansion) — the weight vector for
/// an nnz-balanced panel split ([`crate::panel_ranges_by_nnz`]) when the
/// left operand streams from disk. Runs the same entry validation as
/// [`read`], so it surfaces the identical error taxonomy.
///
/// # Errors
///
/// [`SparseError::Io`] if the file cannot be opened, otherwise as
/// [`read`].
pub fn scan_col_nnz<P: AsRef<Path>>(path: P) -> Result<Vec<usize>, SparseError> {
    let mut lines = BufReader::new(std::fs::File::open(path.as_ref())?).lines();
    let preamble = parse_preamble(&mut lines)?;
    let mut counts = vec![0usize; preamble.cols];
    scan_entries(lines, &preamble, |_, c0, _| counts[c0 as usize] += 1)?;
    Ok(counts)
}

/// Opens a chunked column-panel reader over a `.mtx` file — shorthand
/// for [`PanelReader::open`].
///
/// # Errors
///
/// Same as [`PanelReader::open`].
pub fn read_panels<P: AsRef<Path>>(path: P, panels: usize) -> Result<PanelReader, SparseError> {
    PanelReader::open(path, panels)
}

/// Opens a chunked row-panel reader over a `.mtx` file — shorthand for
/// [`RowPanelReader::open`].
///
/// # Errors
///
/// Same as [`RowPanelReader::open`].
pub fn read_row_panels<P: AsRef<Path>>(
    path: P,
    panels: usize,
) -> Result<RowPanelReader, SparseError> {
    RowPanelReader::open(path, panels)
}

/// Reads a Matrix Market string. Convenience wrapper over [`read`].
///
/// # Errors
///
/// Same as [`read`].
pub fn read_str(text: &str) -> Result<Coo, SparseError> {
    read(text.as_bytes())
}

/// Reads a `.mtx` file from disk.
///
/// # Errors
///
/// [`SparseError::Io`] if the file cannot be opened, otherwise as [`read`].
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Coo, SparseError> {
    read(std::fs::File::open(path)?)
}

/// Writes a COO matrix as `coordinate real general` Matrix Market.
///
/// # Errors
///
/// Propagates I/O failures as [`SparseError::Io`].
pub fn write<W: Write>(mut writer: W, m: &Coo) -> Result<(), SparseError> {
    writer.write_all(write_string(m).as_bytes())?;
    Ok(())
}

/// Renders a COO matrix to a Matrix Market string.
pub fn write_string(m: &Coo) -> String {
    let mut s = String::new();
    s.push_str("%%MatrixMarket matrix coordinate real general\n");
    s.push_str("% written by sparch-sparse\n");
    let _ = writeln!(s, "{} {} {}", m.rows(), m.cols(), m.nnz());
    for &(r, c, v) in m.entries() {
        let _ = writeln!(s, "{} {} {}", r + 1, c + 1, v);
    }
    s
}

/// Writes a `.mtx` file to disk.
///
/// # Errors
///
/// [`SparseError::Io`] if the file cannot be created or written.
pub fn write_file<P: AsRef<Path>>(path: P, m: &Coo) -> Result<(), SparseError> {
    write(std::fs::File::create(path)?, m)
}

fn parse_header(line: &str) -> Result<(Field, Symmetry), SparseError> {
    let lower = line.to_ascii_lowercase();
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    if tokens.len() != 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse(format!("bad header: {line:?}")));
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse(format!(
            "only coordinate format is supported, got {:?}",
            tokens[2]
        )));
    }
    let field = match tokens[3] {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(SparseError::Parse(format!("unsupported field {other:?}"))),
    };
    let symmetry = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(SparseError::Parse(format!(
                "unsupported symmetry {other:?}"
            )))
        }
    };
    Ok((field, symmetry))
}

fn bad_num(tok: &str) -> SparseError {
    SparseError::Parse(format!("bad number in {tok:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% a comment\n2 3 2\n1 1 1.5\n2 3 -2\n";
        let m = read_str(text).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.entries(), &[(0, 0, 1.5), (1, 2, -2.0)]);
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5\n3 3 7\n";
        let mut m = read_str(text).unwrap();
        m.sort_dedup();
        assert_eq!(m.entries(), &[(0, 1, 5.0), (1, 0, 5.0), (2, 2, 7.0)]);
    }

    #[test]
    fn parse_skew_symmetric_negates() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3\n";
        let mut m = read_str(text).unwrap();
        m.sort_dedup();
        assert_eq!(m.entries(), &[(0, 1, -3.0), (1, 0, 3.0)]);
    }

    #[test]
    fn parse_pattern_gets_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_str(text).unwrap();
        assert!(m.entries().iter().all(|e| e.2 == 1.0));
    }

    #[test]
    fn rejects_bad_header_and_counts() {
        assert!(read_str("hello\n1 1 0\n").is_err());
        assert!(read_str("%%MatrixMarket matrix array real general\n1 1 0\n").is_err());
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n";
        assert!(matches!(read_str(text), Err(SparseError::Parse(_))));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n";
        assert!(matches!(
            read_str(text),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn one_based_indexing_round_trip() {
        let mut m = Coo::new(3, 4);
        m.push(0, 0, 1.0);
        m.push(2, 3, 4.0);
        let text = write_string(&m);
        assert!(text.contains("3 4 2"));
        assert!(text.contains("1 1 1"));
        assert!(text.contains("3 4 4"));
        let back = read_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_integer_field() {
        let text = "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1 3\n2 2 -7\n";
        let m = read_str(text).unwrap();
        assert_eq!(m.entries(), &[(0, 0, 3.0), (1, 1, -7.0)]);
    }

    #[test]
    fn parse_pattern_symmetric_expands_with_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n";
        let mut m = read_str(text).unwrap();
        m.sort_dedup();
        assert_eq!(m.entries(), &[(0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0)]);
    }

    #[test]
    fn symmetric_diagonal_entries_are_not_mirrored() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 2 9\n";
        let m = read_str(text).unwrap();
        assert_eq!(m.entries(), &[(1, 1, 9.0)]);
    }

    #[test]
    fn malformed_headers_are_errors_not_panics() {
        let cases = [
            "",                                                                // empty stream
            "%%MatrixMarket\n1 1 0\n",                                         // too few tokens
            "%%MatrixMarket vector coordinate real general\n1 1 0\n",          // not a matrix
            "%%MatrixMarket matrix array real general\n1 1 0\n",               // dense format
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",       // unsupported field
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n", // unsupported symmetry
            "%%MatrixMarket matrix coordinate real general\n",          // missing size line
            "%%MatrixMarket matrix coordinate real general\n2 2\n",     // short size line
            "%%MatrixMarket matrix coordinate real general\nx 2 0\n",   // non-numeric size
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n", // missing col
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n", // missing value
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n", // bad value
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n-1 1 1\n", // negative index
        ];
        for text in cases {
            assert!(
                matches!(read_str(text), Err(SparseError::Parse(_))),
                "expected Parse error for {text:?}"
            );
        }
    }

    #[test]
    fn out_of_range_indices_are_errors_not_panics() {
        // One-based format: index 0 is out of range, as is anything past
        // the declared shape.
        let cases = [
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 9 1\n",
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 3\n",
        ];
        for text in cases {
            assert!(
                matches!(read_str(text), Err(SparseError::IndexOutOfBounds { .. })),
                "expected IndexOutOfBounds for {text:?}"
            );
        }
    }

    #[test]
    fn declared_count_must_match_even_with_comments() {
        let text = "%%MatrixMarket matrix coordinate real general\n% c\n2 2 2\n1 1 1\n% mid\n";
        assert!(matches!(read_str(text), Err(SparseError::Parse(_))));
    }

    mod roundtrip {
        use super::*;
        use crate::gen::arb;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // write → read is lossless for arbitrary matrices, including
            // explicit zeros and degenerate 1×N / N×1 shapes.
            #[test]
            fn write_read_round_trip(
                m in arb::csr_with(24, 24, 80, arb::ValueClass::SmallIntWithZeros)
            ) {
                let text = write_string(&m.to_coo());
                let back = read_str(&text).unwrap();
                prop_assert_eq!(back.to_csr(), m);
            }

            #[test]
            fn float_values_survive_the_text_format(
                m in arb::csr_with(16, 16, 60, arb::ValueClass::Float)
            ) {
                let back = read_str(&write_string(&m.to_coo())).unwrap().to_csr();
                // Display/parse of f64 is exact (shortest round-trip repr).
                prop_assert_eq!(back, m);
            }
        }
    }

    mod panels {
        use super::*;
        use crate::gen;

        /// Writes `text` to a unique temp file and returns its path.
        fn temp_mtx(tag: &str, text: &str) -> std::path::PathBuf {
            let path = std::env::temp_dir()
                .join(format!("sparch_mm_panels_{tag}_{}.mtx", std::process::id()));
            std::fs::write(&path, text).unwrap();
            path
        }

        /// Re-assembles the panels into one full-shape COO.
        fn reassemble(reader: PanelReader) -> Coo {
            let (rows, cols) = (reader.rows(), reader.cols());
            let mut full = Coo::new(rows, cols);
            for panel in reader {
                let (range, coo) = panel.unwrap();
                for &(r, c, v) in coo.entries() {
                    full.push(r, c + range.start as Index, v);
                }
            }
            full
        }

        #[test]
        fn panels_reassemble_to_the_full_read() {
            let m = gen::uniform_random(17, 23, 90, 7).to_coo();
            let path = temp_mtx("reassemble", &write_string(&m));
            for panels in [1, 2, 3, 23, 40] {
                let reader = read_panels(&path, panels).unwrap();
                assert_eq!(reader.panels(), panels.min(23), "panels {panels}");
                assert_eq!(reader.declared_nnz(), m.nnz());
                assert_eq!(
                    reassemble(reader).to_csr(),
                    read_file(&path).unwrap().to_csr(),
                    "panels {panels}"
                );
            }
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn panel_chunks_are_local_and_disjoint() {
            let m = gen::uniform_random(12, 20, 60, 3).to_coo();
            let path = temp_mtx("local", &write_string(&m));
            let reader = read_panels(&path, 4).unwrap();
            let mut total = 0usize;
            let mut prev_end = 0usize;
            for panel in reader {
                let (range, coo) = panel.unwrap();
                assert_eq!(range.start, prev_end, "contiguous column coverage");
                prev_end = range.end;
                assert_eq!(coo.rows(), 12);
                assert_eq!(coo.cols(), range.len());
                assert!(coo.entries().iter().all(|e| (e.1 as usize) < range.len()));
                total += coo.nnz();
            }
            assert_eq!(prev_end, 20);
            assert_eq!(total, m.nnz());
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn symmetric_mirrors_land_in_their_own_panels() {
            // Entry (4, 1) of a symmetric matrix mirrors to (1, 4): with
            // two panels over 6 columns, the primary lands in panel 0 and
            // the mirror in panel 1.
            let text = "%%MatrixMarket matrix coordinate real symmetric\n6 6 2\n5 2 3.5\n6 6 1\n";
            let path = temp_mtx("symmetric", text);
            let mut reader = read_panels(&path, 2).unwrap();
            let (r0, p0) = reader.next_panel().unwrap().unwrap();
            assert_eq!(r0, 0..3);
            assert_eq!(p0.entries(), &[(4, 1, 3.5)]);
            let (r1, p1) = reader.next_panel().unwrap().unwrap();
            assert_eq!(r1, 3..6);
            let mut p1 = p1;
            p1.sort_dedup();
            assert_eq!(p1.entries(), &[(1, 1, 3.5), (5, 2, 1.0)]);
            assert!(reader.next_panel().is_none());
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn pattern_and_skew_fields_match_read() {
            for (tag, text) in [
                (
                    "pattern",
                    "%%MatrixMarket matrix coordinate pattern general\n3 4 3\n1 1\n2 4\n3 2\n",
                ),
                (
                    "skew",
                    "%%MatrixMarket matrix coordinate real skew-symmetric\n4 4 2\n3 1 2\n4 2 -1\n",
                ),
            ] {
                let path = temp_mtx(tag, text);
                let reader = read_panels(&path, 3).unwrap();
                assert_eq!(
                    reassemble(reader).to_csr(),
                    read_str(text).unwrap().to_csr(),
                    "{tag}"
                );
                let _ = std::fs::remove_file(&path);
            }
        }

        #[test]
        fn malformed_inputs_error_like_read() {
            // Preamble failures surface at open; entry failures surface on
            // the first panel — with exactly the same error variants as
            // `read` (shared parser).
            let preamble_cases = [
                ("%%MatrixMarket matrix array real general\n1 1 0\n", "dense"),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2\n",
                    "short size",
                ),
                (
                    "%%MatrixMarket matrix coordinate real general\nx 2 0\n",
                    "bad size",
                ),
            ];
            for (text, tag) in preamble_cases {
                let path = temp_mtx(&format!("bad_{}", tag.replace(' ', "_")), text);
                let open_err = PanelReader::open(&path, 2).unwrap_err();
                let read_err = read_str(text).unwrap_err();
                assert_eq!(
                    std::mem::discriminant(&open_err),
                    std::mem::discriminant(&read_err),
                    "{tag}: {open_err} vs {read_err}"
                );
                let _ = std::fs::remove_file(&path);
            }
            let entry_cases = [
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
                    "missing value",
                ),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
                    "bad value",
                ),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
                    "short count",
                ),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
                    "out of range",
                ),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
                    "zero index",
                ),
            ];
            for (text, tag) in entry_cases {
                let path = temp_mtx(&format!("bad_{}", tag.replace(' ', "_")), text);
                let mut reader = read_panels(&path, 2).unwrap();
                let panel_err = reader.next_panel().unwrap().unwrap_err();
                let read_err = read_str(text).unwrap_err();
                assert_eq!(
                    std::mem::discriminant(&panel_err),
                    std::mem::discriminant(&read_err),
                    "{tag}: {panel_err} vs {read_err}"
                );
                let _ = std::fs::remove_file(&path);
            }
        }

        #[test]
        fn missing_file_is_io_error() {
            assert!(matches!(
                read_panels("/nonexistent/sparch-panels.mtx", 2),
                Err(SparseError::Io(_))
            ));
            assert!(matches!(
                read_row_panels("/nonexistent/sparch-panels.mtx", 2),
                Err(SparseError::Io(_))
            ));
        }
    }

    mod row_panels {
        use super::*;
        use crate::{gen, panel_ranges_by_nnz};

        fn temp_mtx(tag: &str, text: &str) -> std::path::PathBuf {
            let path = std::env::temp_dir().join(format!(
                "sparch_mm_row_panels_{tag}_{}.mtx",
                std::process::id()
            ));
            std::fs::write(&path, text).unwrap();
            path
        }

        /// Re-assembles row panels into one full-shape COO.
        fn reassemble(reader: RowPanelReader) -> Coo {
            let (rows, cols) = (reader.rows(), reader.cols());
            let mut full = Coo::new(rows, cols);
            for panel in reader {
                let (range, coo) = panel.unwrap();
                assert_eq!(coo.rows(), range.len());
                assert_eq!(coo.cols(), cols);
                for &(r, c, v) in coo.entries() {
                    full.push(r + range.start as Index, c, v);
                }
            }
            full
        }

        #[test]
        fn row_panels_reassemble_to_the_full_read() {
            // `read` vs panel-reassembly must agree bit-for-bit (CSR
            // equality compares value bit patterns via ==; the text
            // round-trip itself is exact).
            let m = gen::uniform_random(23, 17, 90, 11).to_coo();
            let path = temp_mtx("reassemble", &write_string(&m));
            for panels in [1, 2, 3, 23, 40] {
                let reader = read_row_panels(&path, panels).unwrap();
                assert_eq!(reader.panels(), panels.min(23), "panels {panels}");
                assert_eq!(reader.declared_nnz(), m.nnz());
                assert_eq!(
                    reassemble(reader).to_csr(),
                    read_file(&path).unwrap().to_csr(),
                    "panels {panels}"
                );
            }
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn row_panel_chunks_are_local_contiguous_and_disjoint() {
            let m = gen::uniform_random(20, 12, 60, 3).to_coo();
            let path = temp_mtx("local", &write_string(&m));
            let reader = read_row_panels(&path, 4).unwrap();
            let mut total = 0usize;
            let mut prev_end = 0usize;
            for panel in reader {
                let (range, coo) = panel.unwrap();
                assert_eq!(range.start, prev_end, "contiguous row coverage");
                prev_end = range.end;
                assert_eq!(coo.rows(), range.len());
                assert_eq!(coo.cols(), 12);
                assert!(coo.entries().iter().all(|e| (e.0 as usize) < range.len()));
                total += coo.nnz();
            }
            assert_eq!(prev_end, 20);
            assert_eq!(total, m.nnz());
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn symmetric_mirrors_land_in_their_own_row_panels() {
            // Entry (5, 2) of a symmetric matrix mirrors to (2, 5): with
            // two panels over 6 rows, the primary lands in row panel 1
            // (rows 3..6) and the mirror in row panel 0 (rows 0..3) —
            // the transpose of the column-panel case.
            let text = "%%MatrixMarket matrix coordinate real symmetric\n6 6 2\n5 2 3.5\n6 6 1\n";
            let path = temp_mtx("symmetric", text);
            let mut reader = read_row_panels(&path, 2).unwrap();
            let (r0, p0) = reader.next_panel().unwrap().unwrap();
            assert_eq!(r0, 0..3);
            assert_eq!(p0.entries(), &[(1, 4, 3.5)], "mirror, localized row");
            let (r1, p1) = reader.next_panel().unwrap().unwrap();
            assert_eq!(r1, 3..6);
            let mut p1 = p1;
            p1.sort_dedup();
            assert_eq!(p1.entries(), &[(1, 1, 3.5), (2, 5, 1.0)]);
            assert!(reader.next_panel().is_none());
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn skew_and_pattern_fields_match_read() {
            for (tag, text) in [
                (
                    "pattern",
                    "%%MatrixMarket matrix coordinate pattern general\n4 3 3\n1 1\n2 3\n4 2\n",
                ),
                (
                    "skew",
                    "%%MatrixMarket matrix coordinate real skew-symmetric\n4 4 2\n3 1 2\n4 2 -1\n",
                ),
            ] {
                let path = temp_mtx(tag, text);
                let reader = read_row_panels(&path, 3).unwrap();
                assert_eq!(
                    reassemble(reader).to_csr(),
                    read_str(text).unwrap().to_csr(),
                    "{tag}"
                );
                let _ = std::fs::remove_file(&path);
            }
        }

        #[test]
        fn malformed_inputs_error_like_read() {
            // The row-panel reader shares `parse_preamble`/`scan_entries`
            // with `read`, so the error taxonomy is identical by
            // construction — pinned here case by case anyway.
            let preamble_cases = [
                ("%%MatrixMarket matrix array real general\n1 1 0\n", "dense"),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2\n",
                    "short size",
                ),
                (
                    "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
                    "bad field",
                ),
            ];
            for (text, tag) in preamble_cases {
                let path = temp_mtx(&format!("bad_{}", tag.replace(' ', "_")), text);
                let open_err = RowPanelReader::open(&path, 2).unwrap_err();
                let read_err = read_str(text).unwrap_err();
                assert_eq!(
                    std::mem::discriminant(&open_err),
                    std::mem::discriminant(&read_err),
                    "{tag}: {open_err} vs {read_err}"
                );
                let _ = std::fs::remove_file(&path);
            }
            let entry_cases = [
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
                    "missing value",
                ),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
                    "bad value",
                ),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
                    "short count",
                ),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
                    "row out of range",
                ),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 9 1\n",
                    "col out of range",
                ),
                (
                    "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
                    "zero index",
                ),
            ];
            for (text, tag) in entry_cases {
                let path = temp_mtx(&format!("bad_{}", tag.replace(' ', "_")), text);
                let mut reader = read_row_panels(&path, 2).unwrap();
                let panel_err = reader.next_panel().unwrap().unwrap_err();
                let read_err = read_str(text).unwrap_err();
                assert_eq!(
                    std::mem::discriminant(&panel_err),
                    std::mem::discriminant(&read_err),
                    "{tag}: {panel_err} vs {read_err}"
                );
                let _ = std::fs::remove_file(&path);
            }
        }

        #[test]
        fn explicit_ranges_mirror_a_balanced_column_split() {
            // The pipeline's pairing: B's row panels must follow A's
            // nnz-balanced column split exactly.
            let m = gen::uniform_random(16, 16, 120, 5).to_coo();
            let path = temp_mtx("explicit", &write_string(&m));
            let weights = scan_col_nnz(&path).unwrap();
            assert_eq!(weights.iter().sum::<usize>(), m.nnz());
            let ranges = panel_ranges_by_nnz(&weights, 4);
            let reader = RowPanelReader::open_with_ranges(&path, ranges.clone()).unwrap();
            let yielded: Vec<_> = reader.map(|p| p.unwrap().0).collect();
            assert_eq!(yielded, ranges);
            let reader = RowPanelReader::open_with_ranges(&path, ranges).unwrap();
            assert_eq!(
                reassemble(reader).to_csr(),
                read_file(&path).unwrap().to_csr()
            );
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        #[should_panic(expected = "does not tile")]
        fn gapped_explicit_ranges_panic() {
            let m = gen::uniform_random(8, 8, 20, 1).to_coo();
            let path = temp_mtx("gapped", &write_string(&m));
            let result = RowPanelReader::open_with_ranges(&path, vec![0..3, 5..8]);
            let _ = std::fs::remove_file(&path);
            let _ = result;
        }

        #[test]
        #[should_panic(expected = "cover only")]
        fn short_explicit_ranges_panic() {
            let m = gen::uniform_random(8, 8, 20, 2).to_coo();
            let path = temp_mtx("short", &write_string(&m));
            let result = PanelReader::open_with_ranges(&path, std::iter::once(0..5).collect());
            let _ = std::fs::remove_file(&path);
            let _ = result;
        }

        #[test]
        fn scan_col_nnz_counts_expanded_entries() {
            // Symmetric expansion: (5, 2) mirrors to (2, 5), so columns
            // 1 and 4 (0-based) each gain one count.
            let text = "%%MatrixMarket matrix coordinate real symmetric\n6 6 2\n5 2 3.5\n6 6 1\n";
            let path = temp_mtx("colnnz", text);
            assert_eq!(scan_col_nnz(&path).unwrap(), vec![0, 1, 0, 0, 1, 1]);
            let _ = std::fs::remove_file(&path);
            // Error taxonomy flows through unchanged.
            let bad = temp_mtx(
                "colnnz_bad",
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 9 1\n",
            );
            assert!(matches!(
                scan_col_nnz(&bad),
                Err(SparseError::IndexOutOfBounds { .. })
            ));
            let _ = std::fs::remove_file(&bad);
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sparch_mm_test.mtx");
        let mut m = Coo::new(5, 5);
        m.push(1, 2, -0.5);
        write_file(&path, &m).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_file(&path);
    }
}
