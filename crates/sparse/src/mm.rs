//! Matrix Market (`.mtx`) reader and writer.
//!
//! The paper evaluates on matrices from the SuiteSparse collection and SNAP,
//! which are distributed in the Matrix Market exchange format. This module
//! implements the `coordinate` variant (the one used for sparse matrices)
//! with `real`, `integer` and `pattern` fields and `general` / `symmetric` /
//! `skew-symmetric` symmetry.
//!
//! # Example
//!
//! ```
//! use sparch_sparse::{mm, Coo};
//!
//! let text = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2.0\n";
//! let m = mm::read_str(text)?;
//! assert_eq!(m.nnz(), 2);
//! assert_eq!(mm::read_str(&mm::write_string(&m))?, m);
//! # Ok::<(), sparch_sparse::SparseError>(())
//! ```

use crate::{Coo, Index, SparseError};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Field type declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Reads a Matrix Market coordinate stream into a [`Coo`] matrix.
///
/// Symmetric and skew-symmetric inputs are expanded to their full general
/// form (mirrored entries materialized), matching how SpGEMM consumes them.
/// Pattern matrices get the value `1.0` for every stored entry.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] on malformed headers, size lines or
/// entries, and [`SparseError::IndexOutOfBounds`] if an entry exceeds the
/// declared shape.
pub fn read<R: Read>(reader: R) -> Result<Coo, SparseError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty stream".into()))?
        .map_err(SparseError::from)?;
    let (field, symmetry) = parse_header(&header)?;

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| SparseError::Parse("missing size line".into()))?
            .map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!("bad size line: {size_line:?}")));
    }
    let rows: usize = dims[0].parse().map_err(|_| bad_num(dims[0]))?;
    let cols: usize = dims[1].parse().map_err(|_| bad_num(dims[1]))?;
    let declared_nnz: usize = dims[2].parse().map_err(|_| bad_num(dims[2]))?;

    let mut coo = Coo::new(rows, cols);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let r: usize = parts
            .next()
            .ok_or_else(|| SparseError::Parse("missing row".into()))?
            .parse()
            .map_err(|_| bad_num(trimmed))?;
        let c: usize = parts
            .next()
            .ok_or_else(|| SparseError::Parse("missing col".into()))?
            .parse()
            .map_err(|_| bad_num(trimmed))?;
        let v: f64 = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => parts
                .next()
                .ok_or_else(|| SparseError::Parse("missing value".into()))?
                .parse()
                .map_err(|_| bad_num(trimmed))?,
        };
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(SparseError::IndexOutOfBounds {
                row: r.saturating_sub(1) as Index,
                col: c.saturating_sub(1) as Index,
                rows,
                cols,
            });
        }
        let (r0, c0) = ((r - 1) as Index, (c - 1) as Index);
        coo.push(r0, c0, v);
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric if r0 != c0 => coo.push(c0, r0, v),
            Symmetry::SkewSymmetric if r0 != c0 => coo.push(c0, r0, -v),
            _ => {}
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(SparseError::Parse(format!(
            "declared {declared_nnz} entries but found {seen}"
        )));
    }
    Ok(coo)
}

/// Reads a Matrix Market string. Convenience wrapper over [`read`].
///
/// # Errors
///
/// Same as [`read`].
pub fn read_str(text: &str) -> Result<Coo, SparseError> {
    read(text.as_bytes())
}

/// Reads a `.mtx` file from disk.
///
/// # Errors
///
/// [`SparseError::Io`] if the file cannot be opened, otherwise as [`read`].
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Coo, SparseError> {
    read(std::fs::File::open(path)?)
}

/// Writes a COO matrix as `coordinate real general` Matrix Market.
///
/// # Errors
///
/// Propagates I/O failures as [`SparseError::Io`].
pub fn write<W: Write>(mut writer: W, m: &Coo) -> Result<(), SparseError> {
    writer.write_all(write_string(m).as_bytes())?;
    Ok(())
}

/// Renders a COO matrix to a Matrix Market string.
pub fn write_string(m: &Coo) -> String {
    let mut s = String::new();
    s.push_str("%%MatrixMarket matrix coordinate real general\n");
    s.push_str("% written by sparch-sparse\n");
    let _ = writeln!(s, "{} {} {}", m.rows(), m.cols(), m.nnz());
    for &(r, c, v) in m.entries() {
        let _ = writeln!(s, "{} {} {}", r + 1, c + 1, v);
    }
    s
}

/// Writes a `.mtx` file to disk.
///
/// # Errors
///
/// [`SparseError::Io`] if the file cannot be created or written.
pub fn write_file<P: AsRef<Path>>(path: P, m: &Coo) -> Result<(), SparseError> {
    write(std::fs::File::create(path)?, m)
}

fn parse_header(line: &str) -> Result<(Field, Symmetry), SparseError> {
    let lower = line.to_ascii_lowercase();
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    if tokens.len() != 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse(format!("bad header: {line:?}")));
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse(format!(
            "only coordinate format is supported, got {:?}",
            tokens[2]
        )));
    }
    let field = match tokens[3] {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(SparseError::Parse(format!("unsupported field {other:?}"))),
    };
    let symmetry = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(SparseError::Parse(format!(
                "unsupported symmetry {other:?}"
            )))
        }
    };
    Ok((field, symmetry))
}

fn bad_num(tok: &str) -> SparseError {
    SparseError::Parse(format!("bad number in {tok:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% a comment\n2 3 2\n1 1 1.5\n2 3 -2\n";
        let m = read_str(text).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.entries(), &[(0, 0, 1.5), (1, 2, -2.0)]);
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5\n3 3 7\n";
        let mut m = read_str(text).unwrap();
        m.sort_dedup();
        assert_eq!(m.entries(), &[(0, 1, 5.0), (1, 0, 5.0), (2, 2, 7.0)]);
    }

    #[test]
    fn parse_skew_symmetric_negates() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3\n";
        let mut m = read_str(text).unwrap();
        m.sort_dedup();
        assert_eq!(m.entries(), &[(0, 1, -3.0), (1, 0, 3.0)]);
    }

    #[test]
    fn parse_pattern_gets_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_str(text).unwrap();
        assert!(m.entries().iter().all(|e| e.2 == 1.0));
    }

    #[test]
    fn rejects_bad_header_and_counts() {
        assert!(read_str("hello\n1 1 0\n").is_err());
        assert!(read_str("%%MatrixMarket matrix array real general\n1 1 0\n").is_err());
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n";
        assert!(matches!(read_str(text), Err(SparseError::Parse(_))));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n";
        assert!(matches!(
            read_str(text),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn one_based_indexing_round_trip() {
        let mut m = Coo::new(3, 4);
        m.push(0, 0, 1.0);
        m.push(2, 3, 4.0);
        let text = write_string(&m);
        assert!(text.contains("3 4 2"));
        assert!(text.contains("1 1 1"));
        assert!(text.contains("3 4 4"));
        let back = read_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_integer_field() {
        let text = "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1 3\n2 2 -7\n";
        let m = read_str(text).unwrap();
        assert_eq!(m.entries(), &[(0, 0, 3.0), (1, 1, -7.0)]);
    }

    #[test]
    fn parse_pattern_symmetric_expands_with_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n";
        let mut m = read_str(text).unwrap();
        m.sort_dedup();
        assert_eq!(m.entries(), &[(0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0)]);
    }

    #[test]
    fn symmetric_diagonal_entries_are_not_mirrored() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 2 9\n";
        let m = read_str(text).unwrap();
        assert_eq!(m.entries(), &[(1, 1, 9.0)]);
    }

    #[test]
    fn malformed_headers_are_errors_not_panics() {
        let cases = [
            "",                                                                // empty stream
            "%%MatrixMarket\n1 1 0\n",                                         // too few tokens
            "%%MatrixMarket vector coordinate real general\n1 1 0\n",          // not a matrix
            "%%MatrixMarket matrix array real general\n1 1 0\n",               // dense format
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",       // unsupported field
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n", // unsupported symmetry
            "%%MatrixMarket matrix coordinate real general\n",          // missing size line
            "%%MatrixMarket matrix coordinate real general\n2 2\n",     // short size line
            "%%MatrixMarket matrix coordinate real general\nx 2 0\n",   // non-numeric size
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n", // missing col
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n", // missing value
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n", // bad value
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n-1 1 1\n", // negative index
        ];
        for text in cases {
            assert!(
                matches!(read_str(text), Err(SparseError::Parse(_))),
                "expected Parse error for {text:?}"
            );
        }
    }

    #[test]
    fn out_of_range_indices_are_errors_not_panics() {
        // One-based format: index 0 is out of range, as is anything past
        // the declared shape.
        let cases = [
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 9 1\n",
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 3\n",
        ];
        for text in cases {
            assert!(
                matches!(read_str(text), Err(SparseError::IndexOutOfBounds { .. })),
                "expected IndexOutOfBounds for {text:?}"
            );
        }
    }

    #[test]
    fn declared_count_must_match_even_with_comments() {
        let text = "%%MatrixMarket matrix coordinate real general\n% c\n2 2 2\n1 1 1\n% mid\n";
        assert!(matches!(read_str(text), Err(SparseError::Parse(_))));
    }

    mod roundtrip {
        use super::*;
        use crate::gen::arb;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // write → read is lossless for arbitrary matrices, including
            // explicit zeros and degenerate 1×N / N×1 shapes.
            #[test]
            fn write_read_round_trip(
                m in arb::csr_with(24, 24, 80, arb::ValueClass::SmallIntWithZeros)
            ) {
                let text = write_string(&m.to_coo());
                let back = read_str(&text).unwrap();
                prop_assert_eq!(back.to_csr(), m);
            }

            #[test]
            fn float_values_survive_the_text_format(
                m in arb::csr_with(16, 16, 60, arb::ValueClass::Float)
            ) {
                let back = read_str(&write_string(&m.to_coo())).unwrap().to_csr();
                // Display/parse of f64 is exact (shortest round-trip repr).
                prop_assert_eq!(back, m);
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sparch_mm_test.mtx");
        let mut m = Coo::new(5, 5);
        m.push(1, 2, -0.5);
        write_file(&path, &m).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_file(&path);
    }
}
