use crate::{Csr, Index, Value};
use serde::{Deserialize, Serialize};

/// A dense row-major matrix used as a correctness oracle for the sparse
/// kernels and the hardware models. Only suitable for small shapes.
///
/// # Example
///
/// ```
/// use sparch_sparse::{Csr, Dense};
///
/// let a = Csr::identity(2).to_dense();
/// let b = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c, b);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<Value>,
}

impl Dense {
    /// Creates a zero-filled `rows x cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[Value]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Dense {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Value {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable reference to the value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut Value {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }

    /// Classic O(n^3) matrix multiply — the oracle against which every
    /// SpGEMM algorithm in this workspace is tested.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Dense) -> Dense {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Dense::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    *out.get_mut(i, j) += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Converts to CSR, dropping exact zeros.
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::Coo::new(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.get(r, c);
                if v != 0.0 {
                    coo.push(r as Index, c as Index, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Maximum absolute element-wise difference between two matrices.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Dense) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Dense::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Dense::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Dense::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Dense::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert_eq!(c.get(0, 0), 3.0);
    }

    #[test]
    fn csr_round_trip_drops_zeros() {
        let d = Dense::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
        let csr = d.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.to_dense(), d);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = Dense::from_rows(&[&[1.0, 2.0]]);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        *b.get_mut(0, 1) = 2.5;
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Dense::zero(2, 3);
        let b = Dense::zero(2, 3);
        let _ = a.matmul(&b);
    }
}
