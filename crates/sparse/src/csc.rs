use crate::{Csr, Index, Value};
use serde::{Deserialize, Serialize};

/// A sparse matrix in Compressed Sparse Column (CSC) format.
///
/// The *un-condensed* outer-product dataflow (OuterSPACE, and SpArch's own
/// ablation step "change back to CSC/CSR matrix format", §III-C) reads the
/// left operand by column; CSC makes that access pattern explicit. SpArch
/// proper replaces this with the condensed view of CSR.
///
/// Invariants mirror [`Csr`] with rows and columns exchanged.
///
/// # Example
///
/// ```
/// use sparch_sparse::{Csr, Csc};
///
/// let a = Csr::identity(3);
/// let c = a.to_csc();
/// assert_eq!(c.col_nnz(1), 1);
/// assert_eq!(c.col(1), (&[1u32][..], &[1.0][..]));
/// assert_eq!(c.to_csr(), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csc {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<Index>,
    values: Vec<Value>,
}

impl Csc {
    /// Builds a CSC matrix from a CSR matrix.
    pub fn from_csr(csr: &Csr) -> Self {
        let t = csr.transpose(); // transpose's rows are our columns
        Csc {
            rows: csr.rows(),
            cols: csr.cols(),
            col_ptr: t.row_ptr().to_vec(),
            row_idx: t.col_indices().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Number of non-zeros stored in column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// The row indices and values of column `c` as parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> (&[Index], &[Value]) {
        let (lo, hi) = (self.col_ptr[c], self.col_ptr[c + 1]);
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// The column pointer array (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Number of columns that contain at least one non-zero. In the
    /// un-condensed outer product this is the number of partial-product
    /// matrices the multiply phase emits.
    pub fn occupied_cols(&self) -> usize {
        (0..self.cols).filter(|&c| self.col_nnz(c) > 0).count()
    }

    /// Estimated in-memory heap footprint in bytes: 12 bytes per stored
    /// entry (4-byte row index + 8-byte value) plus 8 bytes per column
    /// pointer — the CSC twin of [`Csr::estimated_bytes`].
    pub fn estimated_bytes(&self) -> u64 {
        self.nnz() as u64 * 12 + (self.cols as u64 + 1) * 8
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::Coo::new(self.rows, self.cols);
        for c in 0..self.cols {
            let (rows, vals) = self.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                coo.push(r, c as Index, v);
            }
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    fn sample() -> Csr {
        // [[1, 0, 2], [0, 0, 0], [0, 3, 4]]
        let mut b = CsrBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(2, 1, 3.0);
        b.push(2, 2, 4.0);
        b.finish()
    }

    #[test]
    fn from_csr_columns_are_sorted() {
        let c = sample().to_csc();
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.col(0), (&[0u32][..], &[1.0][..]));
        assert_eq!(c.col(1), (&[2u32][..], &[3.0][..]));
        assert_eq!(c.col(2), (&[0u32, 2][..], &[2.0, 4.0][..]));
    }

    #[test]
    fn round_trip_csr() {
        let m = sample();
        assert_eq!(m.to_csc().to_csr(), m);
    }

    #[test]
    fn occupied_cols_counts_partial_matrices() {
        let mut b = CsrBuilder::new(3, 5);
        b.push(0, 1, 1.0);
        b.push(1, 1, 2.0);
        b.push(2, 4, 3.0);
        let c = b.finish().to_csc();
        assert_eq!(c.occupied_cols(), 2);
    }

    #[test]
    fn empty_matrix() {
        let c = Csr::zero(4, 4).to_csc();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.occupied_cols(), 0);
        assert_eq!(c.col_nnz(3), 0);
    }
}
