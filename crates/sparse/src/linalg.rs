//! Element-wise sparse kernels used by the example applications.
//!
//! The paper motivates SpGEMM with triangle counting (ref. 6) and Markov
//! clustering (ref. 7); those applications need a handful of element-wise
//! operations around the core multiply, which live here: Hadamard product,
//! scalar power ("inflation"), column normalization, threshold pruning,
//! and reductions.

use crate::{Csr, CsrBuilder, Index, Value};

/// Element-wise (Hadamard) product `a ∘ b`: entries present in both
/// operands multiply; everything else vanishes.
///
/// Triangle counting computes `(A·A) ∘ A` with this kernel.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn hadamard(a: &Csr, b: &Csr) -> Csr {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let mut out = CsrBuilder::new(a.rows(), a.cols());
    for r in 0..a.rows() {
        let (ca, va) = a.row(r);
        let (cb, vb) = b.row(r);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ca.len() && q < cb.len() {
            match ca[p].cmp(&cb[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    out.push(r as Index, ca[p], va[p] * vb[q]);
                    p += 1;
                    q += 1;
                }
            }
        }
    }
    out.finish()
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add(a: &Csr, b: &Csr) -> Csr {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let mut coo = a.to_coo();
    coo.extend(b.iter());
    coo.sort_dedup();
    coo.to_csr()
}

/// Raises every stored value to `power` (MCL's "inflation" numerator).
pub fn elementwise_power(m: &Csr, power: f64) -> Csr {
    map_values(m, |v| v.powf(power))
}

/// Applies `f` to every stored value, keeping the structure.
pub fn map_values<F: Fn(Value) -> Value>(m: &Csr, f: F) -> Csr {
    Csr::try_new(
        m.rows(),
        m.cols(),
        m.row_ptr().to_vec(),
        m.col_indices().to_vec(),
        m.values().iter().map(|&v| f(v)).collect(),
    )
    .expect("structure unchanged")
}

/// Scales each column so it sums to 1 (column-stochastic form, the MCL
/// normalization step). Columns that sum to zero are left untouched.
pub fn normalize_columns(m: &Csr) -> Csr {
    let mut sums = vec![0.0f64; m.cols()];
    for (_, c, v) in m.iter() {
        sums[c as usize] += v;
    }
    let mut out = m.clone();
    let col_idx: Vec<Index> = out.col_indices().to_vec();
    let values: Vec<Value> = out
        .values()
        .iter()
        .zip(&col_idx)
        .map(|(&v, &c)| {
            let s = sums[c as usize];
            if s != 0.0 {
                v / s
            } else {
                v
            }
        })
        .collect();
    out = Csr::try_new(m.rows(), m.cols(), m.row_ptr().to_vec(), col_idx, values)
        .expect("structure unchanged");
    out
}

/// Drops entries with `|value| < threshold` (MCL pruning).
pub fn prune(m: &Csr, threshold: f64) -> Csr {
    let mut coo = crate::Coo::new(m.rows(), m.cols());
    for (r, c, v) in m.iter() {
        if v.abs() >= threshold {
            coo.push(r, c, v);
        }
    }
    coo.to_csr()
}

/// Sum of all stored values.
pub fn sum(m: &Csr) -> f64 {
    m.values().iter().sum()
}

/// Sum of the diagonal entries.
pub fn trace(m: &Csr) -> f64 {
    (0..m.rows().min(m.cols()))
        .filter_map(|i| m.get(i, i))
        .sum()
}

/// Counts triangles in an undirected graph given its (symmetric, 0/1)
/// adjacency matrix: `trace-free` formulation `Σ (A·A) ∘ A / 6`.
///
/// # Panics
///
/// Panics if `adj` is not square.
pub fn count_triangles(adj: &Csr) -> u64 {
    assert_eq!(adj.rows(), adj.cols(), "adjacency matrix must be square");
    let a2 = crate::algo::gustavson(adj, adj);
    let masked = hadamard(&a2, adj);
    (sum(&masked) / 6.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Coo, Dense};

    fn from_dense(rows: &[&[f64]]) -> Csr {
        Dense::from_rows(rows).to_csr()
    }

    #[test]
    fn hadamard_intersects() {
        let a = from_dense(&[&[1.0, 2.0], &[0.0, 3.0]]);
        let b = from_dense(&[&[5.0, 0.0], &[1.0, 2.0]]);
        let h = hadamard(&a, &b);
        assert_eq!(h.to_dense(), Dense::from_rows(&[&[5.0, 0.0], &[0.0, 6.0]]));
    }

    #[test]
    fn add_unions() {
        let a = from_dense(&[&[1.0, 0.0]]);
        let b = from_dense(&[&[2.0, 3.0]]);
        assert_eq!(add(&a, &b).to_dense(), Dense::from_rows(&[&[3.0, 3.0]]));
    }

    #[test]
    fn power_and_map() {
        let a = from_dense(&[&[2.0, 3.0]]);
        assert_eq!(elementwise_power(&a, 2.0).values(), &[4.0, 9.0]);
        assert_eq!(map_values(&a, |v| -v).values(), &[-2.0, -3.0]);
    }

    #[test]
    fn normalize_columns_is_stochastic() {
        let a = from_dense(&[&[1.0, 4.0], &[3.0, 0.0]]);
        let n = normalize_columns(&a);
        assert!((n.get(0, 0).unwrap() - 0.25).abs() < 1e-12);
        assert!((n.get(1, 0).unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(n.get(0, 1), Some(1.0));
    }

    #[test]
    fn prune_drops_small() {
        let a = from_dense(&[&[0.01, 0.5, -0.8]]);
        let p = prune(&a, 0.1);
        assert_eq!(p.nnz(), 2);
        assert_eq!(p.get(0, 0), None);
    }

    #[test]
    fn trace_and_sum() {
        let a = from_dense(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(trace(&a), 5.0);
        assert_eq!(sum(&a), 10.0);
    }

    #[test]
    fn triangle_count_on_k4() {
        // Complete graph K4 has C(4,3) = 4 triangles.
        let mut coo = Coo::new(4, 4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    coo.push(i, j, 1.0);
                }
            }
        }
        assert_eq!(count_triangles(&coo.to_csr()), 4);
    }

    #[test]
    fn triangle_count_on_path() {
        // Path graph 0-1-2 has no triangles.
        let mut coo = Coo::new(3, 3);
        for (i, j) in [(0u32, 1u32), (1, 0), (1, 2), (2, 1)] {
            coo.push(i, j, 1.0);
        }
        assert_eq!(count_triangles(&coo.to_csr()), 0);
    }
}

/// Sparse matrix × dense vector (SpMV). Not a SpArch workload (the paper
/// targets SpGEMM) but needed by applications around it — e.g. power
/// iterations on the clustered matrices the examples produce.
///
/// # Panics
///
/// Panics if `x.len() != m.cols()`.
pub fn spmv(m: &Csr, x: &[Value]) -> Vec<Value> {
    assert_eq!(x.len(), m.cols(), "vector length must equal matrix columns");
    let mut y = vec![0.0; m.rows()];
    for (slot, r) in y.iter_mut().enumerate() {
        let (cols, vals) = m.row(slot);
        *r = cols
            .iter()
            .zip(vals)
            .map(|(&c, &v)| v * x[c as usize])
            .sum();
    }
    y
}

/// Frobenius norm: `sqrt(Σ v²)` over stored values.
pub fn frobenius_norm(m: &Csr) -> f64 {
    m.values().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Per-row sums of stored values.
pub fn row_sums(m: &Csr) -> Vec<Value> {
    (0..m.rows())
        .map(|r| {
            let (_, vals) = m.row(r);
            vals.iter().sum()
        })
        .collect()
}

/// Per-column sums of stored values.
pub fn col_sums(m: &Csr) -> Vec<Value> {
    let mut sums = vec![0.0; m.cols()];
    for (_, c, v) in m.iter() {
        sums[c as usize] += v;
    }
    sums
}

#[cfg(test)]
mod vector_tests {
    use super::*;
    use crate::Dense;

    #[test]
    fn spmv_known() {
        let m = Dense::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]).to_csr();
        assert_eq!(spmv(&m, &[10.0, 1.0]), vec![12.0, 3.0]);
    }

    #[test]
    fn spmv_matches_dense_product() {
        let m = crate::gen::uniform_random(20, 15, 80, 3);
        let x: Vec<f64> = (0..15).map(|i| i as f64 * 0.5 - 3.0).collect();
        let y = spmv(&m, &x);
        for (r, &yr) in y.iter().enumerate() {
            let expected: f64 = (0..15).map(|c| m.get(r, c).unwrap_or(0.0) * x[c]).sum();
            assert!((yr - expected).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "vector length")]
    fn spmv_shape_mismatch() {
        let m = Csr::identity(3);
        let _ = spmv(&m, &[1.0, 2.0]);
    }

    #[test]
    fn norms_and_sums() {
        let m = Dense::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).to_csr();
        assert!((frobenius_norm(&m) - 5.0).abs() < 1e-12);
        assert_eq!(row_sums(&m), vec![3.0, 4.0]);
        assert_eq!(col_sums(&m), vec![3.0, 4.0]);
        let empty = Csr::zero(2, 2);
        assert_eq!(frobenius_norm(&empty), 0.0);
        assert_eq!(row_sums(&empty), vec![0.0, 0.0]);
    }
}
