//! Sparse-matrix substrate for the SpArch reproduction.
//!
//! SpArch (HPCA 2020) is an accelerator for generalized sparse matrix–matrix
//! multiplication (SpGEMM). This crate provides everything the accelerator
//! model and its baselines need from the "software world":
//!
//! * storage formats — [`Coo`], [`Csr`], [`Csc`] and a [`Dense`] oracle,
//! * a Matrix Market reader/writer ([`mm`]) for SuiteSparse interchange,
//! * deterministic workload generators ([`gen`]) — R-MAT power-law graphs,
//!   Erdős–Rényi, banded, 3-D Poisson stencils, block-sparse DNN layers,
//! * reference software SpGEMM algorithms ([`algo`]) — Gustavson row-wise,
//!   hash-based, heap-based, sort-merge (ESC), inner- and outer-product,
//! * element-wise kernels used by the example applications ([`linalg`]),
//! * structural statistics ([`stats`]) — the quantities SpArch's performance
//!   depends on (nnz/row distribution, condensed-column count, flop counts).
//!
//! # Quick example
//!
//! ```
//! use sparch_sparse::{gen, algo};
//!
//! let a = gen::uniform_random(100, 100, 500, 7);
//! let b = gen::uniform_random(100, 100, 500, 8);
//! let c = algo::gustavson(&a, &b);
//! assert_eq!(c.rows(), 100);
//! assert_eq!(c.cols(), 100);
//! ```

pub mod algo;
mod coo;
mod csc;
mod csr;
mod dense;
mod error;
pub mod gen;
pub mod linalg;
pub mod mm;
pub mod stats;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::{panel_ranges, panel_ranges_by_nnz, Csr, CsrBuilder};
pub use dense::Dense;
pub use error::SparseError;

/// Row/column index type used across the workspace.
///
/// The paper's hardware uses 32-bit row and 32-bit column indices
/// (Table I: "64-bit index (32 bits for row and 32 bits for column)").
pub type Index = u32;

/// Value type. All evaluation in the paper uses IEEE double precision.
pub type Value = f64;

/// One non-zero element in coordinate form: `(row, col, value)`.
pub type Triple = (Index, Index, Value);
