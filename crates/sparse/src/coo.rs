use crate::{Csr, Index, SparseError, Triple, Value};
use serde::{Deserialize, Serialize};

/// A sparse matrix in coordinate (COO) format: an explicit list of
/// `(row, col, value)` triples plus a shape.
///
/// COO is the interchange format of this workspace: generators emit it,
/// the Matrix Market parser produces it, and the hardware models exchange
/// partial matrices in (sorted) COO just like the paper's merge tree
/// ("The partial matrix is represented in COO format ... sorted by row
/// index then column index", §II-A).
///
/// Invariants are deliberately loose — entries may be unsorted and contain
/// duplicates — because that is how raw data arrives. Use
/// [`Coo::sort_dedup`] or conversion to [`Csr`] to canonicalize.
///
/// # Example
///
/// ```
/// use sparch_sparse::Coo;
///
/// let mut m = Coo::new(2, 2);
/// m.push(0, 1, 2.0);
/// m.push(1, 0, 3.0);
/// m.push(0, 1, 1.0); // duplicate coordinate: folded by sort_dedup
/// m.sort_dedup();
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.entries()[0], (0, 1, 3.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<Triple>,
}

impl Coo {
    /// Creates an empty COO matrix with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates a COO matrix from parts without validation.
    ///
    /// Prefer [`Coo::try_from_entries`] when the triples come from an
    /// untrusted source.
    pub fn from_entries(rows: usize, cols: usize, entries: Vec<Triple>) -> Self {
        Coo {
            rows,
            cols,
            entries,
        }
    }

    /// Creates a COO matrix from parts, validating that every index is in
    /// bounds.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] for the first offending
    /// entry.
    pub fn try_from_entries(
        rows: usize,
        cols: usize,
        entries: Vec<Triple>,
    ) -> Result<Self, SparseError> {
        for &(r, c, _) in &entries {
            if r as usize >= rows || c as usize >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        Ok(Coo {
            rows,
            cols,
            entries,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (may include duplicates until
    /// [`Coo::sort_dedup`] is called).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Borrow the raw triples.
    pub fn entries(&self) -> &[Triple] {
        &self.entries
    }

    /// Consumes the matrix and returns the raw triples.
    pub fn into_entries(self) -> Vec<Triple> {
        self.entries
    }

    /// Appends one entry. Panics in debug builds if out of bounds.
    pub fn push(&mut self, row: Index, col: Index, value: Value) {
        debug_assert!(
            (row as usize) < self.rows && (col as usize) < self.cols,
            "entry ({row}, {col}) outside {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Sorts entries by `(row, col)` and folds duplicate coordinates by
    /// summing their values. Entries whose folded value is exactly `0.0`
    /// are kept (explicit zeros are meaningful to the hardware models;
    /// use [`Coo::prune_zeros`] to drop them).
    pub fn sort_dedup(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut out: Vec<Triple> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        self.entries = out;
    }

    /// Removes entries whose value is exactly zero.
    pub fn prune_zeros(&mut self) {
        self.entries.retain(|&(_, _, v)| v != 0.0);
    }

    /// Converts to CSR (sorts and folds duplicates in the process).
    pub fn to_csr(&self) -> Csr {
        let mut sorted = self.clone();
        sorted.sort_dedup();
        Csr::from_sorted_coo(&sorted)
    }

    /// Flattened key `row * cols + col`, the total order the merge hardware
    /// uses ("sorted by row index then column index").
    pub fn linear_key(&self, row: Index, col: Index) -> u64 {
        row as u64 * self.cols as u64 + col as u64
    }
}

impl FromIterator<Triple> for Coo {
    /// Builds a COO whose shape is the tight bounding box of the entries.
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let entries: Vec<Triple> = iter.into_iter().collect();
        let rows = entries.iter().map(|e| e.0 as usize + 1).max().unwrap_or(0);
        let cols = entries.iter().map(|e| e.1 as usize + 1).max().unwrap_or(0);
        Coo {
            rows,
            cols,
            entries,
        }
    }
}

impl Extend<Triple> for Coo {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let m = Coo::new(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn push_and_sort_dedup_folds_duplicates() {
        let mut m = Coo::new(4, 4);
        m.push(2, 1, 1.0);
        m.push(0, 3, 2.0);
        m.push(2, 1, 4.0);
        m.sort_dedup();
        assert_eq!(m.entries(), &[(0, 3, 2.0), (2, 1, 5.0)]);
    }

    #[test]
    fn sort_dedup_keeps_explicit_zero_and_prune_removes_it() {
        let mut m = Coo::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, -1.0);
        m.sort_dedup();
        assert_eq!(m.nnz(), 1);
        m.prune_zeros();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn try_from_entries_validates() {
        let err = Coo::try_from_entries(2, 2, vec![(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { row: 2, .. }));
        let ok = Coo::try_from_entries(2, 2, vec![(1, 1, 1.0)]).unwrap();
        assert_eq!(ok.nnz(), 1);
    }

    #[test]
    fn from_iterator_infers_shape() {
        let m: Coo = vec![(0, 5, 1.0), (3, 2, 2.0)].into_iter().collect();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 6);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut m = Coo::new(4, 4);
        m.extend(vec![(1, 1, 1.0), (2, 2, 2.0)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn linear_key_orders_row_major() {
        let m = Coo::new(10, 10);
        assert!(m.linear_key(0, 9) < m.linear_key(1, 0));
        assert!(m.linear_key(3, 4) < m.linear_key(3, 5));
    }

    #[test]
    fn serde_round_trip() {
        let mut m = Coo::new(2, 2);
        m.push(0, 1, 3.5);
        let json = serde_json::to_string(&m).unwrap();
        let back: Coo = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
