//! Outer-product SpGEMM — the OuterSPACE dataflow (Figure 1 middle) and
//! SpArch's starting point.
//!
//! `A * B = Σ_k (column k of A) ⊗ (row k of B)`: each index `k` yields a
//! rank-1 *partial-product matrix*; all partial matrices must then be
//! merged. Input reuse is perfect (each operand element read once in the
//! multiply phase), output reuse is poor (a "considerable amount of partial
//! matrices" must round-trip through memory before merging — exactly the
//! DRAM traffic SpArch's on-chip merge tree eliminates).
//!
//! [`outer_product_partials`] exposes the intermediate partial matrices so
//! the accelerator models in `sparch-core`/`sparch-baselines` can account
//! their sizes; [`outer_product`] pairwise-merges them to the final result.

use crate::{Coo, Csc, Csr, Triple};

/// Computes the partial-product matrices of `a * b`, one per index `k`
/// whose column of `A` and row of `B` are both non-empty.
///
/// Each partial matrix is a COO triple list sorted by `(row, col)` — the
/// exact stream format the paper's merge tree consumes.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn outer_product_partials(a: &Csr, b: &Csr) -> Vec<Vec<Triple>> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let ac = Csc::from_csr(a);
    let mut partials = Vec::new();
    for k in 0..a.cols() {
        let (ra, va) = ac.col(k);
        if ra.is_empty() || b.row_nnz(k) == 0 {
            continue;
        }
        let (cb, vb) = b.row(k);
        let mut partial = Vec::with_capacity(ra.len() * cb.len());
        // Column of A is sorted by row; row of B is sorted by col; the
        // nested loop therefore emits (row, col)-sorted triples directly.
        for (&r, &av) in ra.iter().zip(va) {
            for (&c, &bv) in cb.iter().zip(vb) {
                partial.push((r, c, av * bv));
            }
        }
        partials.push(partial);
    }
    partials
}

/// Merges two `(row, col)`-sorted COO streams, folding equal coordinates.
/// This is the software analogue of the paper's merger + adder stage.
pub(crate) fn merge_two(left: &[Triple], right: &[Triple]) -> Vec<Triple> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut p, mut q) = (0usize, 0usize);
    while p < left.len() || q < right.len() {
        let take_left = match (left.get(p), right.get(q)) {
            (Some(&(lr, lc, _)), Some(&(rr, rc, _))) => (lr, lc) <= (rr, rc),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!(),
        };
        let (r, c, v) = if take_left {
            let t = left[p];
            p += 1;
            t
        } else {
            let t = right[q];
            q += 1;
            t
        };
        match out.last_mut() {
            Some(&mut (or, oc, ref mut ov)) if or == r && oc == c => *ov += v,
            _ => out.push((r, c, v)),
        }
    }
    out
}

/// Multiplies `a * b` with the outer-product dataflow: expand partial
/// matrices, then merge them pairwise (balanced binary reduction, like a
/// software merge tree).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn outer_product(a: &Csr, b: &Csr) -> Csr {
    let mut layer: Vec<Vec<Triple>> = outer_product_partials(a, b);
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(first) = it.next() {
            match it.next() {
                Some(second) => next.push(merge_two(&first, &second)),
                None => next.push(first),
            }
        }
        layer = next;
    }
    let entries = layer.pop().unwrap_or_default();
    Coo::from_entries(a.rows(), b.cols(), entries).to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo::gustavson, gen, Dense};

    #[test]
    fn partials_are_sorted_rank1() {
        let a = gen::uniform_random(10, 8, 30, 1);
        let b = gen::uniform_random(8, 10, 30, 2);
        for partial in outer_product_partials(&a, &b) {
            assert!(!partial.is_empty());
            for w in partial.windows(2) {
                assert!((w[0].0, w[0].1) < (w[1].0, w[1].1), "partial not sorted");
            }
        }
    }

    #[test]
    fn partial_count_equals_occupied_pairs() {
        let a = gen::uniform_random(20, 15, 40, 3);
        let b = gen::uniform_random(15, 20, 40, 4);
        let ac = Csc::from_csr(&a);
        let expected = (0..15)
            .filter(|&k| ac.col_nnz(k) > 0 && b.row_nnz(k) > 0)
            .count();
        assert_eq!(outer_product_partials(&a, &b).len(), expected);
    }

    #[test]
    fn matches_gustavson_on_random() {
        let pairs = gen::arb::spgemm_pair(17, 55, gen::arb::ValueClass::Float);
        for seed in 0..4 {
            let (a, b) = gen::arb::sample(&pairs, seed);
            assert!(
                outer_product(&a, &b).approx_eq(&gustavson(&a, &b), 1e-9),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn merge_two_folds_shared_coordinates() {
        let left = vec![(0u32, 0u32, 1.0), (0, 2, 2.0)];
        let right = vec![(0u32, 0u32, 3.0), (1, 1, 4.0)];
        let merged = merge_two(&left, &right);
        assert_eq!(merged, vec![(0, 0, 4.0), (0, 2, 2.0), (1, 1, 4.0)]);
    }

    #[test]
    fn merge_two_empty_sides() {
        let some = vec![(0u32, 1u32, 1.0)];
        assert_eq!(merge_two(&some, &[]), some);
        assert_eq!(merge_two(&[], &some), some);
        assert!(merge_two(&[], &[]).is_empty());
    }

    #[test]
    fn rank1_product() {
        // Column [1, 2]^T times row [3, 4]: classic rank-1 expansion.
        let a = Dense::from_rows(&[&[1.0], &[2.0]]).to_csr();
        let b = Dense::from_rows(&[&[3.0, 4.0]]).to_csr();
        let partials = outer_product_partials(&a, &b);
        assert_eq!(partials.len(), 1);
        assert_eq!(
            partials[0],
            vec![(0, 0, 3.0), (0, 1, 4.0), (1, 0, 6.0), (1, 1, 8.0)]
        );
    }
}
