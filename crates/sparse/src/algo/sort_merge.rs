//! Expansion–Sorting–Compression (ESC) SpGEMM — the CUSP strategy:
//! "CUSP also computes matrix rows in parallel and then sorts and merges
//! different rows" (§III-A), and "CUSP uses a sorting algorithm which
//! suffers from higher complexity (sorting network) and excessive DRAM
//! access if on-chip resources are limited" (§IV).
//!
//! The algorithm materializes every scalar product as a COO triple
//! (*expansion*), sorts the whole triple list (*sorting*), and folds
//! duplicate coordinates (*compression*). Its cost is dominated by the
//! O(M log M) sort over M = `multiply_flops` intermediate products — the
//! "poor output locality" extreme that SpArch's streaming merger replaces.

use crate::{Coo, Csr, Index};

/// Multiplies `a * b` by expand–sort–compress.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn sort_merge(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut expanded: Vec<(Index, Index, f64)> = Vec::new();
    for i in 0..a.rows() {
        let (ka, va) = a.row(i);
        for (&k, &av) in ka.iter().zip(va) {
            let (jb, vb) = b.row(k as usize);
            for (&j, &bv) in jb.iter().zip(vb) {
                expanded.push((i as Index, j, av * bv));
            }
        }
    }
    let mut coo = Coo::from_entries(a.rows(), b.cols(), expanded);
    coo.sort_dedup();
    Csr::try_new(
        a.rows(),
        b.cols(),
        row_ptr_of(&coo, a.rows()),
        coo.entries().iter().map(|e| e.1).collect(),
        coo.entries().iter().map(|e| e.2).collect(),
    )
    .expect("sorted deduplicated COO is always valid CSR")
}

fn row_ptr_of(coo: &Coo, rows: usize) -> Vec<usize> {
    let mut ptr = vec![0usize; rows + 1];
    for &(r, _, _) in coo.entries() {
        ptr[r as usize + 1] += 1;
    }
    for i in 0..rows {
        ptr[i + 1] += ptr[i];
    }
    ptr
}

/// Number of intermediate triples the expansion phase materializes — equal
/// to [`crate::algo::multiply_flops`], exposed here because it is the
/// quantity that makes ESC memory-hungry.
pub fn expansion_size(a: &Csr, b: &Csr) -> u64 {
    crate::algo::multiply_flops(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo::gustavson, gen, Dense};

    #[test]
    fn matches_gustavson_on_random() {
        let pairs = gen::arb::spgemm_pair(20, 70, gen::arb::ValueClass::Float);
        for seed in 0..5 {
            let (a, b) = gen::arb::sample(&pairs, seed);
            assert!(
                sort_merge(&a, &b).approx_eq(&gustavson(&a, &b), 1e-9),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn compression_folds_duplicates() {
        let a = Dense::from_rows(&[&[1.0, 1.0, 1.0]]).to_csr();
        let b = Dense::from_rows(&[&[1.0], &[2.0], &[3.0]]).to_csr();
        let c = sort_merge(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), Some(6.0));
    }

    #[test]
    fn expansion_size_equals_flops() {
        let a = gen::uniform_random(10, 10, 30, 1);
        let b = gen::uniform_random(10, 10, 30, 2);
        assert_eq!(expansion_size(&a, &b), crate::algo::multiply_flops(&a, &b));
    }
}
