//! Inner-product SpGEMM — the "vanilla" dataflow of Figure 1(top):
//! every output cell `c_ij` is the dot product of row `i` of `A` with
//! column `j` of `B`.
//!
//! Its defect, which the paper's intro leads with, is *poor input reuse*:
//! the operands are re-fetched for every candidate `(i, j)` pair and most
//! index comparisons find no matching nonzero pair ("redundant input
//! fetches for mismatched nonzero operands"). [`inner_product_stats`]
//! exposes the mismatch ratio so benchmarks can quantify the redundancy.

use crate::{Csc, Csr, CsrBuilder, Index};

/// Multiplies `a * b` with the inner-product dataflow (`B` is internally
/// converted to CSC so its columns are addressable).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn inner_product(a: &Csr, b: &Csr) -> Csr {
    inner_product_impl(a, b).0
}

/// Statistics from an inner-product run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InnerStats {
    /// Index comparisons performed by the merge-style dot products.
    pub comparisons: u64,
    /// Comparisons that matched and produced a multiply.
    pub matches: u64,
    /// Candidate `(i, j)` pairs examined (non-empty row × non-empty col).
    pub pairs: u64,
}

/// Runs [`inner_product`] and also returns its access statistics.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn inner_product_stats(a: &Csr, b: &Csr) -> (Csr, InnerStats) {
    inner_product_impl(a, b)
}

fn inner_product_impl(a: &Csr, b: &Csr) -> (Csr, InnerStats) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let bt = Csc::from_csr(b);
    let mut out = CsrBuilder::new(a.rows(), b.cols());
    let mut stats = InnerStats::default();
    let nonempty_cols: Vec<usize> = (0..b.cols()).filter(|&c| bt.col_nnz(c) > 0).collect();
    for i in 0..a.rows() {
        let (ka, va) = a.row(i);
        if ka.is_empty() {
            continue;
        }
        for &j in &nonempty_cols {
            stats.pairs += 1;
            let (kb, vb) = bt.col(j);
            // Two-pointer merge over the sorted index lists.
            let (mut p, mut q) = (0usize, 0usize);
            let mut acc = 0.0f64;
            let mut hit = false;
            while p < ka.len() && q < kb.len() {
                stats.comparisons += 1;
                match ka[p].cmp(&kb[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        stats.matches += 1;
                        acc += va[p] * vb[q];
                        hit = true;
                        p += 1;
                        q += 1;
                    }
                }
            }
            if hit {
                out.push(i as Index, j as Index, acc);
            }
        }
    }
    (out.finish(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo::gustavson, gen, Dense};

    #[test]
    fn matches_gustavson_on_random() {
        let pairs = gen::arb::spgemm_pair(18, 60, gen::arb::ValueClass::Float);
        for seed in 0..4 {
            let (a, b) = gen::arb::sample(&pairs, seed);
            assert!(
                inner_product(&a, &b).approx_eq(&gustavson(&a, &b), 1e-9),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn known_dot_products() {
        let a = Dense::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 0.0, 3.0]]).to_csr();
        let b = Dense::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]).to_csr();
        let c = inner_product(&a, &b);
        assert_eq!(c.to_dense(), Dense::from_rows(&[&[3.0, 0.0], &[0.0, 3.0]]));
    }

    #[test]
    fn mismatch_ratio_reflects_poor_reuse() {
        // Disjoint index structure: lots of comparisons, zero matches.
        let mut ab = crate::CsrBuilder::new(1, 8);
        for k in [0u32, 2, 4, 6] {
            ab.push(0, k, 1.0);
        }
        let a = ab.finish();
        let mut bb = crate::CsrBuilder::new(8, 1);
        for k in [1u32, 3, 5, 7] {
            bb.push(k, 0, 1.0);
        }
        let b = bb.finish();
        let (c, stats) = inner_product_stats(&a, &b);
        assert_eq!(c.nnz(), 0);
        assert_eq!(stats.matches, 0);
        assert!(stats.comparisons >= 4, "work was done despite empty output");
    }
}
