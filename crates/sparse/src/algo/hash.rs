//! Hash-based SpGEMM (the cuSPARSE strategy: "parallelizes the computation
//! between matrix rows and then merges the partial results of each row with
//! a hash table", §III-A).
//!
//! Each output row is accumulated in an open-addressing hash table sized to
//! the row's upper-bound fill, then extracted and sorted. The hash table's
//! behaviour under power-law rows (long probe chains, resize pressure) is
//! what makes this class degrade on scale-free graphs — visible in the
//! paper's Figure 11 where cuSPARSE loses badly on `cit-Patents` and
//! `web-Google`.

use crate::{Csr, CsrBuilder, Index};

/// One open-addressing slot: empty is marked with `u32::MAX`.
const EMPTY: Index = Index::MAX;

/// Multiplies `a * b` with per-row hash-table accumulation.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn hash_spgemm(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut out = CsrBuilder::with_capacity(a.rows(), b.cols(), a.nnz().max(b.nnz()));
    let mut pairs: Vec<(Index, f64)> = Vec::new();

    for i in 0..a.rows() {
        // Upper bound on this row's fill = Σ nnz(B_k).
        let (ka, va) = a.row(i);
        let upper: usize = ka.iter().map(|&k| b.row_nnz(k as usize)).sum();
        if upper == 0 {
            continue;
        }
        let capacity = (upper * 2).next_power_of_two();
        let mask = capacity - 1;
        let mut keys = vec![EMPTY; capacity];
        let mut vals = vec![0.0f64; capacity];

        for (&k, &av) in ka.iter().zip(va) {
            let (jb, vb) = b.row(k as usize);
            for (&j, &bv) in jb.iter().zip(vb) {
                // Multiplicative hashing (Knuth), linear probing.
                let mut slot = (j as usize).wrapping_mul(0x9E37_79B9) & mask;
                loop {
                    if keys[slot] == j {
                        vals[slot] += av * bv;
                        break;
                    }
                    if keys[slot] == EMPTY {
                        keys[slot] = j;
                        vals[slot] = av * bv;
                        break;
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }

        pairs.clear();
        for (slot, &key) in keys.iter().enumerate() {
            if key != EMPTY {
                pairs.push((key, vals[slot]));
            }
        }
        pairs.sort_unstable_by_key(|&(j, _)| j);
        for &(j, v) in &pairs {
            out.push(i as Index, j, v);
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo::gustavson, gen};

    #[test]
    fn matches_gustavson_on_random() {
        let pairs = gen::arb::spgemm_pair(25, 100, gen::arb::ValueClass::Float);
        for seed in 0..5 {
            let (a, b) = gen::arb::sample(&pairs, seed);
            assert!(
                hash_spgemm(&a, &b).approx_eq(&gustavson(&a, &b), 1e-9),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_gustavson_on_powerlaw() {
        let a = gen::rmat_graph500(128, 8, 1);
        let b = gen::rmat_graph500(128, 8, 2);
        assert!(hash_spgemm(&a, &b).approx_eq(&gustavson(&a, &b), 1e-9));
    }

    #[test]
    fn collision_heavy_row() {
        // A single row whose products hit many columns that collide modulo
        // small powers of two.
        let mut ab = crate::CsrBuilder::new(1, 64);
        for k in 0..64 {
            ab.push(0, k, 1.0);
        }
        let a = ab.finish();
        let mut bb = crate::CsrBuilder::new(64, 256);
        for k in 0..64u32 {
            bb.push(k, (k * 4) % 256, 1.0);
        }
        let b = bb.finish();
        let c = hash_spgemm(&a, &b);
        assert!(c.approx_eq(&gustavson(&a, &b), 1e-12));
    }
}
