//! Hash-based SpGEMM (the cuSPARSE strategy: "parallelizes the computation
//! between matrix rows and then merges the partial results of each row with
//! a hash table", §III-A).
//!
//! Each output row is accumulated in an open-addressing hash table sized to
//! the row's upper-bound fill, then extracted and sorted. The hash table's
//! behaviour under power-law rows (long probe chains, resize pressure) is
//! what makes this class degrade on scale-free graphs — visible in the
//! paper's Figure 11 where cuSPARSE loses badly on `cit-Patents` and
//! `web-Google`.

use crate::{Csr, CsrBuilder, Index};

/// Open-addressing table reused across output rows: grown once to the
/// largest row's capacity, invalidated between rows by a generation stamp
/// instead of an O(capacity) refill-with-EMPTY — the same
/// scratch-reuse discipline as `MultiplyScratch`, retiring the seed's
/// per-row `vec![EMPTY; capacity]` / `vec![0.0; capacity]` allocations.
/// A slot is live for the current row iff its stamp matches; stale slots
/// behave exactly like the seed's freshly-initialized EMPTY slots, so
/// probe sequences (and therefore results) are unchanged.
#[derive(Default)]
struct RowHashScratch {
    keys: Vec<Index>,
    vals: Vec<f64>,
    stamp: Vec<u64>,
    generation: u64,
}

impl RowHashScratch {
    /// Opens a new row needing `capacity` slots (a power of two); returns
    /// the probe mask.
    fn begin_row(&mut self, capacity: usize) -> usize {
        if self.keys.len() < capacity {
            self.keys.resize(capacity, 0);
            self.vals.resize(capacity, 0.0);
            self.stamp.resize(capacity, 0);
        }
        // Stamp 0 is reserved as "never touched" so fresh slots are stale.
        self.generation += 1;
        capacity - 1
    }
}

/// Multiplies `a * b` with per-row hash-table accumulation.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn hash_spgemm(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let bound = super::output_nnz_bound(a, b);
    let mut out = CsrBuilder::with_capacity(a.rows(), b.cols(), bound);
    let mut pairs: Vec<(Index, f64)> = Vec::new();
    let mut table = RowHashScratch::default();

    for i in 0..a.rows() {
        // Upper bound on this row's fill = Σ nnz(B_k).
        let (ka, va) = a.row(i);
        let upper: usize = ka.iter().map(|&k| b.row_nnz(k as usize)).sum();
        if upper == 0 {
            continue;
        }
        let capacity = (upper * 2).next_power_of_two();
        let mask = table.begin_row(capacity);
        let generation = table.generation;

        for (&k, &av) in ka.iter().zip(va) {
            let (jb, vb) = b.row(k as usize);
            for (&j, &bv) in jb.iter().zip(vb) {
                // Multiplicative hashing (Knuth), linear probing.
                let mut slot = (j as usize).wrapping_mul(0x9E37_79B9) & mask;
                loop {
                    if table.stamp[slot] != generation {
                        table.stamp[slot] = generation;
                        table.keys[slot] = j;
                        table.vals[slot] = av * bv;
                        break;
                    }
                    if table.keys[slot] == j {
                        table.vals[slot] += av * bv;
                        break;
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }

        pairs.clear();
        for slot in 0..capacity {
            if table.stamp[slot] == generation {
                pairs.push((table.keys[slot], table.vals[slot]));
            }
        }
        pairs.sort_unstable_by_key(|&(j, _)| j);
        for &(j, v) in &pairs {
            out.push(i as Index, j, v);
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo::gustavson, gen};

    #[test]
    fn matches_gustavson_on_random() {
        crate::algo::test_support::assert_matches_gustavson(hash_spgemm, 25, 100, 5);
    }

    #[test]
    fn matches_gustavson_on_powerlaw() {
        let a = gen::rmat_graph500(128, 8, 1);
        let b = gen::rmat_graph500(128, 8, 2);
        assert!(hash_spgemm(&a, &b).approx_eq(&gustavson(&a, &b), 1e-9));
    }

    #[test]
    fn collision_heavy_row() {
        // A single row whose products hit many columns that collide modulo
        // small powers of two.
        let mut ab = crate::CsrBuilder::new(1, 64);
        for k in 0..64 {
            ab.push(0, k, 1.0);
        }
        let a = ab.finish();
        let mut bb = crate::CsrBuilder::new(64, 256);
        for k in 0..64u32 {
            bb.push(k, (k * 4) % 256, 1.0);
        }
        let b = bb.finish();
        let c = hash_spgemm(&a, &b);
        assert!(c.approx_eq(&gustavson(&a, &b), 1e-12));
    }
}
