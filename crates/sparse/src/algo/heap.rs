//! Heap-based SpGEMM (HeapSpGEMM, Azad et al., ref. 41): each output row is the
//! k-way merge of the contributing scaled rows of `B`, performed with a
//! binary min-heap keyed on column index.
//!
//! "Since the heap is hard to parallelize, the parallelism only comes from
//! processing multiple rows simultaneously, which would suffer from the
//! load-balance problem" (§IV) — the structural reason this class loses on
//! power-law matrices, which our simulation of merge-based SpArch avoids.

use crate::{Csr, CsrBuilder, Index};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cursor into one scaled row of `B` participating in the k-way merge.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Cursor {
    /// Current column (heap key).
    col: Index,
    /// Which contributing row of `B` this cursor walks.
    src: usize,
    /// Position within that row.
    pos: usize,
}

/// Multiplies `a * b` with per-row heap-based k-way merging.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn heap_spgemm(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    // Pre-size from the true per-row flop bound (shared with the
    // Gustavson kernels); the heap itself is reused across rows.
    let bound = super::output_nnz_bound(a, b);
    let mut out = CsrBuilder::with_capacity(a.rows(), b.cols(), bound);
    let mut heap: BinaryHeap<Reverse<Cursor>> = BinaryHeap::new();

    for i in 0..a.rows() {
        let (ka, va) = a.row(i);
        heap.clear();
        for (src, &k) in ka.iter().enumerate() {
            let (jb, _) = b.row(k as usize);
            if !jb.is_empty() {
                heap.push(Reverse(Cursor {
                    col: jb[0],
                    src,
                    pos: 0,
                }));
            }
        }
        let mut current: Option<(Index, f64)> = None;
        while let Some(Reverse(Cursor { col, src, pos })) = heap.pop() {
            let k = ka[src] as usize;
            let (jb, vb) = b.row(k);
            let contribution = va[src] * vb[pos];
            match current {
                Some((c, ref mut acc)) if c == col => *acc += contribution,
                Some((c, acc)) => {
                    out.push(i as Index, c, acc);
                    current = Some((col, contribution));
                    debug_assert!(c < col, "heap must pop in column order");
                }
                None => current = Some((col, contribution)),
            }
            if pos + 1 < jb.len() {
                heap.push(Reverse(Cursor {
                    col: jb[pos + 1],
                    src,
                    pos: pos + 1,
                }));
            }
        }
        if let Some((c, acc)) = current {
            out.push(i as Index, c, acc);
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Dense};

    #[test]
    fn matches_gustavson_on_random() {
        crate::algo::test_support::assert_matches_gustavson(heap_spgemm, 22, 90, 5);
    }

    #[test]
    fn merges_overlapping_rows() {
        // Row 0 of A pulls both rows of B, which share column 1.
        let a = Dense::from_rows(&[&[2.0, 3.0]]).to_csr();
        let b = Dense::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0]]).to_csr();
        let c = heap_spgemm(&a, &b);
        assert_eq!(c.to_dense(), Dense::from_rows(&[&[2.0, 5.0, 3.0]]));
    }

    #[test]
    fn single_contributor_rows() {
        let a = Csr::identity(6);
        let b = gen::uniform_random(6, 6, 12, 77);
        assert!(heap_spgemm(&a, &b).approx_eq(&b, 1e-12));
    }
}
