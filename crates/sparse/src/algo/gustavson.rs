//! Gustavson's row-wise SpGEMM (the algorithm behind Intel MKL's
//! `mkl_sparse_spmm`, used as the paper's CPU baseline).
//!
//! For each row `i` of `A`, accumulate `Σ_k a_ik * B[k, :]` into a sparse
//! accumulator (SPA): a dense value array plus an occupancy list, giving
//! O(flops) time with good constant factors on CPUs.

use crate::{Csr, CsrBuilder, Index};

/// Multiplies `a * b` with Gustavson's row-wise algorithm.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gustavson(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut out = CsrBuilder::with_capacity(a.rows(), b.cols(), a.nnz().max(b.nnz()));
    // Sparse accumulator: dense values + "which row last touched this slot"
    // marker, avoiding an O(cols) clear per row.
    let mut values = vec![0.0f64; b.cols()];
    let mut marker = vec![usize::MAX; b.cols()];
    let mut occupied: Vec<Index> = Vec::new();

    for i in 0..a.rows() {
        occupied.clear();
        let (ka, va) = a.row(i);
        for (&k, &av) in ka.iter().zip(va) {
            let (jb, vb) = b.row(k as usize);
            for (&j, &bv) in jb.iter().zip(vb) {
                let ju = j as usize;
                if marker[ju] != i {
                    marker[ju] = i;
                    values[ju] = av * bv;
                    occupied.push(j);
                } else {
                    values[ju] += av * bv;
                }
            }
        }
        occupied.sort_unstable();
        for &j in &occupied {
            out.push(i as Index, j, values[j as usize]);
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Dense};

    #[test]
    fn small_known_product() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]).to_csr();
        let b = Dense::from_rows(&[&[0.0, 4.0], &[5.0, 0.0]]).to_csr();
        let c = gustavson(&a, &b);
        assert_eq!(
            c.to_dense(),
            Dense::from_rows(&[&[10.0, 4.0], &[15.0, 0.0]])
        );
    }

    #[test]
    fn matches_oracle_on_random() {
        let pairs = gen::arb::spgemm_pair(24, 90, gen::arb::ValueClass::Float);
        for seed in 0..5 {
            let (a, b) = gen::arb::sample(&pairs, seed);
            let c = gustavson(&a, &b);
            assert!(
                c.to_dense()
                    .max_abs_diff(&a.to_dense().matmul(&b.to_dense()))
                    < 1e-10,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn accumulates_duplicates_within_row() {
        // Both k-contributions hit column 0: [1 1] * [[2],[3]] = [5]
        let a = Dense::from_rows(&[&[1.0, 1.0]]).to_csr();
        let b = Dense::from_rows(&[&[2.0], &[3.0]]).to_csr();
        let c = gustavson(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Csr::zero(2, 3);
        let b = Csr::zero(2, 2);
        let _ = gustavson(&a, &b);
    }
}
