//! Gustavson's row-wise SpGEMM (the algorithm behind Intel MKL's
//! `mkl_sparse_spmm`, used as the paper's CPU baseline).
//!
//! For each row `i` of `A`, accumulate `Σ_k a_ik * B[k, :]` into a sparse
//! accumulator (SPA): a dense value array plus an occupancy list, giving
//! O(flops) time with good constant factors on CPUs.
//!
//! Three entry points share the same accumulation order (and therefore
//! produce bit-identical results):
//!
//! * [`gustavson`] — the plain one-shot kernel; allocates its SPA per call
//!   and pre-sizes the output from the per-row flop bound.
//! * [`gustavson_scratch`] / [`gustavson_scratch_on_rows`] — the *panel
//!   kernel*: reuses a caller-owned [`MultiplyScratch`] across calls (zero
//!   per-job SPA allocations after warm-up) and visits only occupied rows,
//!   the condensed-matrix idea from the paper's §II-B applied to narrow
//!   column panels where most rows are empty.
//! * [`gustavson_reference`] — the seed kernel, kept verbatim as the
//!   differential oracle and bench baseline.

use crate::{Csr, CsrBuilder, Index};

/// Upper bound on `nnz(A * B)` restricted to the given `A` rows: per row,
/// the flop count `Σ_k nnz(B_k)` capped at `b.cols()` (a row can't produce
/// more entries than there are columns). One O(rows-nnz) pass, no
/// allocation — cheap enough to run before every multiply to pre-size the
/// output builder exactly once.
fn output_bound_on_rows(a: &Csr, b: &Csr, rows: impl Iterator<Item = usize>) -> usize {
    let mut bound = 0usize;
    for i in rows {
        let (ka, _) = a.row(i);
        let row_flops: usize = ka.iter().map(|&k| b.row_nnz(k as usize)).sum();
        bound += row_flops.min(b.cols());
    }
    bound
}

/// Upper bound on the number of non-zeros in `A * B`: for each `A` row,
/// the smaller of its flop count `Σ_{k ∈ A_i} nnz(B_k)` and `b.cols()`,
/// summed over rows. Unlike a symbolic pass ([`super::product_nnz`]) this
/// needs no marker array — one sweep over `A`'s indices — yet is a true
/// upper bound, which `a.nnz().max(b.nnz())` (the seed's estimate) never
/// was.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn output_nnz_bound(a: &Csr, b: &Csr) -> usize {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    output_bound_on_rows(a, b, 0..a.rows())
}

/// Multiplies `a * b` with Gustavson's row-wise algorithm.
///
/// The output builder is pre-sized from [`output_nnz_bound`] — a true
/// upper bound — so the push loop never climbs a realloc ladder.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gustavson(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let bound = output_bound_on_rows(a, b, 0..a.rows());
    let mut out = CsrBuilder::with_capacity(a.rows(), b.cols(), bound);
    // Sparse accumulator: dense values + "which row last touched this slot"
    // marker, avoiding an O(cols) clear per row.
    let mut values = vec![0.0f64; b.cols()];
    let mut marker = vec![usize::MAX; b.cols()];
    let mut occupied: Vec<Index> = Vec::new();

    for i in 0..a.rows() {
        occupied.clear();
        let (ka, va) = a.row(i);
        for (&k, &av) in ka.iter().zip(va) {
            let (jb, vb) = b.row(k as usize);
            for (&j, &bv) in jb.iter().zip(vb) {
                let ju = j as usize;
                if marker[ju] != i {
                    marker[ju] = i;
                    values[ju] = av * bv;
                    occupied.push(j);
                } else {
                    values[ju] += av * bv;
                }
            }
        }
        occupied.sort_unstable();
        for &j in &occupied {
            out.push(i as Index, j, values[j as usize]);
        }
    }
    out.finish()
}

/// The seed Gustavson kernel, kept verbatim: fresh SPA vectors per call,
/// a full `0..a.rows()` scan, and the historical
/// `a.nnz().max(b.nnz())` capacity guess. It is the differential oracle
/// for [`gustavson_scratch`] and the baseline the `multiply_snapshot`
/// bench measures against — do not optimize it.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gustavson_reference(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut out = CsrBuilder::with_capacity(a.rows(), b.cols(), a.nnz().max(b.nnz()));
    let mut values = vec![0.0f64; b.cols()];
    let mut marker = vec![usize::MAX; b.cols()];
    let mut occupied: Vec<Index> = Vec::new();

    for i in 0..a.rows() {
        occupied.clear();
        let (ka, va) = a.row(i);
        for (&k, &av) in ka.iter().zip(va) {
            let (jb, vb) = b.row(k as usize);
            for (&j, &bv) in jb.iter().zip(vb) {
                let ju = j as usize;
                if marker[ju] != i {
                    marker[ju] = i;
                    values[ju] = av * bv;
                    occupied.push(j);
                } else {
                    values[ju] += av * bv;
                }
            }
        }
        occupied.sort_unstable();
        for &j in &occupied {
            out.push(i as Index, j, values[j as usize]);
        }
    }
    out.finish()
}

/// Reusable working state for [`gustavson_scratch`] — the multiply-stage
/// twin of the merge stage's `MergeScratch`.
///
/// A worker constructs one scratch and feeds every job through it. The SPA
/// arrays (`values` + `marker`) grow monotonically to the widest `b.cols()`
/// seen and are never shrunk or cleared: the marker holds a *generation
/// stamp* that increments per processed row, so slots dirtied by one job
/// can never alias a later job's rows — no O(cols) wipe between jobs, no
/// per-job allocation once warm.
#[derive(Debug, Default)]
pub struct MultiplyScratch {
    /// Dense SPA value array, `>= b.cols()` slots once warmed.
    values: Vec<f64>,
    /// Generation stamp of the row that last touched each slot. Stamp `0`
    /// is reserved as "never touched" so fresh slots are always stale.
    marker: Vec<u64>,
    /// Occupied column slots of the row in flight (unsorted until emit).
    occupied: Vec<Index>,
    /// Occupied-row index computed by [`gustavson_scratch`] when the
    /// caller does not supply one.
    live_rows: Vec<Index>,
    /// Monotone per-row generation counter shared across all jobs.
    stamp: u64,
    /// Calls served entirely from already-sized buffers.
    reuses: u64,
}

impl MultiplyScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        MultiplyScratch::default()
    }

    /// Number of kernel calls that completed without growing any scratch
    /// buffer — the warm-path counter surfaced by the streaming
    /// pipeline's `StageReport::multiply_scratch_reuses`.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Grows the SPA arrays to at least `cols` slots. Returns `true` if
    /// anything grew (i.e. this call is cold for the SPA).
    fn ensure_cols(&mut self, cols: usize) -> bool {
        if self.values.len() >= cols {
            return false;
        }
        self.values.resize(cols, 0.0);
        self.marker.resize(cols, 0);
        true
    }
}

/// Multiplies `a * b` reusing `scratch` across calls, visiting only
/// occupied `A` rows.
///
/// Builds the occupied-row index itself with one O(a.rows()) sweep of the
/// row pointers (kept inside the scratch, so it costs no allocation when
/// warm); callers that already know the live rows — e.g. the streaming
/// pipeline, which records them while slicing panels — should use
/// [`gustavson_scratch_on_rows`] and skip the sweep.
///
/// Bit-identical to [`gustavson`] and [`gustavson_reference`]: same
/// per-`(i, k)` accumulation order, same per-row column sort.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gustavson_scratch(a: &Csr, b: &Csr, scratch: &mut MultiplyScratch) -> Csr {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut live = std::mem::take(&mut scratch.live_rows);
    let live_cap = live.capacity();
    live.clear();
    let row_ptr = a.row_ptr();
    live.extend(
        (0..a.rows())
            .filter(|&r| row_ptr[r + 1] > row_ptr[r])
            .map(|r| r as Index),
    );
    let grew_live = live.capacity() != live_cap;
    let out = multiply_on_rows(a, b, &live, scratch, grew_live);
    scratch.live_rows = live;
    out
}

/// Multiplies `a * b` over a caller-provided occupied-row index `live`.
///
/// `live` must list row indices of `a` in strictly increasing order; rows
/// not listed are emitted empty, so the list must cover every non-empty
/// row for a correct product (listing an empty row is harmless). The
/// streaming pipeline records this index for free while slicing `A` into
/// column panels ([`Csr::col_panel_condensed`]).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`. Unsorted or out-of-bounds `live`
/// entries panic in debug builds.
pub fn gustavson_scratch_on_rows(
    a: &Csr,
    b: &Csr,
    live: &[Index],
    scratch: &mut MultiplyScratch,
) -> Csr {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    multiply_on_rows(a, b, live, scratch, false)
}

fn multiply_on_rows(
    a: &Csr,
    b: &Csr,
    live: &[Index],
    scratch: &mut MultiplyScratch,
    grew_live: bool,
) -> Csr {
    debug_assert!(
        live.windows(2).all(|w| w[0] < w[1]),
        "live rows must be strictly increasing"
    );
    debug_assert!(live.iter().all(|&r| (r as usize) < a.rows()));
    let grew_spa = scratch.ensure_cols(b.cols());
    let occupied_cap = scratch.occupied.capacity();

    let bound = output_bound_on_rows(a, b, live.iter().map(|&r| r as usize));
    let mut out = CsrBuilder::with_capacity(a.rows(), b.cols(), bound);

    for &i in live {
        scratch.stamp += 1;
        let stamp = scratch.stamp;
        scratch.occupied.clear();
        let (ka, va) = a.row(i as usize);
        for (&k, &av) in ka.iter().zip(va) {
            let (jb, vb) = b.row(k as usize);
            for (&j, &bv) in jb.iter().zip(vb) {
                let ju = j as usize;
                if scratch.marker[ju] != stamp {
                    scratch.marker[ju] = stamp;
                    scratch.values[ju] = av * bv;
                    scratch.occupied.push(j);
                } else {
                    scratch.values[ju] += av * bv;
                }
            }
        }
        scratch.occupied.sort_unstable();
        for &j in &scratch.occupied {
            out.push_trusted(i, j, scratch.values[j as usize]);
        }
    }

    if !grew_spa && !grew_live && scratch.occupied.capacity() == occupied_cap {
        scratch.reuses += 1;
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Dense};

    #[test]
    fn small_known_product() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]).to_csr();
        let b = Dense::from_rows(&[&[0.0, 4.0], &[5.0, 0.0]]).to_csr();
        let c = gustavson(&a, &b);
        assert_eq!(
            c.to_dense(),
            Dense::from_rows(&[&[10.0, 4.0], &[15.0, 0.0]])
        );
    }

    #[test]
    fn matches_oracle_on_random() {
        let pairs = gen::arb::spgemm_pair(24, 90, gen::arb::ValueClass::Float);
        for seed in 0..5 {
            let (a, b) = gen::arb::sample(&pairs, seed);
            let c = gustavson(&a, &b);
            assert!(
                c.to_dense()
                    .max_abs_diff(&a.to_dense().matmul(&b.to_dense()))
                    < 1e-10,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn accumulates_duplicates_within_row() {
        // Both k-contributions hit column 0: [1 1] * [[2],[3]] = [5]
        let a = Dense::from_rows(&[&[1.0, 1.0]]).to_csr();
        let b = Dense::from_rows(&[&[2.0], &[3.0]]).to_csr();
        let c = gustavson(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Csr::zero(2, 3);
        let b = Csr::zero(2, 2);
        let _ = gustavson(&a, &b);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn scratch_shape_mismatch_panics() {
        let a = Csr::zero(2, 3);
        let b = Csr::zero(2, 2);
        let _ = gustavson_scratch(&a, &b, &mut MultiplyScratch::new());
    }

    #[test]
    fn output_bound_is_a_true_upper_bound_and_tighter_than_seed_guess() {
        let pairs = gen::arb::spgemm_pair(28, 140, gen::arb::ValueClass::Float);
        for seed in 0..30 {
            let (a, b) = gen::arb::sample(&pairs, seed);
            let bound = output_nnz_bound(&a, &b);
            let actual = gustavson(&a, &b).nnz();
            assert!(
                bound >= actual,
                "seed {seed}: bound {bound} < actual {actual}"
            );
            // The flop bound also dominates the symbolic count.
            assert!(bound as u64 >= super::super::product_nnz(&a, &b));
        }
        // The seed guess was not an upper bound: a dense-ish outer shape
        // blows past `a.nnz().max(b.nnz())` while the flop bound holds.
        let a = Dense::from_rows(&[&[1.0], &[1.0], &[1.0]]).to_csr();
        let b = Dense::from_rows(&[&[1.0, 1.0, 1.0]]).to_csr();
        let seed_guess = a.nnz().max(b.nnz());
        let actual = gustavson(&a, &b).nnz();
        assert!(actual > seed_guess, "{actual} <= {seed_guess}");
        assert!(output_nnz_bound(&a, &b) >= actual);
    }

    #[test]
    fn scratch_kernel_is_bit_identical_across_reuse() {
        let pairs = gen::arb::spgemm_pair(24, 90, gen::arb::ValueClass::Float);
        let mut scratch = MultiplyScratch::new();
        for seed in 0..10 {
            let (a, b) = gen::arb::sample(&pairs, seed);
            let reference = gustavson_reference(&a, &b);
            let fixed = gustavson(&a, &b);
            let scratched = gustavson_scratch(&a, &b, &mut scratch);
            assert_eq!(fixed, reference, "seed {seed}: pre-sizing changed results");
            assert_eq!(scratched.rows(), reference.rows(), "seed {seed}");
            assert_eq!(scratched.cols(), reference.cols(), "seed {seed}");
            assert_eq!(
                scratched.row_ptr(),
                reference.row_ptr(),
                "seed {seed}: structure"
            );
            assert_eq!(
                scratched.col_indices(),
                reference.col_indices(),
                "seed {seed}: structure"
            );
            let bits = |m: &Csr| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&scratched), bits(&reference), "seed {seed}: values");
        }
        assert!(
            scratch.reuses() > 0,
            "scratch never warmed across 10 varied jobs"
        );
    }

    #[test]
    fn scratch_on_rows_honors_partial_live_lists() {
        let a = Dense::from_rows(&[&[1.0, 0.0], &[2.0, 3.0], &[0.0, 4.0]]).to_csr();
        let b = Dense::from_rows(&[&[1.0, 1.0], &[0.0, 5.0]]).to_csr();
        let mut scratch = MultiplyScratch::new();
        // Full live list matches the plain kernel.
        let full = gustavson_scratch_on_rows(&a, &b, &[0, 1, 2], &mut scratch);
        assert_eq!(full, gustavson(&a, &b));
        // Omitted rows come out empty — the condensed contract.
        let partial = gustavson_scratch_on_rows(&a, &b, &[1], &mut scratch);
        assert_eq!(partial.row_nnz(0), 0);
        assert_eq!(partial.row_nnz(2), 0);
        assert_eq!(partial.row(1), full.row(1));
        // Listing an empty row is harmless.
        let a_gap = Dense::from_rows(&[&[1.0, 0.0], &[0.0, 0.0], &[0.0, 4.0]]).to_csr();
        let with_gap = gustavson_scratch_on_rows(&a_gap, &b, &[0, 1, 2], &mut scratch);
        assert_eq!(with_gap, gustavson(&a_gap, &b));
    }

    #[test]
    fn scratch_reuse_counter_tracks_warm_calls() {
        let a = gen::uniform_random(40, 40, 200, 7);
        let b = gen::uniform_random(40, 40, 200, 8);
        let mut scratch = MultiplyScratch::new();
        let cold = gustavson_scratch(&a, &b, &mut scratch);
        let after_cold = scratch.reuses();
        let warm = gustavson_scratch(&a, &b, &mut scratch);
        assert_eq!(cold, warm);
        assert_eq!(
            scratch.reuses(),
            after_cold + 1,
            "second call should be warm"
        );
        // A wider B forces SPA growth: not a reuse.
        let wide = gen::uniform_random(40, 400, 200, 9);
        let _ = gustavson_scratch(&a, &wide, &mut scratch);
        assert_eq!(scratch.reuses(), after_cold + 1);
        let _ = gustavson_scratch(&a, &wide, &mut scratch);
        assert_eq!(scratch.reuses(), after_cold + 2);
    }
}
