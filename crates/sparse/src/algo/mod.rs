//! Software SpGEMM reference algorithms.
//!
//! The paper compares SpArch against four software platforms, each of which
//! is characterized by its *insertion method* into the output matrix
//! (§IV, "Related Work"):
//!
//! * Intel MKL — Gustavson's row-wise algorithm → [`gustavson`],
//! * cuSPARSE — row-parallel with a **hash table** → [`hash_spgemm`],
//! * CUSP — expansion/**sorting**/compression (ESC) → [`sort_merge`],
//! * HeapSpGEMM — row-wise k-way merge with a **heap** → [`heap_spgemm`],
//!
//! plus the two textbook dataflows whose data-reuse trade-off motivates the
//! whole paper:
//!
//! * [`inner_product`] — perfect output reuse, poor input reuse,
//! * [`outer_product`] — perfect input reuse, poor output reuse (the
//!   OuterSPACE dataflow; SpArch's starting point).
//!
//! All functions compute `C = A * B`, require `a.cols() == b.rows()`, and
//! produce identical results up to floating-point summation order. The
//! [`multiply_flops`] helper counts the scalar multiplications any of them
//! performs, which is the paper's FLOP definition (`2*mults` counting adds).

mod gustavson;
mod hash;
mod heap;
mod inner;
mod outer;
mod sort_merge;

pub use gustavson::{
    gustavson, gustavson_reference, gustavson_scratch, gustavson_scratch_on_rows, output_nnz_bound,
    MultiplyScratch,
};
pub use hash::hash_spgemm;
pub use heap::heap_spgemm;
pub use inner::{inner_product, inner_product_stats, InnerStats};
pub use outer::{outer_product, outer_product_partials};
pub use sort_merge::{expansion_size, sort_merge};

use crate::Csr;

/// Number of scalar multiplications in `A * B` (the paper's `M`).
///
/// Each nonzero `a_ik` multiplies every nonzero of row `k` of `B`, so
/// `M = Σ_{(i,k) ∈ A} nnz(B_k)`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn multiply_flops(a: &Csr, b: &Csr) -> u64 {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut flops = 0u64;
    for r in 0..a.rows() {
        let (cols, _) = a.row(r);
        for &k in cols {
            flops += b.row_nnz(k as usize) as u64;
        }
    }
    flops
}

/// Number of non-zeros in the product `A * B` (symbolic phase only).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn product_nnz(a: &Csr, b: &Csr) -> u64 {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut marker = vec![usize::MAX; b.cols()];
    let mut total = 0u64;
    for i in 0..a.rows() {
        let (ka, _) = a.row(i);
        for &k in ka {
            let (jb, _) = b.row(k as usize);
            for &j in jb {
                if marker[j as usize] != i {
                    marker[j as usize] = i;
                    total += 1;
                }
            }
        }
    }
    total
}

/// Compression factor of the task: multiplications per output non-zero.
/// The paper's datasets average "0.5M final results" per `M`
/// multiplications, i.e. a factor near 2.
pub fn compression_factor(a: &Csr, b: &Csr) -> f64 {
    let flops = multiply_flops(a, b);
    let nnz = product_nnz(a, b);
    if nnz == 0 {
        0.0
    } else {
        flops as f64 / nnz as f64
    }
}

/// Shared differential harness for the per-row-accumulator kernels
/// ([`hash_spgemm`], [`heap_spgemm`], …): every kernel is pinned against
/// [`gustavson`] on the same deterministic `gen::arb` sample grid instead
/// of each test re-rolling its own copy of the loop.
#[cfg(test)]
pub(crate) mod test_support {
    use super::gustavson;
    use crate::{gen, Csr};

    pub(crate) fn assert_matches_gustavson(
        kernel: fn(&Csr, &Csr) -> Csr,
        max_dim: usize,
        max_nnz: usize,
        seeds: u64,
    ) {
        let pairs = gen::arb::spgemm_pair(max_dim, max_nnz, gen::arb::ValueClass::Float);
        for seed in 0..seeds {
            let (a, b) = gen::arb::sample(&pairs, seed);
            assert!(
                kernel(&a, &b).approx_eq(&gustavson(&a, &b), 1e-9),
                "kernel disagrees with gustavson on seed {seed}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    /// All algorithms agree with the dense oracle and each other.
    #[test]
    fn all_algorithms_agree_with_oracle() {
        let a = gen::uniform_random(24, 30, 120, 10);
        let b = gen::uniform_random(30, 18, 110, 11);
        let oracle = a.to_dense().matmul(&b.to_dense());
        let algos: Vec<(&str, Csr)> = vec![
            ("gustavson", gustavson(&a, &b)),
            ("hash", hash_spgemm(&a, &b)),
            ("heap", heap_spgemm(&a, &b)),
            ("sort_merge", sort_merge(&a, &b)),
            ("inner", inner_product(&a, &b)),
            ("outer", outer_product(&a, &b)),
        ];
        for (name, c) in &algos {
            assert_eq!(c.rows(), 24, "{name}");
            assert_eq!(c.cols(), 18, "{name}");
            assert!(
                c.to_dense().max_abs_diff(&oracle) < 1e-9,
                "{name} disagrees with the dense oracle"
            );
        }
        for w in algos.windows(2) {
            assert!(
                w[0].1.approx_eq(&w[1].1, 1e-9),
                "{} and {} disagree structurally",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn empty_operands() {
        let a = Csr::zero(5, 4);
        let b = Csr::zero(4, 3);
        for c in [
            gustavson(&a, &b),
            hash_spgemm(&a, &b),
            heap_spgemm(&a, &b),
            sort_merge(&a, &b),
            inner_product(&a, &b),
            outer_product(&a, &b),
        ] {
            assert_eq!(c.nnz(), 0);
            assert_eq!((c.rows(), c.cols()), (5, 3));
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = gen::uniform_random(20, 20, 60, 3);
        let i = Csr::identity(20);
        assert!(gustavson(&a, &i).approx_eq(&a, 1e-12));
        assert!(gustavson(&i, &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn flop_count_matches_definition() {
        // A = [[1,1],[0,1]], B = [[1,0],[1,1]]
        let a = crate::Dense::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).to_csr();
        let b = crate::Dense::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).to_csr();
        // a(0,0)*row0(1) + a(0,1)*row1(2) + a(1,1)*row1(2) = 5
        assert_eq!(multiply_flops(&a, &b), 5);
        assert_eq!(product_nnz(&a, &b), 4);
        assert!((compression_factor(&a, &b) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn product_nnz_matches_actual() {
        let a = gen::rmat_graph500(128, 4, 21);
        let b = gen::rmat_graph500(128, 4, 22);
        let c = gustavson(&a, &b);
        assert_eq!(product_nnz(&a, &b), c.nnz() as u64);
    }
}
