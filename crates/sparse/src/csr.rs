use crate::{Coo, Csc, Dense, Index, SparseError, Value};
use serde::{Deserialize, Serialize};

/// A sparse matrix in Compressed Sparse Row (CSR) format.
///
/// CSR is the storage format SpArch uses for both operands: "We store the
/// left matrix in CSR format. The elements in CSR directly map to those in
/// condensed format" and "the right matrix B is stored in CSR format in
/// HBM" (§II-B, §II-E). The condensed representation of the left matrix is
/// *a different view of the same CSR data* — see `sparch-core`'s
/// `condense` module.
///
/// # Invariants
///
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`, monotone non-decreasing,
///   `row_ptr[rows] == col_idx.len() == values.len()`.
/// * Column indices within each row are strictly increasing.
///
/// Constructors enforce these invariants ([`Csr::try_new`]) or establish
/// them ([`Coo::to_csr`], [`CsrBuilder`]).
///
/// # Example
///
/// ```
/// use sparch_sparse::Csr;
///
/// // 2x3 matrix [[1, 0, 2], [0, 3, 0]]
/// let m = Csr::try_new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])?;
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0, 2.0][..]));
/// assert_eq!(m.get(1, 1), Some(3.0));
/// assert_eq!(m.get(1, 0), None);
/// # Ok::<(), sparch_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<Index>,
    values: Vec<Value>,
}

impl Csr {
    /// Creates an empty `rows x cols` matrix with no stored entries.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as Index).collect(),
            values: vec![1.0; n],
        }
    }

    /// Creates a CSR matrix from raw parts, validating all invariants.
    ///
    /// # Errors
    ///
    /// * [`SparseError::MalformedPointers`] if the pointer array has the
    ///   wrong length, does not start at zero, decreases, or disagrees with
    ///   the index/value array lengths.
    /// * [`SparseError::UnsortedIndices`] if a row's column indices are not
    ///   strictly increasing.
    /// * [`SparseError::IndexOutOfBounds`] if a column index `>= cols`.
    pub fn try_new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<Index>,
        values: Vec<Value>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::MalformedPointers(format!(
                "row_ptr length {} != rows + 1 = {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if row_ptr.first() != Some(&0) {
            return Err(SparseError::MalformedPointers("row_ptr[0] != 0".into()));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::MalformedPointers(format!(
                "col_idx length {} != values length {}",
                col_idx.len(),
                values.len()
            )));
        }
        if *row_ptr.last().unwrap() != col_idx.len() {
            return Err(SparseError::MalformedPointers(format!(
                "row_ptr[rows] = {} != nnz = {}",
                row_ptr.last().unwrap(),
                col_idx.len()
            )));
        }
        for r in 0..rows {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            if lo > hi {
                return Err(SparseError::MalformedPointers(format!(
                    "row_ptr decreases at row {r}"
                )));
            }
            for k in lo..hi {
                if col_idx[k] as usize >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r as Index,
                        col: col_idx[k],
                        rows,
                        cols,
                    });
                }
                if k > lo && col_idx[k] <= col_idx[k - 1] {
                    return Err(SparseError::UnsortedIndices { major: r });
                }
            }
        }
        Ok(Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds from a COO matrix whose entries are already sorted by
    /// `(row, col)` with no duplicate coordinates.
    ///
    /// Most callers should use [`Coo::to_csr`], which canonicalizes first.
    pub(crate) fn from_sorted_coo(coo: &Coo) -> Self {
        let rows = coo.rows();
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in coo.entries() {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = coo.entries().iter().map(|e| e.1).collect();
        let values = coo.entries().iter().map(|e| e.2).collect();
        Csr {
            rows,
            cols: coo.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of cells that are stored: `nnz / (rows * cols)`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array (one entry per non-zero).
    pub fn col_indices(&self) -> &[Index] {
        &self.col_idx
    }

    /// The value array (one entry per non-zero).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of non-zeros stored in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// The column indices and values of row `r` as parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> (&[Index], &[Value]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The value at `(r, c)` if stored, else `None`.
    pub fn get(&self, r: usize, c: usize) -> Option<Value> {
        if r >= self.rows {
            return None;
        }
        let (cols, vals) = self.row(r);
        cols.binary_search(&(c as Index)).ok().map(|k| vals[k])
    }

    /// Length of the longest row — after matrix condensing this is exactly
    /// the number of condensed columns ("the length of the longest row in
    /// the original matrix", §II-B).
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }

    /// Iterates over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, Value)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals.iter())
                .map(move |(&c, &v)| (r as Index, c, v))
        })
    }

    /// Converts to COO (entries come out sorted by `(row, col)`).
    pub fn to_coo(&self) -> Coo {
        Coo::from_entries(self.rows, self.cols, self.iter().collect())
    }

    /// Converts to CSC.
    pub fn to_csc(&self) -> Csc {
        Csc::from_csr(self)
    }

    /// Converts to a dense matrix (test oracle; use only for small shapes).
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zero(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            *d.get_mut(r as usize, c as usize) += v;
        }
        d
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> Csr {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0 as Index; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = next[c as usize];
                col_idx[slot] = r as Index;
                values[slot] = v;
                next[c as usize] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Bytes this matrix occupies in the accelerator's DRAM layout:
    /// 12 bytes per element (4-byte index + 8-byte value, the paper's
    /// "12 bytes per element" prefetch-buffer sizing) plus the row-pointer
    /// array at 8 bytes per row.
    pub fn dram_bytes(&self) -> u64 {
        self.nnz() as u64 * 12 + (self.rows as u64 + 1) * 8
    }

    /// Estimated in-memory heap footprint of this matrix in bytes: the
    /// column-index array (4 bytes per non-zero), the value array (8 bytes
    /// per non-zero) and the row-pointer array (8 bytes per row + 1).
    ///
    /// This is the quantity the streaming pipeline's `MemoryBudget`
    /// accounting and the serving layer's footprint-based dispatch reason
    /// about. (Numerically it coincides with [`Csr::dram_bytes`] because
    /// the accelerator's DRAM layout also spends 12 bytes per element and
    /// 8 per row pointer — but the two model different memories.)
    pub fn estimated_bytes(&self) -> u64 {
        self.nnz() as u64 * 12 + (self.rows as u64 + 1) * 8
    }

    /// Non-zeros per column — the weight vector the nnz-balanced panel
    /// partitioner ([`panel_ranges_by_nnz`]) splits on. `O(nnz)` single
    /// pass over the column indices.
    pub fn col_nnz(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Extracts the column panel `A[:, lo..hi]` as a new `rows × (hi-lo)`
    /// matrix with **localized** column indices (`col - lo`).
    ///
    /// This is the left-operand half of the outer-product panel split the
    /// streaming pipeline uses: `A · B = Σ_p A[:, p] · B[p, :]` over
    /// matching column/row panels `p`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > cols`.
    pub fn col_panel(&self, range: std::ops::Range<usize>) -> Csr {
        assert!(
            range.start <= range.end && range.end <= self.cols,
            "column panel {range:?} outside 0..{}",
            self.cols
        );
        let (lo, hi) = (range.start as Index, range.end as Index);
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            // Columns are strictly increasing, so the panel's entries are
            // one contiguous slice of the row.
            let a = cols.partition_point(|&c| c < lo);
            let b = cols.partition_point(|&c| c < hi);
            col_idx.extend(cols[a..b].iter().map(|&c| c - lo));
            values.extend_from_slice(&vals[a..b]);
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows: self.rows,
            cols: range.len(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Like [`Csr::col_panel`], but also returns the panel's occupied-row
    /// index: the rows (in increasing order) that keep at least one entry
    /// inside the panel. This is the condensed-matrix view of the paper's
    /// §II-B applied at panel granularity — the multiply kernel
    /// ([`crate::algo::gustavson_scratch_on_rows`]) then visits only these
    /// rows instead of scanning all `rows()`, and the index costs nothing
    /// extra because slicing walks every row anyway.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > cols`.
    pub fn col_panel_condensed(&self, range: std::ops::Range<usize>) -> (Csr, Vec<Index>) {
        assert!(
            range.start <= range.end && range.end <= self.cols,
            "column panel {range:?} outside 0..{}",
            self.cols
        );
        let (lo, hi) = (range.start as Index, range.end as Index);
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut live = Vec::new();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let a = cols.partition_point(|&c| c < lo);
            let b = cols.partition_point(|&c| c < hi);
            if b > a {
                live.push(r as Index);
            }
            col_idx.extend(cols[a..b].iter().map(|&c| c - lo));
            values.extend_from_slice(&vals[a..b]);
            row_ptr.push(col_idx.len());
        }
        (
            Csr {
                rows: self.rows,
                cols: range.len(),
                row_ptr,
                col_idx,
                values,
            },
            live,
        )
    }

    /// The rows holding at least one stored entry, in increasing order —
    /// the occupied-row index [`crate::algo::gustavson_scratch_on_rows`]
    /// consumes when the matrix arrives pre-sliced (so no
    /// [`Csr::col_panel_condensed`] pass saw it). One O(rows) sweep of the
    /// row pointers.
    pub fn occupied_rows(&self) -> Vec<Index> {
        (0..self.rows)
            .filter(|&r| self.row_ptr[r + 1] > self.row_ptr[r])
            .map(|r| r as Index)
            .collect()
    }

    /// Extracts the row panel `A[lo..hi, :]` as a new `(hi-lo) × cols`
    /// matrix — the right-operand half of the streaming pipeline's panel
    /// split (see [`Csr::col_panel`]).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > rows`.
    pub fn row_panel(&self, range: std::ops::Range<usize>) -> Csr {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "row panel {range:?} outside 0..{}",
            self.rows
        );
        let (lo, hi) = (self.row_ptr[range.start], self.row_ptr[range.end]);
        let row_ptr = self.row_ptr[range.start..=range.end]
            .iter()
            .map(|&p| p - self.row_ptr[range.start])
            .collect();
        Csr {
            rows: range.len(),
            cols: self.cols,
            row_ptr,
            col_idx: self.col_idx[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// A 64-bit structural+value fingerprint of this matrix (FNV-1a over
    /// the shape, row pointers, column indices and value bit patterns).
    ///
    /// Two matrices with equal fingerprints are, for serving purposes, the
    /// same operand: the `sparch-serve` operand cache keys its stored
    /// CSC/statistics conversions on this value so repeated operands reuse
    /// their conversions across requests. Equal matrices always produce
    /// equal fingerprints; collisions between different matrices are
    /// possible in principle but need ~2^32 distinct operands to expect.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.rows as u64);
        eat(self.cols as u64);
        for &p in &self.row_ptr {
            eat(p as u64);
        }
        for &c in &self.col_idx {
            eat(c as u64);
        }
        for &v in &self.values {
            eat(v.to_bits());
        }
        h
    }

    /// Strict equality of structure plus value agreement within `tol`
    /// (absolute). Useful for comparing results of different SpGEMM
    /// algorithms whose floating-point summation orders differ.
    pub fn approx_eq(&self, other: &Csr, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0))
    }
}

/// Splits `0..total` into up to `panels` contiguous, balanced, non-empty
/// ranges — the panel partitioner shared by [`Csr::col_panel`] /
/// [`Csr::row_panel`] callers, `mm`'s chunked panel reader and the
/// `sparch-stream` executor.
///
/// The first `total % panels` ranges are one element longer, so widths
/// differ by at most one. Degenerate inputs behave sensibly: `panels` is
/// clamped to at least 1, `total == 0` yields no ranges, and `panels >
/// total` yields `total` single-element ranges (empty ranges are never
/// returned).
///
/// # Example
///
/// ```
/// use sparch_sparse::panel_ranges;
///
/// assert_eq!(panel_ranges(10, 3), vec![0..4, 4..7, 7..10]);
/// assert_eq!(panel_ranges(2, 5).len(), 2);
/// assert!(panel_ranges(0, 4).is_empty());
/// ```
pub fn panel_ranges(total: usize, panels: usize) -> Vec<std::ops::Range<usize>> {
    let panels = panels.max(1).min(total.max(1));
    let base = total / panels;
    let extra = total % panels;
    let mut ranges = Vec::with_capacity(panels);
    let mut lo = 0usize;
    for p in 0..panels {
        let width = base + usize::from(p < extra);
        if width == 0 {
            break;
        }
        ranges.push(lo..lo + width);
        lo += width;
    }
    ranges
}

/// Splits `0..weights.len()` into up to `panels` contiguous, non-empty
/// ranges of approximately equal **total weight** — the nnz-balanced
/// variant of [`panel_ranges`], used by the streaming pipeline to split
/// `A`'s inner dimension so every panel carries a similar number of
/// `A`-column non-zeros (and therefore a similar partial-product size,
/// which tightens the Huffman merge plan's weight estimates).
///
/// Boundaries sit at the weight quantiles: panel `p` ends at the first
/// index whose prefix weight reaches `p/panels` of the total, clamped so
/// every range keeps at least one element. The same degenerate contract
/// as [`panel_ranges`] holds: `panels` is clamped to at least 1, an empty
/// weight vector yields no ranges, `panels > len` yields `len` singleton
/// ranges, and an all-zero weight vector falls back to the uniform split.
/// Every range's weight is at most `total/panels + max(weights)` (one
/// column can never be split).
///
/// # Example
///
/// ```
/// use sparch_sparse::panel_ranges_by_nnz;
///
/// // Weight mass is concentrated on the left: the balanced split gives
/// // the heavy columns their own narrow panel.
/// assert_eq!(panel_ranges_by_nnz(&[10, 1, 1, 1, 1, 1], 2), vec![0..1, 1..6]);
/// assert!(panel_ranges_by_nnz(&[], 4).is_empty());
/// ```
pub fn panel_ranges_by_nnz(weights: &[usize], panels: usize) -> Vec<std::ops::Range<usize>> {
    let total = weights.len();
    let panels = panels.max(1).min(total.max(1));
    let total_weight: u64 = weights.iter().map(|&w| w as u64).sum();
    if total == 0 || panels >= total || total_weight == 0 {
        return panel_ranges(total, panels);
    }
    let mut prefix = Vec::with_capacity(total + 1);
    let mut acc = 0u64;
    prefix.push(0u64);
    for &w in weights {
        acc += w as u64;
        prefix.push(acc);
    }
    let mut bounds = Vec::with_capacity(panels + 1);
    bounds.push(0usize);
    for p in 1..panels {
        let target = total_weight * p as u64 / panels as u64;
        let cut = prefix.partition_point(|&w| w < target);
        let prev = *bounds.last().expect("bounds starts non-empty");
        // Keep at least one element in this range and one per remaining
        // panel.
        bounds.push(cut.clamp(prev + 1, total - (panels - p)));
    }
    bounds.push(total);
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Incremental row-by-row CSR constructor.
///
/// Rows must be appended in order; within a row, columns must be pushed in
/// strictly increasing order. This is the natural order in which the
/// streaming hardware models emit results.
///
/// # Example
///
/// ```
/// use sparch_sparse::CsrBuilder;
///
/// let mut b = CsrBuilder::new(3, 3);
/// b.push(0, 1, 1.0);
/// b.push(2, 0, 5.0); // row 1 implicitly empty
/// let m = b.finish();
/// assert_eq!(m.row_nnz(1), 0);
/// assert_eq!(m.get(2, 0), Some(5.0));
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<Index>,
    values: Vec<Value>,
    current_row: usize,
}

impl CsrBuilder {
    /// Starts building a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CsrBuilder {
            rows,
            cols,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
            current_row: 0,
        }
    }

    /// Starts building with capacity for `nnz` non-zeros. The row-pointer
    /// array is reserved in full (`rows + 1` slots), so a builder fed a
    /// true nnz upper bound performs exactly three allocations total.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        CsrBuilder {
            rows,
            cols,
            row_ptr,
            col_idx: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
            current_row: 0,
        }
    }

    /// Appends one entry.
    ///
    /// # Panics
    ///
    /// Panics if `row` is behind the current row, if `col` is not strictly
    /// greater than the previous column in this row, or if either index is
    /// out of bounds.
    pub fn push(&mut self, row: Index, col: Index, value: Value) {
        let row = row as usize;
        assert!(
            row < self.rows,
            "row {row} out of bounds ({} rows)",
            self.rows
        );
        assert!(
            (col as usize) < self.cols,
            "col {col} out of bounds ({} cols)",
            self.cols
        );
        assert!(row >= self.current_row, "rows must be appended in order");
        while self.current_row < row {
            self.row_ptr.push(self.col_idx.len());
            self.current_row += 1;
        }
        if let Some(&last) = self.col_idx.last() {
            if *self.row_ptr.last().unwrap() < self.col_idx.len() {
                assert!(col > last, "columns within a row must strictly increase");
            }
        }
        self.col_idx.push(col);
        self.values.push(value);
    }

    /// Appends one entry whose `(row, col)` the caller guarantees to be
    /// strictly greater than the previous entry's and in bounds — the
    /// hot-path twin of [`CsrBuilder::push`] used by kernels that emit
    /// coordinates in sorted order *by construction* (e.g. a k-way merge
    /// of sorted streams). The contract is checked in debug builds only.
    pub fn push_trusted(&mut self, row: Index, col: Index, value: Value) {
        let row = row as usize;
        debug_assert!(row < self.rows && (col as usize) < self.cols);
        debug_assert!(row >= self.current_row);
        while self.current_row < row {
            self.row_ptr.push(self.col_idx.len());
            self.current_row += 1;
        }
        debug_assert!(
            *self.row_ptr.last().unwrap() == self.col_idx.len()
                || col > *self.col_idx.last().unwrap(),
            "push_trusted coordinates must strictly increase"
        );
        self.col_idx.push(col);
        self.values.push(value);
    }

    /// Number of entries pushed so far.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Finalizes the matrix, closing any trailing empty rows.
    pub fn finish(mut self) -> Csr {
        while self.current_row < self.rows {
            self.row_ptr.push(self.col_idx.len());
            self.current_row += 1;
        }
        Csr {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[1, 0, 2], [0, 0, 0], [0, 3, 4]]
        Csr::try_new(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row(2), (&[1u32, 2][..], &[3.0, 4.0][..]));
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.max_row_nnz(), 2);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn zero_and_identity() {
        let z = Csr::zero(2, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.rows(), 2);
        let i = Csr::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(2, 2), Some(1.0));
        assert_eq!(i.get(0, 1), None);
    }

    #[test]
    fn validation_rejects_bad_pointers() {
        let err = Csr::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedPointers(_)));
        let err = Csr::try_new(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedPointers(_)));
        let err = Csr::try_new(2, 2, vec![0, 2, 1], vec![0, 1, 0], vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedPointers(_)));
    }

    #[test]
    fn validation_rejects_unsorted_and_oob() {
        let err = Csr::try_new(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::UnsortedIndices { major: 0 }));
        let err = Csr::try_new(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }));
        // duplicate column also rejected (strictly increasing)
        let err = Csr::try_new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::UnsortedIndices { .. }));
    }

    #[test]
    fn coo_round_trip() {
        let m = sample();
        let back = m.to_coo().to_csr();
        assert_eq!(m, back);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(2, 0), Some(2.0));
        assert_eq!(t.get(1, 2), Some(3.0));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let mut b = CsrBuilder::new(2, 4);
        b.push(0, 3, 1.0);
        b.push(1, 0, 2.0);
        let m = b.finish();
        let t = m.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(3, 0), Some(1.0));
        assert_eq!(t.get(0, 1), Some(2.0));
    }

    #[test]
    fn builder_handles_empty_rows_and_tail() {
        let mut b = CsrBuilder::new(5, 5);
        b.push(1, 2, 1.0);
        b.push(1, 4, 2.0);
        b.push(3, 0, 3.0);
        let m = b.finish();
        assert_eq!(m.row_nnz(0), 0);
        assert_eq!(m.row_nnz(1), 2);
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.row_nnz(3), 1);
        assert_eq!(m.row_nnz(4), 0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn builder_rejects_duplicate_column() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.0);
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn builder_rejects_backwards_row() {
        let mut b = CsrBuilder::new(3, 3);
        b.push(2, 0, 1.0);
        b.push(1, 0, 2.0);
    }

    #[test]
    fn dram_bytes_matches_layout() {
        let m = sample();
        assert_eq!(m.dram_bytes(), 4 * 12 + 4 * 8);
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = sample();
        let mut b = sample();
        assert!(a.approx_eq(&b, 1e-12));
        b.values[0] += 1e-13;
        assert!(a.approx_eq(&b, 1e-12));
        b.values[0] += 1.0;
        assert!(!a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn fingerprint_distinguishes_and_is_stable() {
        let m = sample();
        assert_eq!(m.fingerprint(), sample().fingerprint());
        // Value change, structure change, and shape change all move it.
        let mut v = sample();
        v.values[0] += 1.0;
        assert_ne!(m.fingerprint(), v.fingerprint());
        assert_ne!(m.fingerprint(), m.transpose().fingerprint());
        assert_ne!(Csr::zero(2, 3).fingerprint(), Csr::zero(3, 2).fingerprint());
        // An explicit zero is a different operand from a missing entry.
        let with_zero = Csr::try_new(1, 2, vec![0, 1], vec![0], vec![0.0]).unwrap();
        let without = Csr::zero(1, 2);
        assert_ne!(with_zero.fingerprint(), without.fingerprint());
    }

    #[test]
    fn estimated_bytes_counts_arrays() {
        let m = sample();
        // 4 nnz * (4 + 8) bytes + 4 row pointers * 8 bytes.
        assert_eq!(m.estimated_bytes(), 4 * 12 + 4 * 8);
        assert_eq!(Csr::zero(0, 0).estimated_bytes(), 8);
    }

    #[test]
    fn panel_ranges_are_balanced_and_cover() {
        for (total, panels) in [(10, 3), (7, 7), (7, 2), (1, 4), (64, 5), (3, 1)] {
            let ranges = panel_ranges(total, panels);
            assert_eq!(ranges.len(), panels.min(total));
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(total));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
                assert!(w[0].len().abs_diff(w[1].len()) <= 1, "unbalanced: {w:?}");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
        assert!(panel_ranges(0, 3).is_empty());
        assert_eq!(panel_ranges(5, 0), vec![0..5], "panels clamps to 1");
    }

    #[test]
    fn panel_ranges_degenerate_cases_are_well_formed() {
        // k == 0: no ranges, whatever the panel count (incl. 0).
        for panels in [0, 1, 7] {
            assert!(panel_ranges(0, panels).is_empty(), "panels {panels}");
        }
        // panels > k: exactly k singleton ranges, never an empty range.
        for (total, panels) in [(1, 2), (2, 5), (3, 100), (1, usize::MAX)] {
            let ranges = panel_ranges(total, panels);
            assert_eq!(ranges.len(), total, "total {total} panels {panels}");
            assert!(ranges.iter().all(|r| r.len() == 1));
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(total));
        }
        // panels == 0 clamps to a single full range.
        assert_eq!(panel_ranges(4, 0), vec![0..4]);
    }

    #[test]
    fn panel_ranges_by_nnz_degenerate_cases_match_uniform() {
        // Empty weight vector (k == 0): no ranges for any panel count.
        for panels in [0, 1, 5] {
            assert!(panel_ranges_by_nnz(&[], panels).is_empty());
        }
        // panels > k: singletons, exactly like the uniform splitter.
        assert_eq!(panel_ranges_by_nnz(&[3, 9], 5), vec![0..1, 1..2]);
        // All-zero weights fall back to the uniform split.
        assert_eq!(panel_ranges_by_nnz(&[0; 10], 3), panel_ranges(10, 3));
        // panels == 0 clamps to one full range.
        assert_eq!(panel_ranges_by_nnz(&[1, 2, 3], 0), vec![0..3]);
    }

    #[test]
    fn panel_ranges_by_nnz_balances_weight_not_width() {
        // 100-weight head, long light tail: the balanced split isolates
        // the head while uniform would drown panel 0 in the tail.
        let mut weights = vec![100usize];
        weights.extend(std::iter::repeat_n(1, 99));
        let ranges = panel_ranges_by_nnz(&weights, 2);
        assert_eq!(ranges, vec![0..1, 1..100]);

        // Structural invariants + the weight bound on random-ish weights.
        let weights: Vec<usize> = (0..57).map(|i| (i * 13 + 5) % 23).collect();
        let total_weight: usize = weights.iter().sum();
        let wmax = *weights.iter().max().unwrap();
        for panels in [1, 2, 5, 9, 57, 80] {
            let ranges = panel_ranges_by_nnz(&weights, panels);
            assert!(ranges.len() <= panels.max(1));
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(57));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
            for r in &ranges {
                let weight: usize = weights[r.clone()].iter().sum();
                assert!(
                    weight <= total_weight / ranges.len() + wmax + 1,
                    "panel {r:?} weight {weight} too heavy for {panels} panels"
                );
            }
        }
    }

    #[test]
    fn col_nnz_histograms_columns() {
        let m = sample(); // [[1, 0, 2], [0, 0, 0], [0, 3, 4]]
        assert_eq!(m.col_nnz(), vec![1, 1, 2]);
        assert_eq!(Csr::zero(3, 4).col_nnz(), vec![0; 4]);
        let total: usize = m.col_nnz().iter().sum();
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn col_panel_localizes_indices() {
        let m = sample(); // [[1, 0, 2], [0, 0, 0], [0, 3, 4]]
        let p = m.col_panel(1..3); // [[0, 2], [0, 0], [3, 4]]
        assert_eq!((p.rows(), p.cols()), (3, 2));
        assert_eq!(p.get(0, 1), Some(2.0));
        assert_eq!(p.get(2, 0), Some(3.0));
        assert_eq!(p.get(2, 1), Some(4.0));
        assert_eq!(p.nnz(), 3);
        // Empty and full panels.
        assert_eq!(m.col_panel(0..0).nnz(), 0);
        assert_eq!(m.col_panel(0..3), m);
    }

    #[test]
    fn col_panel_condensed_matches_and_indexes_live_rows() {
        let m = sample(); // [[1, 0, 2], [0, 0, 0], [0, 3, 4]]
        let (p, live) = m.col_panel_condensed(1..3);
        assert_eq!(p, m.col_panel(1..3));
        assert_eq!(live, vec![0, 2], "row 1 is empty, rows 0 and 2 survive");
        // A panel that only row 2 touches.
        let (p, live) = m.col_panel_condensed(1..2);
        assert_eq!(p, m.col_panel(1..2));
        assert_eq!(live, vec![2]);
        // Empty panel: nothing lives.
        let (p, live) = m.col_panel_condensed(0..0);
        assert_eq!(p.nnz(), 0);
        assert!(live.is_empty());
    }

    #[test]
    fn occupied_rows_skips_empty_rows() {
        let m = sample();
        assert_eq!(m.occupied_rows(), vec![0, 2]);
        assert!(Csr::zero(4, 4).occupied_rows().is_empty());
        assert_eq!(Csr::identity(3).occupied_rows(), vec![0, 1, 2]);
        // Agrees with the condensed slicer over the full width.
        let (_, live) = m.col_panel_condensed(0..m.cols());
        assert_eq!(m.occupied_rows(), live);
    }

    #[test]
    fn row_panel_slices_rows() {
        let m = sample();
        let p = m.row_panel(1..3); // [[0, 0, 0], [0, 3, 4]]
        assert_eq!((p.rows(), p.cols()), (2, 3));
        assert_eq!(p.row_nnz(0), 0);
        assert_eq!(p.get(1, 1), Some(3.0));
        assert_eq!(m.row_panel(0..3), m);
        assert_eq!(m.row_panel(2..2).nnz(), 0);
    }

    #[test]
    fn panels_reassemble_the_product() {
        // Σ_p A[:, p] · B[p, :] must cover every entry of A exactly once.
        let m = sample();
        let mut total = 0;
        for r in panel_ranges(m.cols(), 2) {
            total += m.col_panel(r).nnz();
        }
        assert_eq!(total, m.nnz());
    }

    #[test]
    #[should_panic(expected = "column panel")]
    fn col_panel_out_of_range_panics() {
        let _ = sample().col_panel(1..4);
    }

    #[test]
    fn iter_yields_row_major() {
        let m = sample();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 2, 4.0)]
        );
    }
}
