use std::fmt;

/// Errors produced while constructing or parsing sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: u32,
        /// Offending column index.
        col: u32,
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
    },
    /// A CSR/CSC pointer array is malformed (wrong length, non-monotone,
    /// or inconsistent with the index array length).
    MalformedPointers(String),
    /// Column indices within a CSR row (or row indices within a CSC column)
    /// are not strictly increasing.
    UnsortedIndices {
        /// The row (CSR) or column (CSC) in which the violation occurred.
        major: usize,
    },
    /// Shapes are incompatible for the requested operation.
    ShapeMismatch(String),
    /// A Matrix Market stream could not be parsed.
    Parse(String),
    /// An underlying I/O error, stringified to keep the error type `Clone`.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "entry ({row}, {col}) outside matrix shape {rows}x{cols}"),
            SparseError::MalformedPointers(msg) => write!(f, "malformed pointer array: {msg}"),
            SparseError::UnsortedIndices { major } => {
                write!(f, "indices not strictly increasing in major slice {major}")
            }
            SparseError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            SparseError::Parse(msg) => write!(f, "matrix market parse error: {msg}"),
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 7,
            rows: 4,
            cols: 4,
        };
        let s = e.to_string();
        assert!(s.contains("(5, 7)"));
        assert!(s.contains("4x4"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
