//! Structural statistics of sparse matrices and SpGEMM tasks.
//!
//! SpArch's performance is a function of a handful of structural
//! quantities: the number of condensed columns (= longest row), the
//! nnz/row distribution (Huffman leaf weights), the multiply count `M`,
//! and the output size. This module computes them in one pass so the
//! simulator, scheduler and benchmark reports share definitions.

use crate::{algo, Csc, Csr};
use serde::{Deserialize, Serialize};

/// Summary statistics of one matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of stored non-zeros.
    pub nnz: usize,
    /// `nnz / (rows * cols)`.
    pub density: f64,
    /// Mean non-zeros per row.
    pub avg_row_nnz: f64,
    /// Longest row — the condensed-column count after matrix condensing.
    pub max_row_nnz: usize,
    /// Number of rows with no entries.
    pub empty_rows: usize,
    /// Coefficient of variation of row lengths (skew indicator; power-law
    /// graphs score high, meshes score near zero).
    pub row_cv: f64,
}

impl MatrixStats {
    /// Computes statistics for `m`.
    pub fn of(m: &Csr) -> Self {
        let rows = m.rows();
        let lens: Vec<usize> = (0..rows).map(|r| m.row_nnz(r)).collect();
        let nnz = m.nnz();
        let mean = if rows == 0 {
            0.0
        } else {
            nnz as f64 / rows as f64
        };
        let var = if rows == 0 {
            0.0
        } else {
            lens.iter().map(|&l| (l as f64 - mean).powi(2)).sum::<f64>() / rows as f64
        };
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        MatrixStats {
            rows,
            cols: m.cols(),
            nnz,
            density: m.density(),
            avg_row_nnz: mean,
            max_row_nnz: m.max_row_nnz(),
            empty_rows: lens.iter().filter(|&&l| l == 0).count(),
            row_cv: cv,
        }
    }
}

/// Statistics of one SpGEMM task `C = A * B`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskStats {
    /// Scalar multiplications (`M` in the paper's §III-C model).
    pub multiplies: u64,
    /// Non-zeros of the output matrix (the paper observes ≈ `0.5 M`).
    pub output_nnz: u64,
    /// Floating-point operations counted the paper's way:
    /// one multiply plus one (potential) add per intermediate product.
    pub flops: u64,
    /// `multiplies / output_nnz`.
    pub compression_factor: f64,
    /// Condensed-column count of `A` (number of partial matrices SpArch
    /// multiplies after condensing).
    pub condensed_cols: usize,
    /// Occupied original columns of `A` (number of partial matrices the
    /// *un-condensed* outer product produces).
    pub occupied_cols: usize,
    /// Operational intensity of the outer-product task: `flops` divided by
    /// the bytes of both inputs plus the final output (the paper's
    /// roofline x-axis, ≈ 0.19 flops/byte on its suite).
    pub operational_intensity: f64,
}

impl TaskStats {
    /// Computes task statistics for `a * b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn of(a: &Csr, b: &Csr) -> Self {
        TaskStats::of_with_csc(a, &a.to_csc(), b)
    }

    /// Like [`TaskStats::of`], but reuses an already-materialized CSC view
    /// of `a` instead of converting again. The `sparch-serve` operand cache
    /// keeps one CSC per cached operand precisely so repeated requests pay
    /// for this conversion once.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()` or if `a_csc` has a different
    /// shape from `a`.
    pub fn of_with_csc(a: &Csr, a_csc: &Csc, b: &Csr) -> Self {
        assert_eq!(
            (a.rows(), a.cols()),
            (a_csc.rows(), a_csc.cols()),
            "CSC view does not match the CSR operand"
        );
        let multiplies = algo::multiply_flops(a, b);
        let output_nnz = algo::product_nnz(a, b);
        let flops = 2 * multiplies;
        let bytes = a.dram_bytes() + b.dram_bytes() + output_nnz * 12;
        TaskStats {
            multiplies,
            output_nnz,
            flops,
            compression_factor: if output_nnz == 0 {
                0.0
            } else {
                multiplies as f64 / output_nnz as f64
            },
            condensed_cols: a.max_row_nnz(),
            occupied_cols: a_csc.occupied_cols(),
            operational_intensity: if bytes == 0 {
                0.0
            } else {
                flops as f64 / bytes as f64
            },
        }
    }
}

/// Histogram of row lengths with power-of-two buckets; useful for
/// characterizing suite matrices in reports.
pub fn row_length_histogram(m: &Csr) -> Vec<(usize, usize)> {
    let mut buckets: Vec<(usize, usize)> = Vec::new();
    for r in 0..m.rows() {
        let len = m.row_nnz(r);
        let bucket = if len == 0 { 0 } else { len.next_power_of_two() };
        match buckets.iter_mut().find(|(b, _)| *b == bucket) {
            Some((_, count)) => *count += 1,
            None => buckets.push((bucket, 1)),
        }
    }
    buckets.sort_unstable();
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn matrix_stats_basics() {
        let m = gen::uniform_random(100, 100, 500, 1);
        let s = MatrixStats::of(&m);
        assert_eq!(s.nnz, 500);
        assert!((s.avg_row_nnz - 5.0).abs() < 1e-12);
        assert!((s.density - 0.05).abs() < 1e-12);
        assert!(s.max_row_nnz >= 5);
    }

    #[test]
    fn skew_ranking() {
        let mesh = gen::poisson3d(8, 8, 8);
        let social = gen::rmat_graph500(512, 8, 3);
        assert!(
            MatrixStats::of(&social).row_cv > MatrixStats::of(&mesh).row_cv,
            "power-law graph must be more skewed than a mesh"
        );
    }

    #[test]
    fn task_stats_consistency() {
        let a = gen::uniform_random(50, 50, 250, 2);
        let b = gen::uniform_random(50, 50, 250, 3);
        let t = TaskStats::of(&a, &b);
        assert_eq!(t.flops, 2 * t.multiplies);
        assert!(t.compression_factor >= 1.0);
        assert!(t.condensed_cols <= t.occupied_cols.max(t.condensed_cols));
        assert!(t.operational_intensity > 0.0);
        // Condensing reduces (or keeps) the partial-matrix count.
        assert!(t.condensed_cols <= 50);
    }

    #[test]
    fn condensing_reduces_partial_matrices_dramatically() {
        // The headline claim: condensed columns (= max row nnz) is orders
        // of magnitude below the original column count for sparse inputs.
        let a = gen::uniform_random(4096, 4096, 4096 * 8, 9);
        let t = TaskStats::of(&a, &a);
        assert!(
            t.condensed_cols * 20 < t.occupied_cols,
            "condensed {} vs occupied {}",
            t.condensed_cols,
            t.occupied_cols
        );
        // Even on a skewed power-law graph it still shrinks.
        let a = gen::rmat_graph500(2048, 8, 9);
        let t = TaskStats::of(&a, &a);
        assert!(t.condensed_cols < t.occupied_cols);
    }

    #[test]
    fn cached_csc_gives_identical_stats() {
        let a = gen::rmat_graph500(128, 4, 7);
        let b = gen::uniform_random(128, 96, 600, 8);
        let csc = a.to_csc();
        assert_eq!(TaskStats::of(&a, &b), TaskStats::of_with_csc(&a, &csc, &b));
    }

    #[test]
    fn histogram_counts_all_rows() {
        let m = gen::uniform_random(64, 64, 256, 5);
        let h = row_length_histogram(&m);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn empty_matrix_stats() {
        let s = MatrixStats::of(&Csr::zero(0, 0));
        assert_eq!(s.nnz, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.row_cv, 0.0);
    }
}
