//! The 20-benchmark suite (paper §III-A, Figures 11–12).
//!
//! The paper evaluates on 20 matrices from SuiteSparse (ref. 27) and SNAP
//! (ref. 28).
//! We cannot redistribute them, so each entry records the original's
//! published shape (rows, nnz) and structural class, and builds a
//! structure-matched synthetic surrogate at a configurable scale
//! (DESIGN.md §5): R-MAT for power-law graphs, 3-D stencils for FEM/PDE
//! matrices, banded-plus-random for circuits and road networks, uniform
//! for the quasi-regular combinatorial matrices.
//!
//! `scale` shrinks rows and nnz together, preserving the average degree
//! (the statistic SpArch's behaviour keys on); `scale = 1.0` reproduces
//! the original published shape.

use serde::{Deserialize, Serialize};
use sparch_sparse::{gen, Csr};

/// Structural class of a suite matrix, choosing its surrogate generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatrixClass {
    /// Social/web/citation graph with power-law degrees → R-MAT.
    PowerLaw,
    /// FEM / PDE mesh → 3-D 7-point stencil (plus uniform spill to match
    /// the published density).
    Mesh,
    /// Circuit matrix → banded diagonal plus random coupling.
    Circuit,
    /// Road network → very low, near-uniform degree, local structure.
    Road,
    /// Quasi-regular combinatorial matrix → uniform random.
    Uniform,
}

/// One benchmark matrix: published metadata plus its surrogate recipe.
///
/// Serialize-only: the `&'static str` name cannot be deserialized from
/// owned JSON text, and nothing needs to read entries back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SuiteEntry {
    /// SuiteSparse/SNAP name as in the paper's figures.
    pub name: &'static str,
    /// Published number of rows (square matrices throughout the suite).
    pub rows: usize,
    /// Published number of non-zeros.
    pub nnz: usize,
    /// Structural class → surrogate generator.
    pub class: MatrixClass,
}

impl SuiteEntry {
    /// Average non-zeros per row of the original.
    pub fn avg_degree(&self) -> f64 {
        self.nnz as f64 / self.rows as f64
    }

    /// Builds the surrogate at `scale` (rows and nnz shrink together;
    /// degree is preserved). Deterministic per entry.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn build(&self, scale: f64) -> Csr {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let rows = ((self.rows as f64 * scale) as usize).max(512);
        // Derive nnz from the clamped row count so the average degree —
        // the statistic SpArch's behaviour keys on — survives any scale.
        let nnz = ((rows as f64 * self.avg_degree()) as usize).max(rows);
        let seed = seed_of(self.name);
        match self.class {
            MatrixClass::PowerLaw => {
                let degree = (self.avg_degree().round() as usize).max(2);
                gen::rmat_graph500(rows, degree, seed)
            }
            MatrixClass::Mesh => {
                // Cube grid with the right point count; the 7-point
                // stencil gives the right structure, then uniform spill
                // tops the density up to the published average degree.
                let side = (rows as f64).cbrt().round().max(2.0) as usize;
                let stencil = gen::poisson3d(side, side, side);
                let deficit = nnz.saturating_sub(stencil.nnz() * rows / stencil.rows().max(1));
                if deficit > stencil.nnz() / 4 {
                    // Rebuild at the exact row count with spill.
                    let mut coo = stencil.to_coo();
                    let extra = gen::uniform_random(stencil.rows(), stencil.rows(), deficit, seed);
                    coo.extend(extra.iter());
                    coo.sort_dedup();
                    coo.to_csr()
                } else {
                    stencil
                }
            }
            MatrixClass::Circuit => gen::banded(rows, 1, nnz.saturating_sub(3 * rows), seed),
            MatrixClass::Road => gen::banded(rows, 1, nnz / 10, seed),
            MatrixClass::Uniform => gen::uniform_random(rows, rows, nnz, seed),
        }
    }
}

/// Deterministic seed from the matrix name.
fn seed_of(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// The paper's 20 benchmarks with their published shapes
/// (SuiteSparse/SNAP metadata).
pub fn catalog() -> Vec<SuiteEntry> {
    use MatrixClass::*;
    vec![
        SuiteEntry {
            name: "2cubes_sphere",
            rows: 101_492,
            nnz: 1_647_264,
            class: Mesh,
        },
        SuiteEntry {
            name: "amazon0312",
            rows: 400_727,
            nnz: 3_200_440,
            class: PowerLaw,
        },
        SuiteEntry {
            name: "ca-CondMat",
            rows: 23_133,
            nnz: 186_936,
            class: PowerLaw,
        },
        SuiteEntry {
            name: "cage12",
            rows: 130_228,
            nnz: 2_032_536,
            class: Uniform,
        },
        SuiteEntry {
            name: "cit-Patents",
            rows: 3_774_768,
            nnz: 16_518_948,
            class: PowerLaw,
        },
        SuiteEntry {
            name: "cop20k_A",
            rows: 121_192,
            nnz: 2_624_331,
            class: Mesh,
        },
        SuiteEntry {
            name: "email-Enron",
            rows: 36_692,
            nnz: 367_662,
            class: PowerLaw,
        },
        SuiteEntry {
            name: "facebook",
            rows: 4_039,
            nnz: 88_234,
            class: PowerLaw,
        },
        SuiteEntry {
            name: "filter3D",
            rows: 106_437,
            nnz: 2_707_179,
            class: Mesh,
        },
        SuiteEntry {
            name: "m133-b3",
            rows: 200_200,
            nnz: 800_800,
            class: Uniform,
        },
        SuiteEntry {
            name: "mario002",
            rows: 389_874,
            nnz: 2_101_242,
            class: Mesh,
        },
        SuiteEntry {
            name: "offshore",
            rows: 259_789,
            nnz: 4_242_673,
            class: Mesh,
        },
        SuiteEntry {
            name: "p2p-Gnutella31",
            rows: 62_586,
            nnz: 147_892,
            class: PowerLaw,
        },
        SuiteEntry {
            name: "patents_main",
            rows: 240_547,
            nnz: 560_943,
            class: PowerLaw,
        },
        SuiteEntry {
            name: "poisson3Da",
            rows: 13_514,
            nnz: 352_762,
            class: Mesh,
        },
        SuiteEntry {
            name: "roadNet-CA",
            rows: 1_971_281,
            nnz: 5_533_214,
            class: Road,
        },
        SuiteEntry {
            name: "scircuit",
            rows: 170_998,
            nnz: 958_936,
            class: Circuit,
        },
        SuiteEntry {
            name: "web-Google",
            rows: 916_428,
            nnz: 5_105_039,
            class: PowerLaw,
        },
        SuiteEntry {
            name: "webbase-1M",
            rows: 1_000_005,
            nnz: 3_105_536,
            class: PowerLaw,
        },
        SuiteEntry {
            name: "wiki-Vote",
            rows: 8_297,
            nnz: 103_689,
            class: PowerLaw,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_entries_like_the_paper() {
        assert_eq!(catalog().len(), 20);
        let names: Vec<&str> = catalog().iter().map(|e| e.name).collect();
        assert!(names.contains(&"cit-Patents"));
        assert!(names.contains(&"poisson3Da"));
    }

    #[test]
    fn surrogates_build_at_small_scale() {
        for entry in catalog() {
            let m = entry.build(0.01);
            assert!(m.rows() >= 512, "{}", entry.name);
            assert!(m.nnz() > 0, "{}", entry.name);
            // Average degree within 3x of the original's (structure held).
            let degree = m.nnz() as f64 / m.rows() as f64;
            assert!(
                degree > entry.avg_degree() / 3.0 && degree < entry.avg_degree() * 3.0,
                "{}: surrogate degree {degree:.1} vs original {:.1}",
                entry.name,
                entry.avg_degree()
            );
        }
    }

    #[test]
    fn surrogates_are_deterministic() {
        let e = catalog()[1];
        assert_eq!(e.build(0.02), e.build(0.02));
    }

    #[test]
    fn class_structure_is_visible() {
        let by_name = |n: &str| catalog().into_iter().find(|e| e.name == n).unwrap();
        let social = by_name("wiki-Vote").build(0.5);
        let mesh = by_name("poisson3Da").build(0.5);
        let s_stats = sparch_sparse::stats::MatrixStats::of(&social);
        let m_stats = sparch_sparse::stats::MatrixStats::of(&mesh);
        assert!(
            s_stats.row_cv > m_stats.row_cv,
            "power-law surrogate must be more skewed than the mesh"
        );
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let _ = catalog()[0].build(0.0);
    }
}
