//! Table I: the architectural setup of SpArch, dumped from the default
//! configuration so the remaining experiments are self-describing.

use sparch_bench::{parse_args, print_table, runner};
use sparch_core::SpArchConfig;
use sparch_exec::FnWorkload;

fn main() {
    let args = parse_args();
    // Nothing here benefits from sharding (one instant formatting job);
    // it still goes through ParallelRunner so every figure/table binary
    // exercises the same Workload execution path.
    let job = FnWorkload::new(
        "table1",
        SpArchConfig::default,
        |c: SpArchConfig| -> Vec<Vec<String>> {
            vec![
                vec![
                    "Array Merger".into(),
                    format!(
                        "{0}x{0} hierarchical merger ({1}x{1} top + {1}x{1} low), 64-bit index, 1 GHz",
                        c.merger_width, c.merger_chunk
                    ),
                ],
                vec![
                    "Merge Tree".into(),
                    format!(
                        "{} layers of array merger, merging up to {} arrays",
                        c.tree_layers,
                        c.merge_ways()
                    ),
                ],
                vec![
                    "Multiplier".into(),
                    format!(
                        "2 groups x {} double-precision multipliers",
                        c.multipliers / 2
                    ),
                ],
                vec![
                    "MatA Column Fetcher".into(),
                    format!(
                        "look-ahead buffer of {} elements, 64 column fetchers",
                        c.prefetch.lookahead
                    ),
                ],
                vec![
                    "MatB Row Prefetcher".into(),
                    format!(
                        "{} lines x {} elements x 12 B buffer, {} DRAM-channel fetchers",
                        c.prefetch.lines, c.prefetch.line_elems, c.prefetch.fetchers
                    ),
                ],
                vec![
                    "Partial Matrix Writer".into(),
                    format!("FIFO of {} elements before DRAM", c.writer_fifo),
                ],
                vec![
                    "Main Memory".into(),
                    format!(
                        "{} x 64-bit HBM channels, {:.0} GB/s each ({:.0} GB/s aggregate)",
                        c.hbm.channels,
                        c.hbm.bytes_per_cycle_per_channel,
                        c.hbm.bandwidth_gbs()
                    ),
                ],
                vec![
                    "Peak compute".into(),
                    format!("{:.0} GFLOP/s", c.peak_gflops()),
                ],
            ]
        },
    );
    let rows = runner::runner(&args)
        .quiet()
        .run_all(std::slice::from_ref(&job))
        .remove(0);
    println!("Table I — architectural setup of SpArch\n");
    print_table(&["unit", "setting"], &rows);
}
