//! Figure 16 (and Figure 2): dissecting the performance gain.
//!
//! The ablation ladder relative to OuterSPACE: pipelining multiply/merge
//! alone *slows down* by 5.7× (partially merged results thrash DRAM);
//! matrix condensing then gives 8.8×; the Huffman scheduler 1.5×; the row
//! prefetcher 1.8×; overall 4.2× over OuterSPACE with 2.8× less DRAM
//! traffic.

use serde::Serialize;
use sparch_baselines::OuterSpaceModel;
use sparch_bench::{catalog, geomean, parse_args, print_table, runner};
use sparch_core::{SpArchConfig, SpArchSim};

#[derive(Serialize)]
struct Step {
    name: String,
    gflops: f64,
    dram_mb: f64,
    vs_outerspace: f64,
    step_speedup: f64,
}

fn main() {
    let args = parse_args();
    let outerspace = OuterSpaceModel::default();
    // The full suite is expensive × 4 configs; use a representative
    // subset by default (every other matrix) and let --scale control size.
    let entries: Vec<_> = catalog().into_iter().step_by(2).collect();

    let mut baseline_gflops = Vec::new();
    let mut baseline_mb = Vec::new();
    for entry in &entries {
        let a = entry.build(args.scale);
        let r = outerspace.run(&a, &a);
        baseline_gflops.push(r.gflops);
        baseline_mb.push(r.traffic.total_mb());
    }
    let os_gflops = geomean(&baseline_gflops);
    let os_mb = geomean(&baseline_mb);

    let mut steps: Vec<Step> = vec![Step {
        name: "OuterSPACE baseline".into(),
        gflops: os_gflops,
        dram_mb: os_mb,
        vs_outerspace: 1.0,
        step_speedup: 1.0,
    }];

    let mut prev = os_gflops;
    for (name, config) in SpArchConfig::ablation_ladder() {
        let mut gflops = Vec::new();
        let mut mbs = Vec::new();
        for entry in &entries {
            let a = entry.build(args.scale);
            let r = SpArchSim::new(config.clone()).run(&a, &a);
            gflops.push(r.perf.gflops);
            mbs.push(r.dram_mb());
        }
        let g = geomean(&gflops);
        steps.push(Step {
            name: name.into(),
            gflops: g,
            dram_mb: geomean(&mbs),
            vs_outerspace: g / os_gflops,
            step_speedup: g / prev,
        });
        prev = g;
        eprintln!("done {name}");
    }

    println!(
        "Figure 16 — stepwise gains (scale {}, {} matrices; paper: 0.17x, x8.8, x1.5, x1.8 => 4.2x overall)\n",
        args.scale,
        entries.len()
    );
    let table: Vec<Vec<String>> = steps
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.2}", s.gflops),
                format!("{:.1}", s.dram_mb),
                format!("{:.2}x", s.vs_outerspace),
                format!("{:.2}x", s.step_speedup),
            ]
        })
        .collect();
    print_table(
        &[
            "configuration",
            "GFLOPS",
            "DRAM MB",
            "vs OuterSPACE",
            "step speedup",
        ],
        &table,
    );
    runner::dump_json(&args.json, &steps);
}
