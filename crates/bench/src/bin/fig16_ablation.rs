//! Figure 16 (and Figure 2): dissecting the performance gain.
//!
//! The ablation ladder relative to OuterSPACE: pipelining multiply/merge
//! alone *slows down* by 5.7× (partially merged results thrash DRAM);
//! matrix condensing then gives 8.8×; the Huffman scheduler 1.5×; the row
//! prefetcher 1.8×; overall 4.2× over OuterSPACE with 2.8× less DRAM
//! traffic.

use serde::Serialize;
use sparch_baselines::OuterSpaceModel;
use sparch_bench::{catalog, geomean, parse_args, print_table, runner, SuiteEntry};
use sparch_core::{SimScratch, SpArchConfig, SpArchSim};
use sparch_exec::FnWorkload;
use sparch_sparse::Csr;

#[derive(Serialize)]
struct Step {
    name: String,
    gflops: f64,
    dram_mb: f64,
    vs_outerspace: f64,
    step_speedup: f64,
}

fn main() {
    let args = parse_args();
    // The full suite is expensive × 4 configs; use a representative
    // subset by default (every other matrix) and let --scale control size.
    let entries: Vec<SuiteEntry> = catalog().into_iter().step_by(2).collect();

    let baselines: Vec<(f64, f64)> = runner::run_suite(&entries, &args, |_, a| {
        let r = OuterSpaceModel::default().run(&a, &a);
        (r.gflops, r.traffic.total_mb())
    });
    let os_gflops = geomean(&baselines.iter().map(|b| b.0).collect::<Vec<_>>());
    let os_mb = geomean(&baselines.iter().map(|b| b.1).collect::<Vec<_>>());

    // One workload per ablation rung: each worker builds the surrogate
    // subset, then feeds every matrix through one scratch-reusing sim.
    let scale = args.scale;
    let jobs: Vec<_> = SpArchConfig::ablation_ladder()
        .into_iter()
        .map(|(name, config)| {
            let entries = entries.clone();
            FnWorkload::new(
                name,
                move || entries.iter().map(|e| e.build(scale)).collect::<Vec<Csr>>(),
                move |mats: Vec<Csr>| {
                    let sim = SpArchSim::new(config.clone());
                    let mut scratch = SimScratch::new();
                    let mut gflops = Vec::new();
                    let mut mbs = Vec::new();
                    for a in &mats {
                        let r = sim.run_with_scratch(a, a, &mut scratch);
                        gflops.push(r.perf.gflops);
                        mbs.push(r.dram_mb());
                    }
                    (geomean(&gflops), geomean(&mbs))
                },
            )
        })
        .collect();
    let measured = runner::runner(&args).run_all(&jobs);

    let mut steps: Vec<Step> = vec![Step {
        name: "OuterSPACE baseline".into(),
        gflops: os_gflops,
        dram_mb: os_mb,
        vs_outerspace: 1.0,
        step_speedup: 1.0,
    }];
    let mut prev = os_gflops;
    for ((name, _), (g, mb)) in SpArchConfig::ablation_ladder().into_iter().zip(measured) {
        steps.push(Step {
            name: name.into(),
            gflops: g,
            dram_mb: mb,
            vs_outerspace: g / os_gflops,
            step_speedup: g / prev,
        });
        prev = g;
    }

    println!(
        "Figure 16 — stepwise gains (scale {}, {} matrices; paper: 0.17x, x8.8, x1.5, x1.8 => 4.2x overall)\n",
        args.scale,
        entries.len()
    );
    let table: Vec<Vec<String>> = steps
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.2}", s.gflops),
                format!("{:.1}", s.dram_mb),
                format!("{:.2}x", s.vs_outerspace),
                format!("{:.2}x", s.step_speedup),
            ]
        })
        .collect();
    print_table(
        &[
            "configuration",
            "GFLOPS",
            "DRAM MB",
            "vs OuterSPACE",
            "step speedup",
        ],
        &table,
    );
    runner::dump_json(&args.json, &steps);
}
