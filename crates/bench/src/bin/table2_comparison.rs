//! Table II: comparison with OuterSPACE on area, power and memory
//! bandwidth utilization.
//!
//! Area and the utilization are produced by our models; power is the
//! measured average over a slice of the suite. OuterSPACE's column uses
//! its published figures (87 mm² at 32 nm, 12.39 W, 48.3 % utilization).

use sparch_baselines::OuterSpaceModel;
use sparch_bench::{catalog, parse_args, print_table, runner, SuiteEntry};
use sparch_core::{SpArchConfig, SpArchSim};

fn main() {
    let args = parse_args();
    let os = OuterSpaceModel::default();

    let entries: Vec<SuiteEntry> = catalog().into_iter().step_by(2).collect();
    // Per matrix: (average power W, bandwidth utilization, total area mm²).
    let samples: Vec<(f64, f64, f64)> = runner::run_suite(&entries, &args, |_, a| {
        let r = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        (
            r.avg_power_w(),
            r.perf.bandwidth_utilization,
            r.area.total(),
        )
    });
    let avg =
        |f: fn(&(f64, f64, f64)) -> f64| samples.iter().map(f).sum::<f64>() / samples.len() as f64;
    let area = samples[0].2;

    println!(
        "Table II — comparison with OuterSPACE (scale {})\n",
        args.scale
    );
    print_table(
        &[
            "quantity",
            "SpArch (measured)",
            "SpArch (paper)",
            "OuterSPACE (published)",
        ],
        &[
            vec![
                "technology".into(),
                "40 nm (modelled)".into(),
                "40 nm".into(),
                "32 nm".into(),
            ],
            vec![
                "area (mm2)".into(),
                format!("{area:.2}"),
                "28.49".into(),
                format!("{:.0}", os.area_mm2),
            ],
            vec![
                "power (W)".into(),
                format!("{:.2}", avg(|s| s.0)),
                "9.26".into(),
                format!("{:.2}", os.power_w),
            ],
            vec![
                "DRAM".into(),
                "HBM @ 128 GB/s".into(),
                "HBM @ 128 GB/s".into(),
                "HBM @ 128 GB/s".into(),
            ],
            vec![
                "bandwidth utilization".into(),
                format!("{:.1}%", avg(|s| s.1) * 100.0),
                "68.6%".into(),
                format!("{:.1}%", os.utilization * 100.0),
            ],
        ],
    );
}
