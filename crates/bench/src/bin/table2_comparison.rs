//! Table II: comparison with OuterSPACE on area, power and memory
//! bandwidth utilization.
//!
//! Area and the utilization are produced by our models; power is the
//! measured average over a slice of the suite. OuterSPACE's column uses
//! its published figures (87 mm² at 32 nm, 12.39 W, 48.3 % utilization).

use sparch_baselines::OuterSpaceModel;
use sparch_bench::{catalog, parse_args, print_table};
use sparch_core::{SpArchConfig, SpArchSim};

fn main() {
    let args = parse_args();
    let sim = SpArchSim::new(SpArchConfig::default());
    let os = OuterSpaceModel::default();

    let mut power = Vec::new();
    let mut util = Vec::new();
    let mut area = None;
    for entry in catalog().into_iter().step_by(2) {
        let a = entry.build(args.scale);
        let r = sim.run(&a, &a);
        power.push(r.avg_power_w());
        util.push(r.perf.bandwidth_utilization);
        area = Some(r.area.total());
        eprintln!("done {}", entry.name);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    println!(
        "Table II — comparison with OuterSPACE (scale {})\n",
        args.scale
    );
    print_table(
        &[
            "quantity",
            "SpArch (measured)",
            "SpArch (paper)",
            "OuterSPACE (published)",
        ],
        &[
            vec![
                "technology".into(),
                "40 nm (modelled)".into(),
                "40 nm".into(),
                "32 nm".into(),
            ],
            vec![
                "area (mm2)".into(),
                format!("{:.2}", area.unwrap()),
                "28.49".into(),
                format!("{:.0}", os.area_mm2),
            ],
            vec![
                "power (W)".into(),
                format!("{:.2}", avg(&power)),
                "9.26".into(),
                format!("{:.2}", os.power_w),
            ],
            vec![
                "DRAM".into(),
                "HBM @ 128 GB/s".into(),
                "HBM @ 128 GB/s".into(),
                "HBM @ 128 GB/s".into(),
            ],
            vec![
                "bandwidth utilization".into(),
                format!("{:.1}%", avg(&util) * 100.0),
                "68.6%".into(),
                format!("{:.1}%", os.utilization * 100.0),
            ],
        ],
    );
}
