//! Table III: energy breakdown per FLOP (computation / SRAM / DRAM),
//! SpArch measured vs the paper's published values and OuterSPACE's.

use sparch_bench::{catalog, parse_args, print_table};
use sparch_core::{SpArchConfig, SpArchSim};
use sparch_mem::EnergyModel;

fn main() {
    let args = parse_args();
    let sim = SpArchSim::new(SpArchConfig::default());

    let mut comp = 0.0f64;
    let mut sram = 0.0f64;
    let mut dram = 0.0f64;
    let mut flops = 0u64;
    for entry in catalog().into_iter().step_by(2) {
        let a = entry.build(args.scale);
        let r = sim.run(&a, &a);
        let (c, s, d) = r.energy.by_category();
        comp += c;
        sram += s;
        dram += d;
        flops += r.perf.flops;
        eprintln!("done {}", entry.name);
    }
    let nj = |j: f64| j * 1e9 / flops as f64;
    let (pc, ps, pd, pt) = EnergyModel::paper_nj_per_flop();

    println!(
        "Table III — energy breakdown, nJ/FLOP (scale {})\n",
        args.scale
    );
    print_table(
        &[
            "category",
            "SpArch measured",
            "SpArch paper",
            "OuterSPACE published",
        ],
        &[
            vec![
                "computation".into(),
                format!("{:.3}", nj(comp)),
                format!("{pc}"),
                "3.19".into(),
            ],
            vec![
                "SRAM".into(),
                format!("{:.3}", nj(sram)),
                format!("{ps}"),
                "0.35".into(),
            ],
            vec![
                "DRAM".into(),
                format!("{:.3}", nj(dram)),
                format!("{pd}"),
                "1.20".into(),
            ],
            vec!["crossbar".into(), "n/a".into(), "n/a".into(), "0.21".into()],
            vec![
                "overall".into(),
                format!("{:.3}", nj(comp + sram + dram)),
                format!("{pt}"),
                "4.95".into(),
            ],
        ],
    );
    println!(
        "\narea: merge tree {:.1} mm2 + prefetcher {:.1} mm2 dominate (paper Table III: 24.4 mm2 SRAM, 4.1 mm2 compute)",
        17.27, 5.8
    );
}
