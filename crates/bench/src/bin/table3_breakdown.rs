//! Table III: energy breakdown per FLOP (computation / SRAM / DRAM),
//! SpArch measured vs the paper's published values and OuterSPACE's.

use sparch_bench::{catalog, parse_args, print_table, runner, SuiteEntry};
use sparch_core::{SpArchConfig, SpArchSim};
use sparch_mem::EnergyModel;

fn main() {
    let args = parse_args();

    let entries: Vec<SuiteEntry> = catalog().into_iter().step_by(2).collect();
    // Per matrix: (computation J, SRAM J, DRAM J, FLOPs).
    let samples: Vec<(f64, f64, f64, u64)> = runner::run_suite(&entries, &args, |_, a| {
        let r = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        let (c, s, d) = r.energy.by_category();
        (c, s, d, r.perf.flops)
    });
    let comp: f64 = samples.iter().map(|s| s.0).sum();
    let sram: f64 = samples.iter().map(|s| s.1).sum();
    let dram: f64 = samples.iter().map(|s| s.2).sum();
    let flops: u64 = samples.iter().map(|s| s.3).sum();
    let nj = |j: f64| j * 1e9 / flops as f64;
    let (pc, ps, pd, pt) = EnergyModel::paper_nj_per_flop();

    println!(
        "Table III — energy breakdown, nJ/FLOP (scale {})\n",
        args.scale
    );
    print_table(
        &[
            "category",
            "SpArch measured",
            "SpArch paper",
            "OuterSPACE published",
        ],
        &[
            vec![
                "computation".into(),
                format!("{:.3}", nj(comp)),
                format!("{pc}"),
                "3.19".into(),
            ],
            vec![
                "SRAM".into(),
                format!("{:.3}", nj(sram)),
                format!("{ps}"),
                "0.35".into(),
            ],
            vec![
                "DRAM".into(),
                format!("{:.3}", nj(dram)),
                format!("{pd}"),
                "1.20".into(),
            ],
            vec!["crossbar".into(), "n/a".into(), "n/a".into(), "0.21".into()],
            vec![
                "overall".into(),
                format!("{:.3}", nj(comp + sram + dram)),
                format!("{pt}"),
                "4.95".into(),
            ],
        ],
    );
    println!(
        "\narea: merge tree {:.1} mm2 + prefetcher {:.1} mm2 dominate (paper Table III: 24.4 mm2 SRAM, 4.1 mm2 compute)",
        17.27, 5.8
    );
}
