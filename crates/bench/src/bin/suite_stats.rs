//! Workload characterization of the 20-benchmark suite surrogates:
//! the structural quantities SpArch's behaviour keys on, next to the
//! originals' published shapes. Complements DESIGN.md §5's substitution
//! argument with measurable evidence.

use sparch_bench::{catalog, parse_args, print_table, runner};
use sparch_sparse::stats::{MatrixStats, TaskStats};

fn main() {
    let args = parse_args();
    println!(
        "Suite surrogate characterization at scale {} (original shapes in parentheses)\n",
        args.scale
    );
    let rows: Vec<Vec<String>> = runner::run_suite(&catalog(), &args, |entry, a| {
        let m = MatrixStats::of(&a);
        let t = TaskStats::of(&a, &a);
        vec![
            entry.name.to_string(),
            format!("{} ({})", m.rows, entry.rows),
            format!("{} ({})", m.nnz, entry.nnz),
            format!("{:.1} ({:.1})", m.avg_row_nnz, entry.avg_degree()),
            format!("{:.2}", m.row_cv),
            t.condensed_cols.to_string(),
            t.occupied_cols.to_string(),
            format!("{:.2}", t.compression_factor),
            format!("{:.3}", t.operational_intensity),
        ]
    });
    print_table(
        &[
            "matrix",
            "rows",
            "nnz",
            "deg",
            "row CV",
            "cond cols",
            "occ cols",
            "compress",
            "OI",
        ],
        &rows,
    );
    println!(
        "\ncond cols = partial matrices after condensing (paper: 100-1000); \
         occ cols = partial matrices without condensing; \
         OI = theoretical operational intensity (paper suite mean: 0.19)"
    );
}
