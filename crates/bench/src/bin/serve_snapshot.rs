//! Service throughput snapshot: tracks the `sparch-serve` layer's
//! request throughput from PR to PR.
//!
//! Builds a deterministic mixed batch (single / chained / masked / power
//! requests over eight structurally distinct operands, sized by
//! `--scale`), serves it through `SpgemmService` under the adaptive
//! policy with the pinned reference calibration, and emits `SERVE.json` —
//! requests/second, operand-cache hit rate, total model-side work, the
//! per-backend dispatch distribution, and the dispatch model's accuracy
//! (mean |predicted − measured| step cost and the ranking-inversion
//! mispredict rate) so calibration changes are regression-visible.
//!
//! ```console
//! cargo run --release -p sparch-bench --bin serve_snapshot
//! cargo run --release -p sparch-bench --bin serve_snapshot -- --scale 0.01 --threads 2
//! ```

use serde::Serialize;
use sparch_bench::{parse_args_from, print_table, runner, ArgsOutcome, USAGE};
use sparch_serve::{
    Batch, Calibration, DispatchPolicy, OperandDef, OperandSpec, Request, ServiceConfig,
    SpgemmService,
};
use sparch_sparse::gen::Recipe;

/// Pinned default scale (matches `perf_snapshot`'s philosophy: small
/// enough for seconds-long runs, fixed so snapshots stay comparable).
const SNAPSHOT_SCALE: f64 = 0.02;

/// Requests in the snapshot batch.
const REQUESTS: usize = 240;

#[derive(Serialize)]
struct Snapshot {
    scale: f64,
    threads: usize,
    requests: usize,
    multiply_steps: usize,
    wall_seconds: f64,
    requests_per_second: f64,
    cache_hit_rate: f64,
    total_model_cost: f64,
    /// Mean |predicted − measured| step cost in seconds — how far the
    /// dispatch calibration sits from the machine on this batch.
    mean_abs_cost_error_seconds: f64,
    /// Fraction of step pairs the model ranks in the wrong order
    /// ([`sparch_serve::BatchReport::mispredict_rate`]): the
    /// regression-visible signal for future calibration changes.
    dispatch_mispredict_rate: f64,
    backend_steps: Vec<(String, u64)>,
}

/// Eight structurally distinct operands, all square with order
/// `~3200 * scale` so every request kind composes.
fn operands(scale: f64) -> Vec<OperandDef> {
    let n = ((3200.0 * scale) as usize).max(16);
    let gen = |name: &str, recipe: Recipe, seed: u64| OperandDef {
        name: name.into(),
        spec: OperandSpec::Gen { recipe, seed },
    };
    let side = (n as f64).cbrt().round().max(2.0) as usize;
    vec![
        gen("rmat_a", Recipe::Rmat { n, avg_degree: 4 }, 21),
        gen("rmat_b", Recipe::Rmat { n, avg_degree: 8 }, 22),
        gen(
            "uniform",
            Recipe::Uniform {
                rows: n,
                cols: n,
                nnz: n * 5,
            },
            23,
        ),
        gen(
            "poisson",
            Recipe::Poisson3d {
                nx: side,
                ny: side,
                nz: side,
            },
            24,
        ),
        gen(
            "banded",
            Recipe::Banded {
                n,
                half_bandwidth: 3,
                extra_nnz: n,
            },
            25,
        ),
        gen(
            "powerlaw",
            Recipe::PowerlawRows {
                n,
                nnz: n * 6,
                alpha: 1.8,
            },
            26,
        ),
        gen(
            "blocks",
            Recipe::BlockSparse {
                rows: n,
                cols: n,
                block: 4,
                block_density: 0.15,
            },
            27,
        ),
        gen(
            "dense_sq",
            Recipe::Uniform {
                rows: n,
                cols: n,
                nnz: n * 10,
            },
            28,
        ),
    ]
}

/// A deterministic mix cycling through the four request kinds. Poisson
/// operands are square only when `n` is a perfect cube, so chains and
/// powers stick to operands of identical order — which `operands()`
/// guarantees for all but `poisson`; it appears as a mask/right operand
/// only when orders match, so it is excluded from the mix entirely and
/// squared explicitly instead.
fn requests(names: &[&str]) -> Vec<Request> {
    let pick = |i: usize| names[i % names.len()].to_string();
    (0..REQUESTS)
        .map(|i| match i % 4 {
            0 => Request::Single {
                a: pick(i),
                b: pick(i + 1),
            },
            1 => Request::Chain {
                operands: vec![pick(i), pick(i + 2), pick(i + 3)],
            },
            2 => Request::Power {
                a: pick(i),
                k: 2,
                threshold: 0.0,
            },
            _ => Request::Masked {
                a: pick(i),
                b: pick(i + 1),
                mask: pick(i + 2),
            },
        })
        .collect()
}

fn main() {
    let mut args = match parse_args_from(std::env::args().skip(1)) {
        Ok(ArgsOutcome::Parsed(args)) => args,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if !args.scale_explicit {
        args.scale = SNAPSHOT_SCALE;
    }

    let defs = operands(args.scale);
    // All operands except poisson share one order; poisson's cube can
    // differ, so keep it out of the cross-operand request mix.
    let names: Vec<&str> = defs
        .iter()
        .map(|d| d.name.as_str())
        .filter(|&n| n != "poisson")
        .collect();
    let mut reqs = requests(&names);
    reqs.push(Request::Power {
        a: "poisson".into(),
        k: 2,
        threshold: 0.0,
    });
    let batch = Batch {
        operands: defs,
        requests: reqs,
    };

    let mut service = SpgemmService::new(ServiceConfig {
        policy: DispatchPolicy::Adaptive,
        threads: args.threads,
        calibration: Some(Calibration::reference()),
        ..ServiceConfig::default()
    });
    let report = service.serve(&batch).expect("snapshot batch must serve");

    let snapshot = Snapshot {
        scale: args.scale,
        threads: report.threads,
        requests: report.total_requests,
        multiply_steps: report.total_steps,
        wall_seconds: report.wall_seconds,
        requests_per_second: report.total_requests as f64 / report.wall_seconds.max(1e-9),
        cache_hit_rate: report.cache_hit_rate,
        total_model_cost: report.total_model_cost,
        mean_abs_cost_error_seconds: report.mean_abs_cost_error_seconds,
        dispatch_mispredict_rate: report.mispredict_rate(),
        backend_steps: report
            .backend_steps
            .iter()
            .map(|b| (b.backend.clone(), b.steps))
            .collect(),
    };

    println!(
        "Serve snapshot — {} requests ({} steps) at scale {} on {} thread(s)\n",
        snapshot.requests, snapshot.multiply_steps, snapshot.scale, snapshot.threads
    );
    let rows: Vec<Vec<String>> = snapshot
        .backend_steps
        .iter()
        .map(|(name, steps)| vec![name.clone(), steps.to_string()])
        .collect();
    print_table(&["backend", "steps"], &rows);
    println!(
        "\nwall {:.3} s → {:.1} req/s; cache hit rate {:.1}%; model work {:.3e}",
        snapshot.wall_seconds,
        snapshot.requests_per_second,
        snapshot.cache_hit_rate * 100.0,
        snapshot.total_model_cost
    );
    println!(
        "dispatch model: mean |cost error| {:.3e} s, mispredict rate {:.1}%",
        snapshot.mean_abs_cost_error_seconds,
        snapshot.dispatch_mispredict_rate * 100.0
    );

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("SERVE.json"));
    runner::dump_json(&Some(path), &snapshot);
}
