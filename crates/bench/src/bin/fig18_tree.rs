//! Figure 18: design space exploration on the merge-tree size.
//!
//! Sweeps 2–7 layers (4- to 128-way merge). "A merge tree of 6 layers and
//! 64 ports is good enough, and the larger one does not contribute to the
//! speedup" — DRAM access keeps falling slightly, GFLOPS saturates.

use serde::Serialize;
use sparch_bench::{catalog, geomean, parse_args, print_table, runner};
use sparch_core::{SpArchConfig, SpArchSim};

#[derive(Serialize)]
struct Point {
    layers: usize,
    ways: usize,
    gflops: f64,
    dram_mb: f64,
}

fn main() {
    let args = parse_args();
    let entries: Vec<_> = catalog().into_iter().step_by(2).collect();
    let mut points = Vec::new();
    for layers in 2..=7usize {
        let sim = SpArchSim::new(SpArchConfig::default().with_tree_layers(layers));
        let mut gflops = Vec::new();
        let mut mbs = Vec::new();
        for entry in &entries {
            let a = entry.build(args.scale);
            let r = sim.run(&a, &a);
            gflops.push(r.perf.gflops);
            mbs.push(r.dram_mb());
        }
        points.push(Point {
            layers,
            ways: 1 << layers,
            gflops: geomean(&gflops),
            dram_mb: geomean(&mbs),
        });
        eprintln!("done {layers} layers");
    }

    println!(
        "Figure 18 — merge tree size (scale {}, paper: 6 layers saturate at 10.45 GFLOPS)\n",
        args.scale
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.layers.to_string(),
                p.ways.to_string(),
                format!("{:.2}", p.gflops),
                format!("{:.1}", p.dram_mb),
            ]
        })
        .collect();
    print_table(&["layers", "ways", "GFLOPS", "DRAM MB"], &rows);
    runner::dump_json(&args.json, &points);
}
