//! Figure 18: design space exploration on the merge-tree size.
//!
//! Sweeps 2–7 layers (4- to 128-way merge). "A merge tree of 6 layers and
//! 64 ports is good enough, and the larger one does not contribute to the
//! speedup" — DRAM access keeps falling slightly, GFLOPS saturates.

use serde::Serialize;
use sparch_bench::{catalog, geomean, parse_args, print_table, runner, SuiteEntry};
use sparch_core::{SimScratch, SpArchConfig, SpArchSim};
use sparch_exec::FnWorkload;
use sparch_sparse::Csr;

#[derive(Serialize)]
struct Point {
    layers: usize,
    ways: usize,
    gflops: f64,
    dram_mb: f64,
}

fn main() {
    let args = parse_args();
    let entries: Vec<SuiteEntry> = catalog().into_iter().step_by(2).collect();
    let scale = args.scale;

    let jobs: Vec<_> = (2..=7usize)
        .map(|layers| {
            let entries = entries.clone();
            FnWorkload::new(
                format!("{layers} layers"),
                move || entries.iter().map(|e| e.build(scale)).collect::<Vec<Csr>>(),
                move |mats: Vec<Csr>| {
                    let sim = SpArchSim::new(SpArchConfig::default().with_tree_layers(layers));
                    let mut scratch = SimScratch::new();
                    let mut gflops = Vec::new();
                    let mut mbs = Vec::new();
                    for a in &mats {
                        let r = sim.run_with_scratch(a, a, &mut scratch);
                        gflops.push(r.perf.gflops);
                        mbs.push(r.dram_mb());
                    }
                    Point {
                        layers,
                        ways: 1 << layers,
                        gflops: geomean(&gflops),
                        dram_mb: geomean(&mbs),
                    }
                },
            )
        })
        .collect();
    let points: Vec<Point> = runner::runner(&args).run_all(&jobs);

    println!(
        "Figure 18 — merge tree size (scale {}, paper: 6 layers saturate at 10.45 GFLOPS)\n",
        args.scale
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.layers.to_string(),
                p.ways.to_string(),
                format!("{:.2}", p.gflops),
                format!("{:.1}", p.dram_mb),
            ]
        })
        .collect();
    print_table(&["layers", "ways", "GFLOPS", "DRAM MB"], &rows);
    runner::dump_json(&args.json, &points);
}
