//! Distributed-sharding snapshot: tracks the coordinator + worker-fleet
//! layer (`sparch-dist`) from PR to PR.
//!
//! Squares a deterministic R-MAT workload (sized by `--scale`) through
//! the single-node streaming pipeline once for reference, then through
//! `DistCoordinator` at a ladder of shard counts. Every fleet result is
//! asserted **bit-identical** to the single-node run — the snapshot is
//! a conformance gate as much as a measurement. Emits `DIST_BENCH.json`
//! with per-shard-count wall time, job dispatches and wire traffic, so
//! protocol overhead regressions (chattier framing, redundant panel
//! shipping) show up as byte counts, not vibes.
//!
//! Requires the `sparch-dist-worker` binary next to this one (any
//! `cargo build --release --workspace` puts it there) or pointed to by
//! `SPARCH_DIST_WORKER`.
//!
//! ```console
//! cargo run --release -p sparch-bench --bin dist_snapshot
//! cargo run --release -p sparch-bench --bin dist_snapshot -- --scale 0.01
//! ```

use serde::Serialize;
use sparch_bench::{parse_args_from, ArgsOutcome, USAGE};
use sparch_dist::{DistConfig, DistCoordinator};
use sparch_sparse::{algo, gen, Csr};
use sparch_stream::{StreamConfig, StreamingExecutor};

/// Equality down to the bit pattern of every stored value — stricter
/// than `==` (which accepts `0.0 == -0.0`): the fleet must reproduce
/// the single-node pipeline exactly, not approximately.
fn assert_bits_equal(c: &Csr, reference: &Csr, shards: usize) {
    assert_eq!(c.rows(), reference.rows(), "{shards}-shard row count");
    assert_eq!(c.cols(), reference.cols(), "{shards}-shard col count");
    assert_eq!(c.nnz(), reference.nnz(), "{shards}-shard nnz");
    for r in 0..c.rows() {
        let (cc, cv) = c.row(r);
        let (rc, rv) = reference.row(r);
        assert_eq!(cc, rc, "{shards}-shard row {r} column pattern");
        for (a, b) in cv.iter().zip(rv.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{shards}-shard row {r} values");
        }
    }
}

/// Pinned default scale (matches the other snapshot binaries: small
/// enough for seconds-long runs, fixed so snapshots stay comparable).
const SNAPSHOT_SCALE: f64 = 0.02;

/// Panels the inner dimension is split into — enough leaves that even
/// the widest fleet below has work for every shard.
const PANELS: usize = 8;

/// Shard-count ladder the fleet is measured at.
const SHARDS: [usize; 3] = [1, 2, 4];

#[derive(Serialize)]
struct ShardRun {
    shards: usize,
    wall_seconds: f64,
    dispatches: u64,
    retries: u64,
    wire_bytes_sent: u64,
    wire_bytes_received: u64,
    wire_bytes_per_multiply: f64,
}

#[derive(Serialize)]
struct Snapshot {
    scale: f64,
    n: usize,
    a_nnz: usize,
    multiplies: u64,
    panels: usize,
    partials: usize,
    merge_rounds: u64,
    merge_ways: usize,
    output_nnz: u64,
    single_node_wall_seconds: f64,
    runs: Vec<ShardRun>,
}

fn main() {
    let mut args = match parse_args_from(std::env::args().skip(1)) {
        Ok(ArgsOutcome::Parsed(args)) => args,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if !args.scale_explicit {
        args.scale = SNAPSHOT_SCALE;
    }

    let n = ((3200.0 * args.scale) as usize).max(48);
    let a = gen::rmat_graph500(n, 8, 77);
    let multiplies = algo::multiply_flops(&a, &a);

    let stream = StreamConfig {
        panels: PANELS,
        ..StreamConfig::pinned()
    };

    // Single-node reference under the exact stream config the shards
    // run: the bit-identity baseline and the wall-clock yardstick.
    let t0 = std::time::Instant::now();
    let (reference, _) = StreamingExecutor::new(stream.clone())
        .multiply(&a, &a)
        .expect("single-node reference run");
    let single_node_wall_seconds = t0.elapsed().as_secs_f64();

    let mut runs = Vec::new();
    let mut fleet_report = None;
    for shards in SHARDS {
        let config = DistConfig {
            shards,
            stream: stream.clone(),
            ..DistConfig::default()
        };
        let t0 = std::time::Instant::now();
        let (c, report) = DistCoordinator::new(config)
            .multiply(&a, &a)
            .unwrap_or_else(|e| panic!("{shards}-shard run failed: {e}"));
        let wall_seconds = t0.elapsed().as_secs_f64();
        assert_bits_equal(&c, &reference, shards);
        runs.push(ShardRun {
            shards: report.shards,
            wall_seconds,
            dispatches: report.dispatches,
            retries: report.retries,
            wire_bytes_sent: report.wire_bytes_sent,
            wire_bytes_received: report.wire_bytes_received,
            wire_bytes_per_multiply: (report.wire_bytes_sent + report.wire_bytes_received) as f64
                / multiplies.max(1) as f64,
        });
        fleet_report = Some(report);
    }
    let fleet = fleet_report.expect("at least one fleet run");

    let snapshot = Snapshot {
        scale: args.scale,
        n,
        a_nnz: a.nnz(),
        multiplies,
        panels: fleet.panels,
        partials: fleet.partials,
        merge_rounds: fleet.merge_rounds,
        merge_ways: fleet.merge_ways,
        output_nnz: fleet.output_nnz,
        single_node_wall_seconds,
        runs,
    };

    println!(
        "Dist snapshot — {n}x{n} R-MAT squared at scale {}, {} panel pairs \
         -> {} partials, {} merge rounds ({}-way)",
        snapshot.scale,
        snapshot.panels,
        snapshot.partials,
        snapshot.merge_rounds,
        snapshot.merge_ways
    );
    println!(
        "single-node streaming reference: {:.4} s ({} output nnz)",
        snapshot.single_node_wall_seconds, snapshot.output_nnz
    );
    println!("shards    wall (s)   dispatches   sent (B)   recv (B)   B/multiply");
    for run in &snapshot.runs {
        println!(
            "{:>6} {:>11.4} {:>12} {:>10} {:>10} {:>12.2}",
            run.shards,
            run.wall_seconds,
            run.dispatches,
            run.wire_bytes_sent,
            run.wire_bytes_received,
            run.wire_bytes_per_multiply
        );
    }
    println!("every shard count verified bit-identical to the single-node pipeline");

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("DIST_BENCH.json"));
    sparch_bench::runner::dump_json(&Some(path), &snapshot);

    // `--trace` reruns the widest fleet with the recorder on — outside
    // the timed ladder, so tracing never skews the measurements.
    if args.trace.is_some() {
        let config = DistConfig {
            shards: *SHARDS.last().expect("ladder is non-empty"),
            stream,
            ..DistConfig::default()
        };
        let coordinator =
            DistCoordinator::new(config).with_recorder(sparch_obs::Recorder::enabled());
        let (c, _) = coordinator
            .multiply(&a, &a)
            .expect("traced fleet run must succeed");
        assert_bits_equal(&c, &reference, *SHARDS.last().expect("ladder is non-empty"));
        sparch_bench::runner::dump_trace(&args.trace, &coordinator.recorder().drain("dist"));
    }
}
