//! Merge-kernel snapshot: tracks the k-way merge's triple throughput
//! from PR to PR.
//!
//! Merges a pinned set of random partials (sized by `--scale`) at each
//! fan-in the streaming executor actually uses — 2 (the galloping
//! two-way path), 4 and 8 (the loser tree) — through both merge kernels:
//! the pre-sized chunked [`merge_sources`] and the seed per-triple
//! `BinaryHeap` kernel [`merge_sources_reference`], kept verbatim as the
//! baseline. Emits `MERGE_BENCH.json` with input-triples-per-second for
//! both kernels per fan-in plus the geometric-mean speedup. At the
//! pinned default scale the snapshot asserts the rewrite holds its
//! ≥ 1.5× advantage; explicit `--scale` runs (the CI smoke) only
//! measure.
//!
//! ```console
//! cargo run --release -p sparch-bench --bin merge_snapshot
//! cargo run --release -p sparch-bench --bin merge_snapshot -- --scale 0.002 --json /tmp/MERGE_BENCH.json
//! ```

use serde::Serialize;
use sparch_bench::runner;
use sparch_bench::{geomean, parse_args_from, ArgsOutcome, USAGE};
use sparch_sparse::{gen, Csr};
use sparch_stream::merge::{merge_sources, merge_sources_reference, MergeScratch, PartialSource};

/// Pinned default scale (matches the other snapshot binaries).
const SNAPSHOT_SCALE: f64 = 0.02;

/// Fan-ins measured: the two-way fast path and two loser-tree widths
/// (the executor's default `merge_ways` is 8).
const WAYS: [usize; 3] = [2, 4, 8];

/// Minimum measured time per (kernel, fan-in) cell, so per-run noise
/// averages out even at tiny scales.
const MIN_SECONDS: f64 = 0.15;
const MIN_ITERS: usize = 3;

#[derive(Serialize)]
struct WaysRow {
    ways: usize,
    input_triples: u64,
    output_nnz: usize,
    presized_triples_per_second: f64,
    reference_triples_per_second: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Snapshot {
    scale: f64,
    rows: usize,
    nnz_per_source: usize,
    rows_by_ways: Vec<WaysRow>,
    geomean_speedup: f64,
}

/// Times `kernel` over repeated merges of `parts`, excluding the
/// per-iteration source rebuild, and returns (input triples / second,
/// the merged result).
fn bench<F>(parts: &[Csr], mut kernel: F) -> (f64, Csr)
where
    F: FnMut(Vec<PartialSource>) -> Csr,
{
    let triples: u64 = parts.iter().map(|p| p.nnz() as u64).sum();
    let mut seconds = 0.0;
    let mut iters = 0usize;
    let mut out = None;
    while seconds < MIN_SECONDS || iters < MIN_ITERS {
        let sources: Vec<PartialSource> =
            parts.iter().cloned().map(PartialSource::from_csr).collect();
        let t0 = std::time::Instant::now();
        out = Some(kernel(sources));
        seconds += t0.elapsed().as_secs_f64();
        iters += 1;
    }
    (
        (triples * iters as u64) as f64 / seconds.max(1e-9),
        out.expect("at least one iteration ran"),
    )
}

fn main() {
    let mut args = match parse_args_from(std::env::args().skip(1)) {
        Ok(ArgsOutcome::Parsed(args)) => args,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if !args.scale_explicit {
        args.scale = SNAPSHOT_SCALE;
    }

    let rows = ((20_000.0 * args.scale) as usize).max(64);
    let nnz = ((2_000_000.0 * args.scale) as usize).max(1_000);
    let parts: Vec<Csr> = (0..*WAYS.iter().max().unwrap())
        .map(|s| gen::uniform_random(rows, rows, nnz, 90 + s as u64))
        .collect();

    println!(
        "Merge kernel snapshot — {0}x{0} partials, ~{1} nnz each, scale {2}",
        rows, nnz, args.scale
    );

    let mut rows_by_ways = Vec::new();
    let mut scratch = MergeScratch::new();
    for ways in WAYS {
        let fan_in = &parts[..ways];
        let (presized_tps, merged) = bench(fan_in, |srcs| {
            merge_sources(rows, rows, srcs, &mut scratch).expect("pre-sized merge failed")
        });
        let (reference_tps, reference) = bench(fan_in, |srcs| {
            merge_sources_reference(rows, rows, srcs).expect("reference merge failed")
        });
        assert_eq!(merged, reference, "kernels disagree at fan-in {ways}");
        let speedup = presized_tps / reference_tps.max(1e-9);
        println!(
            "  {ways}-way: presized {presized_tps:.3e} triples/s vs reference \
             {reference_tps:.3e} triples/s — {speedup:.2}x"
        );
        rows_by_ways.push(WaysRow {
            ways,
            input_triples: fan_in.iter().map(|p| p.nnz() as u64).sum(),
            output_nnz: merged.nnz(),
            presized_triples_per_second: presized_tps,
            reference_triples_per_second: reference_tps,
            speedup,
        });
    }

    let speedups: Vec<f64> = rows_by_ways.iter().map(|r| r.speedup).collect();
    let geomean_speedup = geomean(&speedups);
    println!("geomean speedup: {geomean_speedup:.2}x");
    if !args.scale_explicit {
        assert!(
            geomean_speedup >= 1.5,
            "merge kernel regressed below the 1.5x floor over the seed \
             BinaryHeap kernel: {geomean_speedup:.2}x"
        );
    }

    let snapshot = Snapshot {
        scale: args.scale,
        rows,
        nnz_per_source: nnz,
        rows_by_ways,
        geomean_speedup,
    };
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("MERGE_BENCH.json"));
    runner::dump_json(&Some(path), &snapshot);
}
