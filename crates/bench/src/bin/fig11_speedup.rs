//! Figure 11: speedup of SpArch over OuterSPACE, MKL, cuSPARSE, CUSP and
//! ARM Armadillo on the 20-benchmark suite (A × A on square surrogates).
//!
//! The paper's geometric means: 4.2× / 18.7× / 17.6× / 16.6× / 1285×.
//! Absolute factors here depend on the surrogate scale and the platform
//! calibration constants (DESIGN.md §5); the *shape* — SpArch wins on
//! every matrix, OuterSPACE is the closest, Armadillo is orders of
//! magnitude behind — is the reproduction target.
//!
//! The `vs MKL/cuSPARSE/CUSP/Armadillo` columns wall-clock a host SpGEMM
//! kernel, so they carry measurement noise — and CPU contention when
//! sharded. Use `--threads 1` when those columns matter; the SpArch and
//! OuterSPACE numbers are model-driven and thread-count-invariant.

use serde::Serialize;
use sparch_baselines::{run_software, OuterSpaceModel, Platform};
use sparch_bench::{catalog, geomean, parse_args, print_table, runner};
use sparch_core::{SpArchConfig, SpArchSim};

#[derive(Serialize)]
struct Row {
    name: String,
    sparch_gflops: f64,
    over_outerspace: f64,
    over_mkl: f64,
    over_cusparse: f64,
    over_cusp: f64,
    over_armadillo: f64,
}

fn main() {
    let args = parse_args();

    let mut rows: Vec<Row> = runner::run_suite(&catalog(), &args, |entry, a| {
        let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        let os = OuterSpaceModel::default().run(&a, &a);

        let mut speedups = [0.0f64; 4];
        for (i, p) in Platform::ALL.iter().enumerate() {
            let gflops = run_software(*p, &a, &a).calibrated_gflops;
            speedups[i] = report.perf.gflops / gflops;
        }

        Row {
            name: entry.name.to_string(),
            sparch_gflops: report.perf.gflops,
            over_outerspace: report.perf.gflops / os.gflops,
            over_mkl: speedups[0],
            over_cusparse: speedups[1],
            over_cusp: speedups[2],
            over_armadillo: speedups[3],
        }
    });

    let gm = |f: fn(&Row) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    let geo = Row {
        name: "GeoMean".into(),
        sparch_gflops: gm(|r| r.sparch_gflops),
        over_outerspace: gm(|r| r.over_outerspace),
        over_mkl: gm(|r| r.over_mkl),
        over_cusparse: gm(|r| r.over_cusparse),
        over_cusp: gm(|r| r.over_cusp),
        over_armadillo: gm(|r| r.over_armadillo),
    };
    rows.push(geo);

    println!(
        "Figure 11 — speedup of SpArch over baselines (scale {}, paper geomeans: 4.2/18.7/17.6/16.6/1285)\n",
        args.scale
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}", r.sparch_gflops),
                format!("{:.2}", r.over_outerspace),
                format!("{:.1}", r.over_mkl),
                format!("{:.1}", r.over_cusparse),
                format!("{:.1}", r.over_cusp),
                format!("{:.0}", r.over_armadillo),
            ]
        })
        .collect();
    print_table(
        &[
            "matrix",
            "SpArch GFLOPS",
            "vs OuterSPACE",
            "vs MKL",
            "vs cuSPARSE",
            "vs CUSP",
            "vs Armadillo",
        ],
        &table,
    );
    runner::dump_json(&args.json, &rows);
}
