//! Performance snapshot: tracks the repository's own simulation speed.
//!
//! Runs the 20-matrix suite (A × A) at a fixed small scale and emits
//! `BENCH.json` — wall-clock per matrix (surrogate build and simulation
//! separately), total simulated cycles, and the worker-thread count — so
//! the perf trajectory is visible from PR to PR.
//!
//! ```console
//! cargo run --release -p sparch-bench --bin perf_snapshot
//! cargo run --release -p sparch-bench --bin perf_snapshot -- --threads 1 --json BENCH.json
//! ```
//!
//! Unlike the figure binaries, the default scale here is pinned to 0.02
//! (override with `--scale`) so snapshots stay comparable across
//! machines and PRs.

use serde::Serialize;
use sparch_bench::{catalog, parse_args_from, print_table, runner, ArgsOutcome, USAGE};
use sparch_core::{SimScratch, SpArchConfig, SpArchSim};
use sparch_exec::FnWorkload;
use std::time::Instant;

/// The snapshot's pinned default scale (kept small so a full run takes
/// seconds, not minutes).
const SNAPSHOT_SCALE: f64 = 0.02;

#[derive(Serialize)]
struct MatrixPerf {
    name: String,
    build_seconds: f64,
    run_seconds: f64,
    sim_cycles: u64,
    gflops: f64,
    dram_mb: f64,
    output_nnz: u64,
}

#[derive(Serialize)]
struct Snapshot {
    scale: f64,
    threads: usize,
    wall_seconds: f64,
    total_run_seconds: f64,
    total_sim_cycles: u64,
    matrices: Vec<MatrixPerf>,
}

fn main() {
    let mut args = match parse_args_from(std::env::args().skip(1)) {
        Ok(ArgsOutcome::Parsed(args)) => args,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if !args.scale_explicit {
        args.scale = SNAPSHOT_SCALE;
    }

    let scale = args.scale;
    let jobs: Vec<_> = catalog()
        .into_iter()
        .map(|entry| {
            FnWorkload::new(
                entry.name,
                move || entry.build(scale),
                move |a| {
                    let sim = SpArchSim::new(SpArchConfig::default());
                    let mut scratch = SimScratch::new();
                    let r = sim.run_with_scratch(&a, &a, &mut scratch);
                    (r.perf.cycles, r.perf.gflops, r.dram_mb(), r.perf.output_nnz)
                },
            )
        })
        .collect();

    let parallel = runner::runner(&args);
    let threads = parallel.threads();
    let wall_start = Instant::now();
    let timed = parallel.run_all_timed(&jobs);
    let wall_seconds = wall_start.elapsed().as_secs_f64();

    let matrices: Vec<MatrixPerf> = timed
        .into_iter()
        .map(|t| MatrixPerf {
            name: t.name,
            build_seconds: t.build_seconds,
            run_seconds: t.run_seconds,
            sim_cycles: t.record.0,
            gflops: t.record.1,
            dram_mb: t.record.2,
            output_nnz: t.record.3,
        })
        .collect();
    let snapshot = Snapshot {
        scale: args.scale,
        threads,
        wall_seconds,
        total_run_seconds: matrices.iter().map(|m| m.run_seconds).sum(),
        total_sim_cycles: matrices.iter().map(|m| m.sim_cycles).sum(),
        matrices,
    };

    println!(
        "Perf snapshot — suite sweep at scale {} on {} thread(s)\n",
        snapshot.scale, snapshot.threads
    );
    let rows: Vec<Vec<String>> = snapshot
        .matrices
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                format!("{:.3}", m.build_seconds),
                format!("{:.3}", m.run_seconds),
                m.sim_cycles.to_string(),
                format!("{:.2}", m.gflops),
            ]
        })
        .collect();
    print_table(
        &["matrix", "build s", "run s", "sim cycles", "GFLOPS"],
        &rows,
    );
    println!(
        "\nwall {:.3} s over {} thread(s); Σ worker run time {:.3} s; Σ sim cycles {}",
        snapshot.wall_seconds,
        snapshot.threads,
        snapshot.total_run_seconds,
        snapshot.total_sim_cycles
    );

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH.json"));
    runner::dump_json(&Some(path), &snapshot);
}
