//! Self-tuning snapshot: tracks the `sparch-tune` loop from PR to PR.
//!
//! Three measurements over a deterministic R-MAT workload (sized by
//! `--scale`), emitted as `TUNE_BENCH.json`:
//!
//! 1. **Planner vs sweep** — a fig17-style grid sweep over panels ×
//!    merge fan-in × balance under a tight budget (a quarter of the full
//!    partial footprint, so the spill path is live), against the single
//!    configuration `KnobPlanner` derives without timing anything. At the
//!    pinned scale the planned point must land within 0.9× of the best
//!    swept throughput and not lose to the naive default config.
//! 2. **Bit-identity grid** — the planned config is executed across
//!    threads × budgets and every result compared `==` against
//!    `gustavson`: tuning moves timing, never bits.
//! 3. **Online calibration** — a serve batch repeated on one service
//!    with the EWMA feedback loop on: the mean |predicted − measured|
//!    step cost must shrink from the cold batch to the warm one.
//!
//! ```console
//! cargo run --release -p sparch-bench --bin tune_snapshot
//! cargo run --release -p sparch-bench --bin tune_snapshot -- --scale 0.005 --json /tmp/t.json
//! ```

use serde::Serialize;
use sparch_bench::{parse_args_from, runner, ArgsOutcome, USAGE};
use sparch_serve::prelude::*;
use sparch_sparse::gen::Recipe;
use sparch_sparse::{algo, gen, Csr};
use sparch_sparse::{panel_ranges, panel_ranges_by_nnz};
use sparch_stream::{MemoryBudget, PanelBalance, SpillCodec, StreamConfig, StreamingExecutor};
use sparch_tune::{row_nnz_histogram, BRows, KnobPlanner, OperandStats, Plan};

/// Pinned default scale (matches the other snapshot binaries).
const SNAPSHOT_SCALE: f64 = 0.02;

/// Timed attempts per configuration; the minimum is reported (the
/// workload is deterministic, so noise is one-sided). Attempts are
/// interleaved round-robin across every configuration so a slow window
/// (CPU contention, thermal drift) cannot bias one point's minimum.
const ATTEMPTS: usize = 15;

#[derive(Serialize, Clone, PartialEq)]
struct Knobs {
    panels: usize,
    merge_ways: usize,
    balance: String,
    spill_codec: String,
}

impl Knobs {
    fn of(config: &StreamConfig) -> Knobs {
        Knobs {
            panels: config.panels,
            merge_ways: config.merge_ways,
            balance: config.balance.to_string(),
            spill_codec: config.spill_codec.to_string(),
        }
    }
}

#[derive(Serialize, Clone)]
struct MeasuredPoint {
    knobs: Knobs,
    wall_seconds: f64,
    multiplies_per_second: f64,
}

#[derive(Serialize)]
struct Snapshot {
    scale: f64,
    threads: usize,
    n: usize,
    a_nnz: usize,
    multiplies: u64,
    budget_bytes: u64,
    partial_bytes_total: u64,
    /// The planner's full decision record (projections included).
    plan: Plan,
    auto: MeasuredPoint,
    default: MeasuredPoint,
    best_sweep: MeasuredPoint,
    sweep_points: usize,
    /// Every swept point (the fig17-style grid), measurement order.
    sweep: Vec<MeasuredPoint>,
    /// `auto.multiplies_per_second / best_sweep.multiplies_per_second`.
    auto_vs_best_sweep: f64,
    /// `auto.multiplies_per_second / default.multiplies_per_second`.
    auto_vs_default: f64,
    /// Planned-config runs compared bit-for-bit against `gustavson`
    /// across the threads × budgets grid.
    identity_checks: usize,
    /// Mean |predicted − measured| step cost, first (cold) serve batch.
    calibration_cold_error_seconds: f64,
    /// Same, second (warm) batch — after one online EWMA fold.
    calibration_warm_error_seconds: f64,
    /// `warm / cold`: how much of the error one fold removes.
    calibration_error_ratio: f64,
}

/// What a configuration *actually executes*: the panel ranges its
/// balance mode produces, the merge fan-in after clamping to the
/// partial count (a 2-panel run merges 2-way no matter what
/// `merge_ways` says), and the spill codec. Grid points with equal keys
/// are one execution under different labels — they share a single
/// measurement, so the sweep's "best" can never be the luckiest of
/// several identical runs.
type FamilyKey = (Vec<(usize, usize)>, usize, String);

fn family_key(config: &StreamConfig, col_nnz: &[usize]) -> FamilyKey {
    let ranges = match config.balance {
        PanelBalance::Uniform => panel_ranges(col_nnz.len(), config.panels),
        PanelBalance::Nnz => panel_ranges_by_nnz(col_nnz, config.panels),
    };
    let partials = ranges
        .iter()
        .filter(|r| col_nnz[r.start..r.end].iter().any(|&c| c > 0))
        .count();
    let ways = config.merge_ways.clamp(2, partials.max(2));
    let ranges = ranges.into_iter().map(|r| (r.start, r.end)).collect();
    (ranges, ways, config.spill_codec.to_string())
}

/// Minimum wall time per configuration over [`ATTEMPTS`] interleaved
/// rounds (every config runs once per round), asserting each result
/// matches `expected` on the first round.
fn measure_all(configs: &[StreamConfig], a: &Csr, expected: &Csr) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; configs.len()];
    for round in 0..ATTEMPTS {
        for (i, config) in configs.iter().enumerate() {
            let t0 = std::time::Instant::now();
            let (c, _) = StreamingExecutor::new(config.clone())
                .multiply(a, a)
                .expect("measured run must succeed");
            let wall = t0.elapsed().as_secs_f64();
            if round == 0 {
                assert_eq!(&c, expected, "knobs changed result bits: {config:?}");
            }
            best[i] = best[i].min(wall);
        }
    }
    best
}

/// A serve batch for the online-calibration measurement: all four
/// request kinds over two operand structures.
fn serve_batch() -> Batch {
    let operand = |name: &str, recipe: Recipe, seed: u64| OperandDef {
        name: name.into(),
        spec: OperandSpec::Gen { recipe, seed },
    };
    Batch {
        operands: vec![
            operand(
                "g",
                Recipe::Rmat {
                    n: 96,
                    avg_degree: 5,
                },
                21,
            ),
            operand(
                "u",
                Recipe::Uniform {
                    rows: 96,
                    cols: 96,
                    nnz: 600,
                },
                22,
            ),
        ],
        requests: vec![
            Request::Single {
                a: "g".into(),
                b: "u".into(),
            },
            Request::Chain {
                operands: vec!["g".into(), "u".into(), "g".into()],
            },
            Request::Power {
                a: "g".into(),
                k: 3,
                threshold: 0.0,
            },
            Request::Masked {
                a: "g".into(),
                b: "g".into(),
                mask: "u".into(),
            },
        ],
    }
}

fn main() {
    let mut args = match parse_args_from(std::env::args().skip(1)) {
        Ok(ArgsOutcome::Parsed(args)) => args,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if !args.scale_explicit {
        args.scale = SNAPSHOT_SCALE;
    }

    let n = ((3200.0 * args.scale) as usize).max(48);
    let a = gen::rmat_graph500(n, 8, 77);
    let multiplies = algo::multiply_flops(&a, &a);
    let expected = algo::gustavson(&a, &a);
    let threads = args.threads.unwrap_or(1);

    // Tight budget: a quarter of the full partial footprint, learned
    // from one unbounded probe run, so the spill path is always live
    // for configurations that ignore it.
    let probe = StreamingExecutor::new(StreamConfig {
        budget: MemoryBudget::unbounded(),
        threads: args.threads,
        ..StreamConfig::default()
    })
    .multiply(&a, &a)
    .expect("probe run must succeed");
    let budget_bytes = probe.1.partial_bytes_total / 4;
    let budget = MemoryBudget::from_bytes(budget_bytes);

    // The planner's pick, from structure alone — no timing.
    let stats = OperandStats::from_csr(&a);
    let b_rows = row_nnz_histogram(&a);
    let plan = KnobPlanner::new(budget)
        .with_threads(threads)
        .plan(&stats, &BRows::Histogram(&b_rows));
    let auto_config = StreamConfig {
        threads: args.threads,
        ..plan.config.clone()
    };

    // The naive point of comparison: default knobs, same budget.
    let default_config = StreamConfig {
        budget,
        threads: args.threads,
        ..StreamConfig::default()
    };

    // Fig17-style sweep: panels × fan-in × balance under the same
    // budget (varint codec, like the planner picks when spilling). The
    // planned and default configs join the same interleaved measurement
    // so every point sees the same noise; identical knobs share one
    // measurement so they can never differ by noise.
    let mut configs: Vec<StreamConfig> = Vec::new();
    for panels in [2usize, 4, 8, 16] {
        for ways in [2usize, 4, 8] {
            for balance in [PanelBalance::Uniform, PanelBalance::Nnz] {
                configs.push(StreamConfig {
                    budget,
                    panels,
                    merge_ways: ways,
                    balance,
                    spill_codec: SpillCodec::Varint,
                    threads: args.threads,
                    ..StreamConfig::default()
                });
            }
        }
    }
    let sweep_points = configs.len();
    configs.push(auto_config.clone());
    configs.push(default_config.clone());

    // Group the labeled configs into execution families and measure one
    // representative per family, interleaved.
    let col_nnz = a.col_nnz();
    let mut family_of = Vec::with_capacity(configs.len());
    let mut keys: Vec<FamilyKey> = Vec::new();
    let mut representatives: Vec<StreamConfig> = Vec::new();
    for config in &configs {
        let key = family_key(config, &col_nnz);
        let family = keys.iter().position(|k| *k == key).unwrap_or_else(|| {
            keys.push(key);
            representatives.push(config.clone());
            keys.len() - 1
        });
        family_of.push(family);
    }
    let walls = measure_all(&representatives, &a, &expected);
    let points: Vec<MeasuredPoint> = configs
        .iter()
        .zip(&family_of)
        .map(|(config, &family)| MeasuredPoint {
            knobs: Knobs::of(config),
            wall_seconds: walls[family],
            multiplies_per_second: multiplies as f64 / walls[family].max(1e-9),
        })
        .collect();
    let best_sweep = points[..sweep_points]
        .iter()
        .min_by(|x, y| x.wall_seconds.total_cmp(&y.wall_seconds))
        .expect("sweep is non-empty")
        .clone();
    let auto = points[sweep_points].clone();
    let default = points[sweep_points + 1].clone();

    // Bit-identity grid: the planned config must reproduce `gustavson`
    // exactly at any thread count and budget.
    let mut identity_checks = 0;
    for grid_threads in [1usize, 2] {
        for grid_budget in [
            MemoryBudget::unbounded(),
            MemoryBudget::from_bytes(budget_bytes),
            MemoryBudget::from_bytes(probe.1.partial_bytes_total / 10),
        ] {
            let grid_plan = KnobPlanner::new(grid_budget)
                .with_threads(grid_threads)
                .plan(&stats, &BRows::Histogram(&b_rows));
            let (c, _) = StreamingExecutor::new(grid_plan.config)
                .multiply(&a, &a)
                .expect("grid run must succeed");
            assert_eq!(
                c, expected,
                "planned run diverged at {grid_threads} threads, budget {grid_budget:?}"
            );
            identity_checks += 1;
        }
    }

    // Online calibration: cold batch vs warm batch on one service. The
    // reference table prices steps in raw model units, so the first fold
    // must collapse the error by orders of magnitude.
    let mut service = SpgemmService::new(ServiceConfig {
        policy: DispatchPolicy::Fixed(Backend::Gustavson),
        threads: args.threads,
        calibration: Some(Calibration::reference()),
        online_calibration: Some(0.5),
        ..ServiceConfig::default()
    });
    let cold = service.serve(&serve_batch()).expect("cold batch");
    let warm = service.serve(&serve_batch()).expect("warm batch");

    let snapshot = Snapshot {
        scale: args.scale,
        threads,
        n,
        a_nnz: a.nnz(),
        multiplies,
        budget_bytes,
        partial_bytes_total: probe.1.partial_bytes_total,
        plan,
        auto_vs_best_sweep: auto.multiplies_per_second / best_sweep.multiplies_per_second,
        auto_vs_default: auto.multiplies_per_second / default.multiplies_per_second,
        auto,
        default,
        best_sweep,
        sweep_points,
        sweep: points[..sweep_points].to_vec(),
        identity_checks,
        calibration_cold_error_seconds: cold.mean_abs_cost_error_seconds,
        calibration_warm_error_seconds: warm.mean_abs_cost_error_seconds,
        calibration_error_ratio: warm.mean_abs_cost_error_seconds
            / cold.mean_abs_cost_error_seconds.max(1e-300),
    };

    println!(
        "Tune snapshot — {n}x{n} R-MAT squared at scale {} on {} thread(s), \
         budget {} B (quarter of {} B footprint)",
        snapshot.scale, snapshot.threads, snapshot.budget_bytes, snapshot.partial_bytes_total
    );
    println!(
        "auto plan: {} panels ({} balance), {}-way merge, {} codec (budget formula {})",
        snapshot.auto.knobs.panels,
        snapshot.auto.knobs.balance,
        snapshot.auto.knobs.merge_ways,
        snapshot.auto.knobs.spill_codec,
        if snapshot.plan.budget_satisfied {
            "satisfied"
        } else {
            "unachievable"
        }
    );
    println!(
        "auto {:.3e} mult/s | default ({}p/{}w) {:.3e} | best of {} swept ({}p/{}w/{}) {:.3e}",
        snapshot.auto.multiplies_per_second,
        snapshot.default.knobs.panels,
        snapshot.default.knobs.merge_ways,
        snapshot.default.multiplies_per_second,
        snapshot.sweep_points,
        snapshot.best_sweep.knobs.panels,
        snapshot.best_sweep.knobs.merge_ways,
        snapshot.best_sweep.knobs.balance,
        snapshot.best_sweep.multiplies_per_second
    );
    println!(
        "auto/best {:.3}, auto/default {:.3}; {} bit-identity checks passed",
        snapshot.auto_vs_best_sweep, snapshot.auto_vs_default, snapshot.identity_checks
    );
    println!(
        "online calibration: cold error {:.3e} s -> warm {:.3e} s (x{:.2e})",
        snapshot.calibration_cold_error_seconds,
        snapshot.calibration_warm_error_seconds,
        snapshot.calibration_error_ratio
    );

    // Floors hold at the pinned snapshot scale only — explicit --scale
    // runs are exploratory.
    if !args.scale_explicit {
        assert!(
            snapshot.auto_vs_best_sweep >= 0.9,
            "auto-planned knobs fell below 0.9x the best swept point: {:.3}",
            snapshot.auto_vs_best_sweep
        );
        assert!(
            snapshot.auto_vs_default >= 1.0,
            "auto-planned knobs lost to the naive default config: {:.3}",
            snapshot.auto_vs_default
        );
        assert!(
            snapshot.calibration_warm_error_seconds < snapshot.calibration_cold_error_seconds,
            "online calibration failed to shrink the cost error: cold {:.3e} warm {:.3e}",
            snapshot.calibration_cold_error_seconds,
            snapshot.calibration_warm_error_seconds
        );
    }

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("TUNE_BENCH.json"));
    runner::dump_json(&Some(path), &snapshot);
}
