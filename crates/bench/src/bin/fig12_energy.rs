//! Figure 12: energy saving of SpArch over OuterSPACE, MKL, cuSPARSE,
//! CUSP and ARM Armadillo on the 20-benchmark suite.
//!
//! The paper's geometric means: 6.1× / 164× / 435× / 307× / 62×. SpArch's
//! energy comes from the simulator's activity counts × the calibrated
//! per-event constants; OuterSPACE uses its published 4.95 nJ/FLOP;
//! software platforms use `published power × calibrated time`, where the
//! calibrated time wall-clocks a host kernel — noisy, and contended when
//! sharded, so use `--threads 1` when those columns matter.

use serde::Serialize;
use sparch_baselines::{run_software, OuterSpaceModel, Platform};
use sparch_bench::{catalog, geomean, parse_args, print_table, runner};
use sparch_core::{SpArchConfig, SpArchSim};

#[derive(Serialize)]
struct Row {
    name: String,
    sparch_nj_per_flop: f64,
    over_outerspace: f64,
    over_mkl: f64,
    over_cusparse: f64,
    over_cusp: f64,
    over_armadillo: f64,
}

fn main() {
    let args = parse_args();

    let mut rows: Vec<Row> = runner::run_suite(&catalog(), &args, |entry, a| {
        let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        let sparch_energy = report.energy_total();
        let os = OuterSpaceModel::default().run(&a, &a);

        let mut savings = [0.0f64; 4];
        for (i, p) in Platform::ALL.iter().enumerate() {
            let sw = run_software(*p, &a, &a).energy_j;
            savings[i] = sw / sparch_energy;
        }

        Row {
            name: entry.name.to_string(),
            sparch_nj_per_flop: report.nj_per_flop(),
            over_outerspace: os.energy_j / sparch_energy,
            over_mkl: savings[0],
            over_cusparse: savings[1],
            over_cusp: savings[2],
            over_armadillo: savings[3],
        }
    });

    let gm = |f: fn(&Row) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    rows.push(Row {
        name: "GeoMean".into(),
        sparch_nj_per_flop: gm(|r| r.sparch_nj_per_flop),
        over_outerspace: gm(|r| r.over_outerspace),
        over_mkl: gm(|r| r.over_mkl),
        over_cusparse: gm(|r| r.over_cusparse),
        over_cusp: gm(|r| r.over_cusp),
        over_armadillo: gm(|r| r.over_armadillo),
    });

    println!(
        "Figure 12 — energy saving of SpArch over baselines (scale {}, paper geomeans: 6.1/164/435/307/62)\n",
        args.scale
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.3}", r.sparch_nj_per_flop),
                format!("{:.2}", r.over_outerspace),
                format!("{:.0}", r.over_mkl),
                format!("{:.0}", r.over_cusparse),
                format!("{:.0}", r.over_cusp),
                format!("{:.0}", r.over_armadillo),
            ]
        })
        .collect();
    print_table(
        &[
            "matrix",
            "SpArch nJ/FLOP",
            "vs OuterSPACE",
            "vs MKL",
            "vs cuSPARSE",
            "vs CUSP",
            "vs Armadillo",
        ],
        &table,
    );
    runner::dump_json(&args.json, &rows);
}
