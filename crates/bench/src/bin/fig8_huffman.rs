//! Figure 8: the Huffman scheduler's worked example.
//!
//! Reproduces the paper's totals exactly: 12 partial matrices with sizes
//! {15, 15, 13, 12, 9, 7, 3, 2, 2, 2, 2, 2}; the 2-way sequential
//! scheduler reaches a total node weight of 365, the 2-way Huffman
//! scheduler 354, the 4-way Huffman scheduler 228.

use sparch_bench::print_table;
use sparch_core::{MergePlan, SchedulerKind};

fn main() {
    let weights: [u64; 12] = [15, 15, 13, 12, 9, 7, 3, 2, 2, 2, 2, 2];
    let cases = [
        (
            "2-way sequential (Fig. 8a)",
            SchedulerKind::Sequential,
            2usize,
            365u64,
        ),
        ("2-way Huffman (Fig. 8b)", SchedulerKind::Huffman, 2, 354),
        ("4-way Huffman (Fig. 8c)", SchedulerKind::Huffman, 4, 228),
    ];
    println!("Figure 8 — Huffman tree scheduler worked example");
    println!(
        "leaf weights: {weights:?} (sum = {})\n",
        weights.iter().sum::<u64>()
    );
    let mut rows = Vec::new();
    for (name, kind, ways, paper) in cases {
        let plan = MergePlan::build(kind, &weights, ways);
        plan.validate();
        let measured = plan.estimated_total_weight();
        rows.push(vec![
            name.to_string(),
            paper.to_string(),
            measured.to_string(),
            if measured == paper {
                "exact".into()
            } else {
                "MISMATCH".into()
            },
            plan.rounds.len().to_string(),
        ]);
    }
    print_table(
        &[
            "scheduler",
            "paper total",
            "measured total",
            "match",
            "rounds",
        ],
        &rows,
    );
}
