//! Figure 8: the Huffman scheduler's worked example.
//!
//! Reproduces the paper's totals exactly: 12 partial matrices with sizes
//! {15, 15, 13, 12, 9, 7, 3, 2, 2, 2, 2, 2}; the 2-way sequential
//! scheduler reaches a total node weight of 365, the 2-way Huffman
//! scheduler 354, the 4-way Huffman scheduler 228.

use sparch_bench::{parse_args, print_table, runner};
use sparch_core::{MergePlan, SchedulerKind};
use sparch_exec::FnWorkload;

fn main() {
    let args = parse_args();
    let weights: [u64; 12] = [15, 15, 13, 12, 9, 7, 3, 2, 2, 2, 2, 2];
    let cases = [
        (
            "2-way sequential (Fig. 8a)",
            SchedulerKind::Sequential,
            2usize,
            365u64,
        ),
        ("2-way Huffman (Fig. 8b)", SchedulerKind::Huffman, 2, 354),
        ("4-way Huffman (Fig. 8c)", SchedulerKind::Huffman, 4, 228),
    ];
    println!("Figure 8 — Huffman tree scheduler worked example");
    println!(
        "leaf weights: {weights:?} (sum = {})\n",
        weights.iter().sum::<u64>()
    );
    let jobs: Vec<_> = cases
        .iter()
        .map(|&(name, kind, ways, paper)| {
            FnWorkload::new(
                name,
                move || MergePlan::build(kind, &weights, ways),
                move |plan: MergePlan| {
                    plan.validate();
                    let measured = plan.estimated_total_weight();
                    vec![
                        name.to_string(),
                        paper.to_string(),
                        measured.to_string(),
                        if measured == paper {
                            "exact".into()
                        } else {
                            "MISMATCH".into()
                        },
                        plan.rounds.len().to_string(),
                    ]
                },
            )
        })
        .collect();
    let rows: Vec<Vec<String>> = runner::runner(&args).quiet().run_all(&jobs);
    print_table(
        &[
            "scheduler",
            "paper total",
            "measured total",
            "match",
            "rounds",
        ],
        &rows,
    );
}
