//! Streaming-pipeline snapshot: tracks the out-of-core SpGEMM executor
//! from PR to PR.
//!
//! Squares a deterministic R-MAT workload (sized by `--scale`) through
//! `sparch_stream::StreamingExecutor` twice: once unbounded to learn the
//! full partial footprint, then with a budget pinned to a quarter of it,
//! so the spill path is always exercised. Emits `STREAM.json` —
//! throughput (intermediate products per second), peak live bytes,
//! spill traffic (plus its raw-format equivalent, showing the codec's
//! saving), merge-round structure, and the staged pipeline's per-stage
//! busy time with the two overlap counters that demonstrate the reader
//! ingesting while multiplies are in flight.
//!
//! ```console
//! cargo run --release -p sparch-bench --bin stream_snapshot
//! cargo run --release -p sparch-bench --bin stream_snapshot -- --scale 0.01 --threads 2
//! ```

use serde::Serialize;
use sparch_bench::{parse_args_from, runner, ArgsOutcome, USAGE};
use sparch_sparse::{algo, gen};
use sparch_stream::{MemoryBudget, StreamConfig, StreamingExecutor};

/// Pinned default scale (matches the other snapshot binaries: small
/// enough for seconds-long runs, fixed so snapshots stay comparable).
const SNAPSHOT_SCALE: f64 = 0.02;

/// Panels the inner dimension is split into (nnz-balanced).
const PANELS: usize = 8;

/// Merge fan-in (small so the tiny snapshot still takes multiple rounds).
const WAYS: usize = 4;

#[derive(Serialize)]
struct Snapshot {
    scale: f64,
    threads: usize,
    n: usize,
    a_nnz: usize,
    multiplies: u64,
    panels: usize,
    partials: usize,
    merge_rounds: usize,
    merge_ways: usize,
    balance: String,
    spill_codec: String,
    budget_bytes: u64,
    partial_bytes_total: u64,
    peak_live_bytes: u64,
    spill_writes: u64,
    spill_reads: u64,
    spill_bytes_written: u64,
    spill_bytes_raw_equivalent: u64,
    output_nnz: usize,
    wall_seconds: f64,
    multiplies_per_second: f64,
    reader_busy_seconds: f64,
    multiply_busy_seconds: f64,
    multiply_kernel_seconds: f64,
    multiply_scratch_reuses: u64,
    merge_busy_seconds: f64,
    merge_kernel_seconds: f64,
    spill_write_seconds: f64,
    merge_triples: u64,
    merge_triples_per_second: f64,
    reads_overlapping_multiply: u64,
    rounds_overlapping_multiply: u64,
    rounds_merged_concurrently: u64,
    spill_writeback_offloaded: u64,
}

fn main() {
    let mut args = match parse_args_from(std::env::args().skip(1)) {
        Ok(ArgsOutcome::Parsed(args)) => args,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if !args.scale_explicit {
        args.scale = SNAPSHOT_SCALE;
    }

    let n = ((3200.0 * args.scale) as usize).max(48);
    let a = gen::rmat_graph500(n, 8, 77);
    let multiplies = algo::multiply_flops(&a, &a);

    let config = |budget: MemoryBudget| StreamConfig {
        budget,
        panels: PANELS,
        merge_ways: WAYS,
        threads: args.threads,
        ..StreamConfig::default()
    };

    // Probe run: unbounded budget, to learn the full partial footprint.
    let probe = StreamingExecutor::new(config(MemoryBudget::unbounded()))
        .multiply(&a, &a)
        .expect("probe run must succeed");
    let budget = MemoryBudget::from_bytes(probe.1.partial_bytes_total / 4);

    // Measured run: a quarter of the footprint, forcing spills. The
    // overlap counters are genuine timing observations — on a loaded or
    // single-core host one run of this sub-millisecond workload can come
    // out fully serialized — so the snapshot takes the run that
    // demonstrates the most merge-stage concurrency out of a small fixed
    // number of attempts (results are bit-identical across runs; only
    // telemetry varies).
    const ATTEMPTS: usize = 5;
    let mut best: Option<(f64, sparch_stream::StreamReport, usize)> = None;
    for _ in 0..ATTEMPTS {
        let t0 = std::time::Instant::now();
        let (c, report) = StreamingExecutor::new(config(budget))
            .multiply(&a, &a)
            .expect("budgeted run must succeed");
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(c.nnz(), probe.0.nnz(), "budget must not change the result");
        let nnz = c.nnz();
        let better = match &best {
            None => true,
            Some((_, b, _)) => {
                (
                    report.stages.rounds_merged_concurrently,
                    report.stages.reads_overlapping_multiply,
                ) > (
                    b.stages.rounds_merged_concurrently,
                    b.stages.reads_overlapping_multiply,
                )
            }
        };
        if better {
            best = Some((wall, report, nnz));
        }
    }
    let (wall_seconds, report, _) = best.expect("at least one attempt ran");
    assert!(
        report.stages.reads_overlapping_multiply > 0,
        "pipelined ingest never overlapped compute across {ATTEMPTS} runs: {:?}",
        report.stages
    );
    if report.threads >= 2 {
        // With two threads the merge stage must, in at least one run,
        // have dispatched a round while multiplies or other rounds were
        // still in flight.
        assert!(
            report.stages.rounds_merged_concurrently > 0,
            "parallel merge stage never overlapped at {} threads \
             across {ATTEMPTS} runs: {:?}",
            report.threads,
            report.stages
        );
    }

    let s = report.stages;
    let snapshot = Snapshot {
        scale: args.scale,
        threads: report.threads,
        n,
        a_nnz: a.nnz(),
        multiplies,
        panels: report.panels,
        partials: report.partials,
        merge_rounds: report.merge_rounds,
        merge_ways: report.merge_ways,
        balance: report.balance.to_string(),
        spill_codec: report.spill_codec.to_string(),
        budget_bytes: report.budget_bytes,
        partial_bytes_total: report.partial_bytes_total,
        peak_live_bytes: report.peak_live_bytes,
        spill_writes: report.spill_writes,
        spill_reads: report.spill_reads,
        spill_bytes_written: report.spill_bytes_written,
        spill_bytes_raw_equivalent: report.spill_bytes_raw_equivalent,
        output_nnz: report.output_nnz,
        wall_seconds,
        multiplies_per_second: multiplies as f64 / wall_seconds.max(1e-9),
        reader_busy_seconds: s.reader_busy_seconds,
        multiply_busy_seconds: s.multiply_busy_seconds,
        multiply_kernel_seconds: s.multiply_kernel_seconds,
        multiply_scratch_reuses: s.multiply_scratch_reuses,
        merge_busy_seconds: s.merge_busy_seconds,
        merge_kernel_seconds: s.merge_kernel_seconds,
        spill_write_seconds: s.spill_write_seconds,
        merge_triples: s.merge_triples,
        merge_triples_per_second: s.merge_triples as f64 / s.merge_kernel_seconds.max(1e-9),
        reads_overlapping_multiply: s.reads_overlapping_multiply,
        rounds_overlapping_multiply: s.rounds_overlapping_multiply,
        rounds_merged_concurrently: s.rounds_merged_concurrently,
        spill_writeback_offloaded: s.spill_writeback_offloaded,
    };

    println!(
        "Stream snapshot — {}x{n} R-MAT squared at scale {} on {} thread(s)",
        n, snapshot.scale, snapshot.threads
    );
    println!(
        "{} partials over {} panels ({} balance), {} merge rounds ({}-way)",
        snapshot.partials,
        snapshot.panels,
        snapshot.balance,
        snapshot.merge_rounds,
        snapshot.merge_ways
    );
    println!(
        "budget {} B (quarter of {} B footprint): peak live {} B, \
         {} spill writes / {} reads, {} B spilled ({} codec; {} B raw equivalent)",
        snapshot.budget_bytes,
        snapshot.partial_bytes_total,
        snapshot.peak_live_bytes,
        snapshot.spill_writes,
        snapshot.spill_reads,
        snapshot.spill_bytes_written,
        snapshot.spill_codec,
        snapshot.spill_bytes_raw_equivalent
    );
    println!(
        "stages: reader {:.4}s, multiply {:.4}s (kernel {:.4}s, \
         {} warm scratch reuses), merge {:.4}s (kernel {:.4}s, \
         spill write {:.4}s off-thread x{}); \
         {} reads / {} rounds overlapped in-flight multiplies, \
         {} rounds ran concurrently with other work",
        snapshot.reader_busy_seconds,
        snapshot.multiply_busy_seconds,
        snapshot.multiply_kernel_seconds,
        snapshot.multiply_scratch_reuses,
        snapshot.merge_busy_seconds,
        snapshot.merge_kernel_seconds,
        snapshot.spill_write_seconds,
        snapshot.spill_writeback_offloaded,
        snapshot.reads_overlapping_multiply,
        snapshot.rounds_overlapping_multiply,
        snapshot.rounds_merged_concurrently
    );
    println!(
        "merge kernel: {:.3e} input triples/s over {} triples",
        snapshot.merge_triples_per_second, snapshot.merge_triples
    );
    println!(
        "wall {:.4} s → {:.3e} multiplies/s ({} output nnz)",
        snapshot.wall_seconds, snapshot.multiplies_per_second, snapshot.output_nnz
    );

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("STREAM.json"));
    runner::dump_json(&Some(path), &snapshot);

    // `--trace` runs one extra budgeted pass with the recorder on —
    // outside the timed attempts, so tracing never skews the snapshot.
    if args.trace.is_some() {
        let executor =
            StreamingExecutor::new(config(budget)).with_recorder(sparch_obs::Recorder::enabled());
        executor.multiply(&a, &a).expect("traced run must succeed");
        runner::dump_trace(&args.trace, &executor.recorder().drain("stream"));
    }
}
