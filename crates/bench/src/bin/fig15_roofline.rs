//! Figure 15: roofline analysis.
//!
//! The paper computes a theoretical operational intensity of
//! 0.19 FLOP/byte on its suite, a bandwidth roof of 23.9 GFLOP/s at that
//! intensity (128 GB/s), and a compute roof of 32 GFLOP/s. SpArch attains
//! 10.4 GFLOP/s — 2.3× under the roof — vs OuterSPACE's 2.5.

use sparch_baselines::OuterSpaceModel;
use sparch_bench::{catalog, geomean, parse_args, print_table, runner};
use sparch_core::{roofline, Roofline, SpArchConfig, SpArchSim};

fn main() {
    let args = parse_args();
    let model = Roofline::paper_default();

    // Per matrix: (operational intensity, SpArch GFLOPS, OuterSPACE GFLOPS).
    let samples: Vec<(f64, f64, f64)> = runner::run_suite(&catalog(), &args, |_, a| {
        (
            roofline::theoretical_intensity(&a, &a),
            SpArchSim::new(SpArchConfig::default())
                .run(&a, &a)
                .perf
                .gflops,
            OuterSpaceModel::default().run(&a, &a).gflops,
        )
    });
    let oi = geomean(&samples.iter().map(|s| s.0).collect::<Vec<_>>());
    let ours = geomean(&samples.iter().map(|s| s.1).collect::<Vec<_>>());
    let outer = geomean(&samples.iter().map(|s| s.2).collect::<Vec<_>>());
    let point = model.place(oi, ours);

    println!("Figure 15 — roofline (scale {})\n", args.scale);
    print_table(
        &["quantity", "measured", "paper"],
        &[
            vec![
                "operational intensity (FLOP/B)".into(),
                format!("{oi:.3}"),
                "0.19".into(),
            ],
            vec![
                "compute roof (GFLOP/s)".into(),
                format!("{:.1}", model.compute_roof_gflops),
                "32.0".into(),
            ],
            vec![
                "bandwidth roof @ OI (GFLOP/s)".into(),
                format!("{:.1}", point.roof_gflops),
                "23.9".into(),
            ],
            vec![
                "SpArch attained (GFLOP/s)".into(),
                format!("{ours:.1}"),
                "10.4".into(),
            ],
            vec![
                "OuterSPACE attained (GFLOP/s)".into(),
                format!("{outer:.1}"),
                "2.5".into(),
            ],
            vec![
                "roof / SpArch".into(),
                format!("{:.1}x", point.roof_gflops / ours),
                "2.3x".into(),
            ],
            vec![
                "SpArch / OuterSPACE".into(),
                format!("{:.1}x", ours / outer),
                "4.2x".into(),
            ],
        ],
    );
}
