//! Figure 14: performance on synthesized rMAT benchmarks vs MKL.
//!
//! The paper sweeps 19 rMAT configurations (n ∈ {5k, 10k, 20k, 40k, 80k} ×
//! average degree ∈ {4, 8, 16, 32}, without 80k-x32), with densities from
//! 6e-3 down to 5e-5. SpArch's FLOPS stay relatively stable as matrices
//! get sparser (2.7× degradation) while MKL degrades harder (5.9×) — the
//! reproduction target is that stability gap, plus >10× absolute headroom.
//! (The MKL column wall-clocks a host kernel: noisy, and contended when
//! sharded — use `--threads 1` when it matters.)

use serde::Serialize;
use sparch_baselines::{run_software, Platform};
use sparch_bench::{geomean, parse_args, print_table, runner};
use sparch_core::{SpArchConfig, SpArchSim};
use sparch_exec::FnWorkload;
use sparch_sparse::gen;

#[derive(Serialize)]
struct Row {
    name: String,
    density: f64,
    mkl_flops: f64,
    sparch_flops: f64,
}

fn main() {
    let args = parse_args();
    // The paper's 19 combos, ordered by density as in Figure 14.
    let combos: [(usize, usize); 19] = [
        (5_000, 32),
        (5_000, 16),
        (10_000, 32),
        (5_000, 8),
        (10_000, 16),
        (20_000, 32),
        (5_000, 4),
        (10_000, 8),
        (20_000, 16),
        (40_000, 32),
        (10_000, 4),
        (20_000, 8),
        (40_000, 16),
        (20_000, 4),
        (40_000, 8),
        (80_000, 16),
        (40_000, 4),
        (80_000, 8),
        (80_000, 4),
    ];
    let scale = args.scale;
    let jobs: Vec<_> = combos
        .iter()
        .map(|&(n, degree)| {
            let name = format!("rmat-{}k-x{}", n / 1000, degree);
            let row_name = name.clone();
            FnWorkload::new(
                name,
                move || {
                    let n_scaled = ((n as f64 * scale * 10.0) as usize).clamp(1024, n);
                    gen::rmat_graph500(n_scaled, degree, 1234 + degree as u64)
                },
                move |a| {
                    let report = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
                    let mkl = run_software(Platform::Mkl, &a, &a);
                    Row {
                        name: row_name.clone(),
                        density: a.density(),
                        mkl_flops: mkl.calibrated_gflops * 1e9,
                        sparch_flops: report.perf.gflops * 1e9,
                    }
                },
            )
        })
        .collect();
    let mut rows: Vec<Row> = runner::runner(&args).run_all(&jobs);

    let geo = Row {
        name: "GeoMean".into(),
        density: geomean(&rows.iter().map(|r| r.density).collect::<Vec<_>>()),
        mkl_flops: geomean(&rows.iter().map(|r| r.mkl_flops).collect::<Vec<_>>()),
        sparch_flops: geomean(&rows.iter().map(|r| r.sparch_flops).collect::<Vec<_>>()),
    };
    let degradation = |f: fn(&Row) -> f64| {
        let first = f(&rows[0]);
        let last = f(rows.last().unwrap());
        first / last
    };
    let sparch_deg = degradation(|r| r.sparch_flops);
    let mkl_deg = degradation(|r| r.mkl_flops);
    rows.push(geo);

    println!(
        "Figure 14 — FLOPS on rMAT benchmarks (scale {}, paper: MKL geomean 5.7e8, Ours 7.5e9)\n",
        args.scale
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1e}", r.density),
                format!("{:.3e}", r.mkl_flops),
                format!("{:.3e}", r.sparch_flops),
                format!("{:.1}x", r.sparch_flops / r.mkl_flops),
            ]
        })
        .collect();
    print_table(
        &["config", "density", "MKL FLOPS", "SpArch FLOPS", "ratio"],
        &table,
    );
    println!(
        "\ndensest→sparsest degradation: SpArch {sparch_deg:.1}x (paper 2.7x), MKL {mkl_deg:.1}x (paper 5.9x)"
    );
    runner::dump_json(&args.json, &rows);
}
