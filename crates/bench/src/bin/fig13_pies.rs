//! Figure 13: area (a) and power (b) breakdown of SpArch per component.
//!
//! Area comes from the configuration-anchored model (exact at the default
//! configuration). Power is the simulator's measured per-component energy
//! divided by the task time, compared against the paper's published
//! milliwatt breakdown.

use sparch_bench::{catalog, parse_args, print_table};
use sparch_core::{SpArchConfig, SpArchSim};
use sparch_mem::EnergyModel;

fn main() {
    let args = parse_args();
    let sim = SpArchSim::new(SpArchConfig::default());

    // Representative run: aggregate energy/time over a few suite matrices.
    let mut component_j = [0.0f64; 6];
    let mut seconds = 0.0f64;
    let mut area = None;
    for entry in catalog().into_iter().take(6) {
        let a = entry.build(args.scale);
        let r = sim.run(&a, &a);
        component_j[0] += r.energy.column_fetcher;
        component_j[1] += r.energy.row_prefetcher;
        component_j[2] += r.energy.multiplier_array;
        component_j[3] += r.energy.merge_tree;
        component_j[4] += r.energy.partial_writer;
        component_j[5] += r.energy.hbm;
        seconds += r.perf.seconds;
        area = Some(r.area);
    }
    let area = area.expect("at least one run");

    println!("Figure 13(a) — area breakdown (mm2)\n");
    let total_area = area.total();
    let area_rows = [
        ("Column Fetcher", area.column_fetcher, 2.64),
        ("Row Prefetcher", area.row_prefetcher, 5.8),
        ("Multiplier Array", area.multiplier_array, 0.45),
        ("Merge Tree", area.merge_tree, 17.27),
        ("Partial Mat Writer", area.partial_writer, 2.34),
    ];
    print_table(
        &["component", "mm2", "share", "paper mm2"],
        &area_rows
            .iter()
            .map(|(n, v, p)| {
                vec![
                    n.to_string(),
                    format!("{v:.2}"),
                    format!("{:.1}%", v / total_area * 100.0),
                    format!("{p:.2}"),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("total: {total_area:.2} mm2 (paper: 28.49)\n");

    println!(
        "Figure 13(b) — power breakdown (mW) over {} suite matrices\n",
        6
    );
    let paper_mw = EnergyModel::paper_power_breakdown_mw();
    let names = [
        "Column Fetcher",
        "Row Prefetcher",
        "Multiplier Array",
        "Merge Tree",
        "Partial Mat Writer",
        "HBM",
    ];
    let total_w: f64 = component_j.iter().sum::<f64>() / seconds;
    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mw = component_j[i] / seconds * 1e3;
            vec![
                n.to_string(),
                format!("{mw:.1}"),
                format!("{:.1}%", mw / (total_w * 1e3) * 100.0),
                format!("{:.1}", paper_mw[i].1),
            ]
        })
        .collect();
    print_table(&["component", "mW (measured)", "share", "paper mW"], &rows);
    println!("total: {:.2} W (paper: 9.26 W incl. static)", total_w);
}
