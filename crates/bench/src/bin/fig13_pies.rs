//! Figure 13: area (a) and power (b) breakdown of SpArch per component.
//!
//! Area comes from the configuration-anchored model (exact at the default
//! configuration). Power is the simulator's measured per-component energy
//! divided by the task time, compared against the paper's published
//! milliwatt breakdown.

use serde::Serialize;
use sparch_bench::{catalog, parse_args, print_table, runner};
use sparch_core::{SpArchConfig, SpArchSim};
use sparch_mem::{AreaBreakdown, EnergyModel};

/// Per-matrix energy/time sample measured on a worker.
#[derive(Serialize)]
struct Sample {
    component_j: [f64; 6],
    seconds: f64,
    area: AreaBreakdown,
}

fn main() {
    let args = parse_args();

    // Representative run: aggregate energy/time over a few suite matrices.
    let entries: Vec<_> = catalog().into_iter().take(6).collect();
    let samples = runner::run_suite(&entries, &args, |_, a| {
        let r = SpArchSim::new(SpArchConfig::default()).run(&a, &a);
        Sample {
            component_j: [
                r.energy.column_fetcher,
                r.energy.row_prefetcher,
                r.energy.multiplier_array,
                r.energy.merge_tree,
                r.energy.partial_writer,
                r.energy.hbm,
            ],
            seconds: r.perf.seconds,
            area: r.area,
        }
    });

    let mut component_j = [0.0f64; 6];
    let mut seconds = 0.0f64;
    for s in &samples {
        for (acc, j) in component_j.iter_mut().zip(s.component_j) {
            *acc += j;
        }
        seconds += s.seconds;
    }
    // Area depends only on the configuration: every sample agrees.
    let area = &samples.first().expect("at least one run").area;

    println!("Figure 13(a) — area breakdown (mm2)\n");
    let total_area = area.total();
    let area_rows = [
        ("Column Fetcher", area.column_fetcher, 2.64),
        ("Row Prefetcher", area.row_prefetcher, 5.8),
        ("Multiplier Array", area.multiplier_array, 0.45),
        ("Merge Tree", area.merge_tree, 17.27),
        ("Partial Mat Writer", area.partial_writer, 2.34),
    ];
    print_table(
        &["component", "mm2", "share", "paper mm2"],
        &area_rows
            .iter()
            .map(|(n, v, p)| {
                vec![
                    n.to_string(),
                    format!("{v:.2}"),
                    format!("{:.1}%", v / total_area * 100.0),
                    format!("{p:.2}"),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("total: {total_area:.2} mm2 (paper: 28.49)\n");

    println!(
        "Figure 13(b) — power breakdown (mW) over {} suite matrices\n",
        entries.len()
    );
    let paper_mw = EnergyModel::paper_power_breakdown_mw();
    let names = [
        "Column Fetcher",
        "Row Prefetcher",
        "Multiplier Array",
        "Merge Tree",
        "Partial Mat Writer",
        "HBM",
    ];
    let total_w: f64 = component_j.iter().sum::<f64>() / seconds;
    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mw = component_j[i] / seconds * 1e3;
            vec![
                n.to_string(),
                format!("{mw:.1}"),
                format!("{:.1}%", mw / (total_w * 1e3) * 100.0),
                format!("{:.1}", paper_mw[i].1),
            ]
        })
        .collect();
    print_table(&["component", "mW (measured)", "share", "paper mW"], &rows);
    println!("total: {:.2} W (paper: 9.26 W incl. static)", total_w);
}
