//! Multiply-kernel snapshot: tracks the panel SpGEMM kernel's row
//! throughput from PR to PR.
//!
//! Runs the multiply stage's actual workload — a tall matrix sliced into
//! condensed column panels, each multiplied against the matching B row
//! panel — through both kernels: the scratch-reusing
//! [`gustavson_scratch_on_rows`] the pipeline workers run, and the seed
//! [`gustavson_reference`], kept verbatim as the baseline. The panel
//! sweep covers the regimes where the rewrite's three levers engage at
//! different strengths: few wide panels (pre-sizing and SPA reuse), many
//! narrow panels (the condensed row index — most A rows are empty in a
//! narrow panel, and the reference still walks all of them). Emits
//! `MULT_BENCH.json` with rows-per-second for both kernels per panel
//! count plus the geometric-mean speedup. At the pinned default scale
//! the snapshot asserts the rewrite holds its ≥ 1.3× advantage; explicit
//! `--scale` runs (the CI smoke) only measure.
//!
//! ```console
//! cargo run --release -p sparch-bench --bin multiply_snapshot
//! cargo run --release -p sparch-bench --bin multiply_snapshot -- --scale 0.002 --json /tmp/MULT_BENCH.json
//! ```

use serde::Serialize;
use sparch_bench::runner;
use sparch_bench::{geomean, parse_args_from, ArgsOutcome, USAGE};
use sparch_sparse::{algo, gen, Csr, Index};

/// Pinned default scale (matches the other snapshot binaries).
const SNAPSHOT_SCALE: f64 = 0.02;

/// Panel counts measured: the executor's budget planner lands anywhere
/// in this range depending on the memory budget.
const PANELS: [usize; 3] = [4, 16, 64];

/// Minimum measured time per (kernel, panel-count) cell, so per-run
/// noise averages out even at tiny scales.
const MIN_SECONDS: f64 = 0.3;
const MIN_ITERS: usize = 3;

#[derive(Serialize)]
struct PanelRow {
    panels: usize,
    live_rows_total: usize,
    flops: u64,
    output_nnz: usize,
    scratch_rows_per_second: f64,
    reference_rows_per_second: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Snapshot {
    scale: f64,
    rows: usize,
    cols: usize,
    nnz_a: usize,
    nnz_b: usize,
    rows_by_panels: Vec<PanelRow>,
    geomean_speedup: f64,
}

/// One pre-sliced multiply job: a condensed A column panel, its
/// occupied-row index, and the matching B row panel.
struct Job {
    a: Csr,
    live: Vec<Index>,
    b: Csr,
}

/// Times `kernel` over repeated passes across `jobs` (slicing excluded —
/// it happens once, outside) and returns (A rows covered / second, the
/// per-job outputs of the last pass).
fn bench<F>(rows: usize, jobs: &[Job], mut kernel: F) -> (f64, Vec<Csr>)
where
    F: FnMut(&Job) -> Csr,
{
    let mut seconds = 0.0;
    let mut iters = 0usize;
    let mut out = Vec::new();
    while seconds < MIN_SECONDS || iters < MIN_ITERS {
        out.clear();
        let t0 = std::time::Instant::now();
        for job in jobs {
            out.push(kernel(job));
        }
        seconds += t0.elapsed().as_secs_f64();
        iters += 1;
    }
    ((rows * jobs.len() * iters) as f64 / seconds.max(1e-9), out)
}

/// Σ over A entries of nnz(B row) — the multiplication count both
/// kernels perform for one pass over `jobs`.
fn flops(jobs: &[Job]) -> u64 {
    jobs.iter()
        .map(|job| {
            (0..job.a.rows())
                .flat_map(|i| job.a.row(i).0)
                .map(|&k| job.b.row(k as usize).0.len() as u64)
                .sum::<u64>()
        })
        .sum()
}

fn main() {
    let mut args = match parse_args_from(std::env::args().skip(1)) {
        Ok(ArgsOutcome::Parsed(args)) => args,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if !args.scale_explicit {
        args.scale = SNAPSHOT_SCALE;
    }

    let rows = ((200_000.0 * args.scale) as usize).max(256);
    // B is wide on purpose: the SPA arrays are O(cols), so this is the
    // dimension that decides how much a kernel pays for not reusing them.
    let cols = ((4_000_000.0 * args.scale) as usize).max(512);
    let nnz_a = ((750_000.0 * args.scale) as usize).max(2_000);
    let nnz_b = ((750_000.0 * args.scale) as usize).max(2_000);
    let a = gen::uniform_random(rows, rows, nnz_a, 41);
    let b = gen::uniform_random(rows, cols, nnz_b, 42);

    println!(
        "Multiply kernel snapshot — {rows}x{rows} * {rows}x{cols}, \
         ~{nnz_a}/{nnz_b} nnz, scale {}",
        args.scale
    );

    let mut rows_by_panels = Vec::new();
    let mut scratch = algo::MultiplyScratch::new();
    for panels in PANELS {
        let width = rows.div_ceil(panels);
        let jobs: Vec<Job> = (0..panels)
            .map(|p| {
                // Both ends clamp: at tiny scales the last panels can be
                // empty, which is exactly what the executor hands workers
                // when the planner over-partitions.
                let range = (p * width).min(rows)..((p + 1) * width).min(rows);
                let (a_panel, live) = a.col_panel_condensed(range.clone());
                Job {
                    a: a_panel,
                    live,
                    b: b.row_panel(range),
                }
            })
            .collect();
        let live_rows_total = jobs.iter().map(|j| j.live.len()).sum();

        // One untimed pass warms the scratch: steady-state is what a
        // pipeline worker sees on every job after its first.
        for job in &jobs {
            algo::gustavson_scratch_on_rows(&job.a, &job.b, &job.live, &mut scratch);
        }
        let (scratch_rps, outputs) = bench(rows, &jobs, |job| {
            algo::gustavson_scratch_on_rows(&job.a, &job.b, &job.live, &mut scratch)
        });
        let (reference_rps, references) =
            bench(rows, &jobs, |job| algo::gustavson_reference(&job.a, &job.b));
        assert_eq!(outputs, references, "kernels disagree at {panels} panels");

        let speedup = scratch_rps / reference_rps.max(1e-9);
        println!(
            "  {panels} panels: scratch {scratch_rps:.3e} rows/s vs reference \
             {reference_rps:.3e} rows/s — {speedup:.2}x"
        );
        rows_by_panels.push(PanelRow {
            panels,
            live_rows_total,
            flops: flops(&jobs),
            output_nnz: outputs.iter().map(Csr::nnz).sum(),
            scratch_rows_per_second: scratch_rps,
            reference_rows_per_second: reference_rps,
            speedup,
        });
    }

    let speedups: Vec<f64> = rows_by_panels.iter().map(|r| r.speedup).collect();
    let geomean_speedup = geomean(&speedups);
    println!("geomean speedup: {geomean_speedup:.2}x");
    if !args.scale_explicit {
        assert!(
            geomean_speedup >= 1.3,
            "multiply kernel regressed below the 1.3x floor over the seed \
             Gustavson kernel: {geomean_speedup:.2}x"
        );
    }

    let snapshot = Snapshot {
        scale: args.scale,
        rows,
        cols,
        nnz_a,
        nnz_b,
        rows_by_panels,
        geomean_speedup,
    };
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("MULT_BENCH.json"));
    runner::dump_json(&Some(path), &snapshot);
}
