//! Figure 17: design space exploration on buffer sizes and array sizes.
//!
//! Four sweeps (select with `--sweep line|lines|merger|lookahead`, or run
//! all by default):
//!
//! * (a) prefetch-buffer **line size** 24..96 at 1024 lines — longer lines
//!   help until diminishing returns (paper picks 48),
//! * (b) **line count** at fixed 49152-element capacity — more lines cut
//!   DRAM but replacement logic slows past 1024 (paper picks 1024×48),
//! * (c) **comparator array size** 1×1..16×16 — linear until memory-bound
//!   (paper picks 16×16),
//! * (d) **look-ahead FIFO** 1k..16k — better replacement vs longer
//!   round startup (paper picks 8192).

use serde::Serialize;
use sparch_bench::{catalog, geomean, parse_args, print_table, runner};
use sparch_core::{SimScratch, SpArchConfig, SpArchSim};
use sparch_exec::FnWorkload;
use sparch_sparse::Csr;

#[derive(Serialize)]
struct Point {
    sweep: &'static str,
    setting: String,
    gflops: f64,
    dram_mb: f64,
}

/// Builds the sweep's design points: `(sweep family, setting, config)`.
fn design_points(which: &str) -> Vec<(&'static str, String, SpArchConfig)> {
    let mut points = Vec::new();

    if which == "all" || which == "line" {
        for line in [24usize, 36, 48, 60, 72, 84, 96] {
            let mut c = SpArchConfig::default();
            c.prefetch.line_elems = line;
            points.push(("line", format!("1024x{line}"), c));
        }
    }
    if which == "all" || which == "lines" {
        for (lines, elems) in [(2048usize, 24usize), (1024, 48), (512, 96), (256, 192)] {
            let mut c = SpArchConfig::default();
            c.prefetch.lines = lines;
            c.prefetch.line_elems = elems;
            points.push(("lines", format!("{lines}x{elems}"), c));
        }
    }
    if which == "all" || which == "merger" {
        for n in [1usize, 2, 4, 8, 16] {
            let c = SpArchConfig::default().with_merger_width(n);
            points.push(("merger", format!("{n}x{n}"), c));
        }
    }
    if which == "all" || which == "policy" {
        for (name, policy) in [
            ("belady (paper)", sparch_core::ReplacementPolicy::Belady),
            ("lru", sparch_core::ReplacementPolicy::Lru),
        ] {
            let mut c = SpArchConfig::default();
            c.prefetch.policy = policy;
            points.push(("policy", name.into(), c));
        }
    }
    if which == "all" || which == "lookahead" {
        for size in [1024usize, 2048, 4096, 8192, 16384] {
            let mut c = SpArchConfig::default();
            c.prefetch.lookahead = size;
            points.push(("lookahead", size.to_string(), c));
        }
    }
    points
}

fn main() {
    let args = parse_args();
    let which = args.sweep.clone().unwrap_or_else(|| "all".into());
    let scale = args.scale;

    // One workload per design point, all sharded in a single batch; the
    // spec list is built once and its configs borrowed by the jobs, so
    // labels can never drift out of step with the measurements.
    let spec = design_points(&which);
    let jobs: Vec<_> = spec
        .iter()
        .map(|(sweep, setting, config)| {
            FnWorkload::new(
                format!("{sweep} {setting}"),
                move || {
                    catalog()
                        .into_iter()
                        .step_by(3)
                        .map(|e| e.build(scale))
                        .collect::<Vec<Csr>>()
                },
                move |mats: Vec<Csr>| {
                    let sim = SpArchSim::new(config.clone());
                    let mut scratch = SimScratch::new();
                    let mut gflops = Vec::new();
                    let mut mbs = Vec::new();
                    for a in &mats {
                        let r = sim.run_with_scratch(a, a, &mut scratch);
                        gflops.push(r.perf.gflops);
                        mbs.push(r.dram_mb());
                    }
                    (geomean(&gflops), geomean(&mbs))
                },
            )
        })
        .collect::<Vec<_>>();
    let measured = runner::runner(&args).run_all(&jobs);
    drop(jobs);

    let points: Vec<Point> = spec
        .into_iter()
        .zip(measured)
        .map(|((sweep, setting, _), (gflops, dram_mb))| Point {
            sweep,
            setting,
            gflops,
            dram_mb,
        })
        .collect();

    let headers: [(&str, &str); 5] = [
        (
            "line",
            "Figure 17(a) — prefetch buffer line size (1024 lines)",
        ),
        (
            "lines",
            "\nFigure 17(b) — line count at fixed 49152-element capacity",
        ),
        ("merger", "\nFigure 17(c) — comparator array size"),
        (
            "policy",
            "\nExtension — replacement policy ablation (Bélády vs LRU)",
        ),
        ("lookahead", "\nFigure 17(d) — look-ahead FIFO size"),
    ];
    for (sweep, header) in headers {
        if points.iter().any(|p| p.sweep == sweep) {
            println!("{header}\n");
            print_sweep(&points, sweep);
        }
    }

    runner::dump_json(&args.json, &points);
}

fn print_sweep(points: &[Point], sweep: &str) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .filter(|p| p.sweep == sweep)
        .map(|p| {
            vec![
                p.setting.clone(),
                format!("{:.2}", p.gflops),
                format!("{:.1}", p.dram_mb),
            ]
        })
        .collect();
    print_table(&["setting", "GFLOPS", "DRAM MB"], &rows);
}
