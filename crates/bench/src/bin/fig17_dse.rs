//! Figure 17: design space exploration on buffer sizes and array sizes.
//!
//! Four sweeps (select with `--sweep line|lines|merger|lookahead`, or run
//! all by default):
//!
//! * (a) prefetch-buffer **line size** 24..96 at 1024 lines — longer lines
//!   help until diminishing returns (paper picks 48),
//! * (b) **line count** at fixed 49152-element capacity — more lines cut
//!   DRAM but replacement logic slows past 1024 (paper picks 1024×48),
//! * (c) **comparator array size** 1×1..16×16 — linear until memory-bound
//!   (paper picks 16×16),
//! * (d) **look-ahead FIFO** 1k..16k — better replacement vs longer
//!   round startup (paper picks 8192).

use serde::Serialize;
use sparch_bench::{catalog, geomean, parse_args, print_table, runner};
use sparch_core::{SpArchConfig, SpArchSim};

#[derive(Serialize)]
struct Point {
    sweep: &'static str,
    setting: String,
    gflops: f64,
    dram_mb: f64,
}

fn measure(config: SpArchConfig, scale: f64) -> (f64, f64) {
    let entries: Vec<_> = catalog().into_iter().step_by(3).collect();
    let sim = SpArchSim::new(config);
    let mut gflops = Vec::new();
    let mut mbs = Vec::new();
    for entry in entries {
        let a = entry.build(scale);
        let r = sim.run(&a, &a);
        gflops.push(r.perf.gflops);
        mbs.push(r.dram_mb());
    }
    (geomean(&gflops), geomean(&mbs))
}

fn main() {
    let args = parse_args();
    let which = args.sweep.clone().unwrap_or_else(|| "all".into());
    let mut points: Vec<Point> = Vec::new();

    if which == "all" || which == "line" {
        println!("Figure 17(a) — prefetch buffer line size (1024 lines)\n");
        for line in [24usize, 36, 48, 60, 72, 84, 96] {
            let mut c = SpArchConfig::default();
            c.prefetch.line_elems = line;
            let (g, mb) = measure(c, args.scale);
            points.push(Point {
                sweep: "line",
                setting: format!("1024x{line}"),
                gflops: g,
                dram_mb: mb,
            });
            eprintln!("done line {line}");
        }
        print_sweep(&points, "line");
    }

    if which == "all" || which == "lines" {
        println!("\nFigure 17(b) — line count at fixed 49152-element capacity\n");
        for (lines, elems) in [(2048usize, 24usize), (1024, 48), (512, 96), (256, 192)] {
            let mut c = SpArchConfig::default();
            c.prefetch.lines = lines;
            c.prefetch.line_elems = elems;
            let (g, mb) = measure(c, args.scale);
            points.push(Point {
                sweep: "lines",
                setting: format!("{lines}x{elems}"),
                gflops: g,
                dram_mb: mb,
            });
            eprintln!("done lines {lines}");
        }
        print_sweep(&points, "lines");
    }

    if which == "all" || which == "merger" {
        println!("\nFigure 17(c) — comparator array size\n");
        for n in [1usize, 2, 4, 8, 16] {
            let c = SpArchConfig::default().with_merger_width(n);
            let (g, mb) = measure(c, args.scale);
            points.push(Point {
                sweep: "merger",
                setting: format!("{n}x{n}"),
                gflops: g,
                dram_mb: mb,
            });
            eprintln!("done merger {n}");
        }
        print_sweep(&points, "merger");
    }

    if which == "all" || which == "policy" {
        println!("\nExtension — replacement policy ablation (Bélády vs LRU)\n");
        for (name, policy) in [
            ("belady (paper)", sparch_core::ReplacementPolicy::Belady),
            ("lru", sparch_core::ReplacementPolicy::Lru),
        ] {
            let mut c = SpArchConfig::default();
            c.prefetch.policy = policy;
            let (g, mb) = measure(c, args.scale);
            points.push(Point {
                sweep: "policy",
                setting: name.into(),
                gflops: g,
                dram_mb: mb,
            });
            eprintln!("done policy {name}");
        }
        print_sweep(&points, "policy");
    }

    if which == "all" || which == "lookahead" {
        println!("\nFigure 17(d) — look-ahead FIFO size\n");
        for size in [1024usize, 2048, 4096, 8192, 16384] {
            let mut c = SpArchConfig::default();
            c.prefetch.lookahead = size;
            let (g, mb) = measure(c, args.scale);
            points.push(Point {
                sweep: "lookahead",
                setting: size.to_string(),
                gflops: g,
                dram_mb: mb,
            });
            eprintln!("done lookahead {size}");
        }
        print_sweep(&points, "lookahead");
    }

    runner::dump_json(&args.json, &points);
}

fn print_sweep(points: &[Point], sweep: &str) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .filter(|p| p.sweep == sweep)
        .map(|p| {
            vec![
                p.setting.clone(),
                format!("{:.2}", p.gflops),
                format!("{:.1}", p.dram_mb),
            ]
        })
        .collect();
    print_table(&["setting", "GFLOPS", "DRAM MB"], &rows);
}
