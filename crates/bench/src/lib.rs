//! Benchmark harness for the SpArch reproduction.
//!
//! One binary per table/figure of the paper's evaluation section (see
//! DESIGN.md §4 for the full index), plus criterion micro-benches. This
//! library holds the shared pieces:
//!
//! * [`suite`] — the 20-benchmark catalog (SuiteSparse/SNAP surrogates),
//! * [`runner`] — measurement helpers (geometric means, table printing,
//!   argument parsing, JSON dumps).

pub mod runner;
pub mod suite;

pub use runner::{geomean, parse_args, print_table, Args};
pub use suite::{catalog, MatrixClass, SuiteEntry};
