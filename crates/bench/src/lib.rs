//! Benchmark harness for the SpArch reproduction.
//!
//! One binary per table/figure of the paper's evaluation section (see
//! DESIGN.md §4 for the full index), plus criterion micro-benches. This
//! library holds the shared pieces:
//!
//! * [`suite`] — the 20-benchmark catalog (SuiteSparse/SNAP surrogates),
//! * [`runner`] — measurement helpers (geometric means, table printing,
//!   argument parsing, JSON dumps) and the sharded sweep entry points
//!   ([`run_suite`], [`runner::runner`]) built on `sparch_exec`.
//!
//! Every binary honors `--threads N` (or the `SPARCH_THREADS`
//! environment variable) and produces bit-identical model-driven numbers
//! at any thread count. (The software-baseline columns of fig11/12/14
//! wall-clock the host, so they are measurement-noisy — and contended
//! when sharded; prefer `--threads 1` when those columns matter.)

pub mod runner;
pub mod suite;

pub use runner::{
    geomean, parse_args, parse_args_from, print_table, run_suite, Args, ArgsOutcome, USAGE,
};
pub use suite::{catalog, MatrixClass, SuiteEntry};
