//! Measurement and reporting helpers shared by the per-figure binaries.
//!
//! The sweep scaffolding the binaries used to copy-paste — the
//! `for entry in catalog() { … }` loop, progress lines, JSON dumps — now
//! lives here, on top of the `sparch_exec` sharded execution layer:
//! [`run_suite`] shards a per-matrix measurement across worker threads
//! and returns records in catalog order, bit-identical at any
//! `--threads` count.

use crate::suite::SuiteEntry;
use serde::Serialize;
use sparch_exec::{FnWorkload, ParallelRunner, ShardPool};
use sparch_sparse::Csr;
use std::path::PathBuf;

/// Command-line options common to all figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Linear scale applied to the suite matrices (default 0.04 keeps the
    /// whole suite tractable on a laptop; raise toward 1.0 for fidelity).
    pub scale: f64,
    /// Optional path to dump machine-readable JSON results.
    pub json: Option<PathBuf>,
    /// Free-form sub-selector (e.g. `--sweep buffer` for fig17).
    pub sweep: Option<String>,
    /// Worker threads (`--threads N`); `None` falls back to
    /// `SPARCH_THREADS`, then to all available cores.
    pub threads: Option<usize>,
    /// Whether `--scale` was given explicitly (binaries with their own
    /// pinned default, like `perf_snapshot`, key on this).
    pub scale_explicit: bool,
    /// Optional path for a Chrome trace-event export (`--trace PATH`);
    /// snapshot binaries that run a recorder-aware layer honor it.
    pub trace: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 0.04,
            json: None,
            sweep: None,
            threads: None,
            scale_explicit: false,
            trace: None,
        }
    }
}

/// The full usage text, printed on `--help` and on any argument error.
pub const USAGE: &str = "options:
  --scale X    surrogate scale in (0, 1] (default 0.04; perf_snapshot pins 0.02)
  --json PATH  dump machine-readable JSON results to PATH
  --sweep NAME sub-selector for multi-sweep binaries (e.g. fig17)
  --threads N  worker threads (default: SPARCH_THREADS, else all cores)
  --trace PATH dump a Chrome trace-event export (recorder-aware snapshots)
  --help, -h   print this message";

/// Successful outcomes of [`parse_args_from`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArgsOutcome {
    /// Every argument parsed.
    Parsed(Args),
    /// `--help` / `-h` was given; the caller should print [`USAGE`].
    Help,
}

/// Parses an argument list (without the program name) — a pure function
/// with no printing or process exit, so it is unit-testable end to end.
/// Returns the full usage text inside the error message on any malformed
/// or unknown argument, so binaries never die on a bare flag name.
pub fn parse_args_from<I>(args: I) -> Result<ArgsOutcome, String>
where
    I: IntoIterator<Item = String>,
{
    let mut parsed = Args::default();
    let mut it = args.into_iter();
    let missing = |flag: &str| format!("{flag} needs a value\n{USAGE}");
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                let v = it.next().ok_or_else(|| missing("--scale"))?;
                parsed.scale = v
                    .parse()
                    .map_err(|_| format!("--scale needs a number, got {v:?}\n{USAGE}"))?;
                if !(parsed.scale > 0.0 && parsed.scale <= 1.0) {
                    return Err(format!("--scale must be in (0, 1], got {v}\n{USAGE}"));
                }
                parsed.scale_explicit = true;
            }
            "--json" => {
                parsed.json = Some(PathBuf::from(it.next().ok_or_else(|| missing("--json"))?));
            }
            "--sweep" => {
                parsed.sweep = Some(it.next().ok_or_else(|| missing("--sweep"))?);
            }
            "--threads" => {
                let v = it.next().ok_or_else(|| missing("--threads"))?;
                let n: usize = v.parse().map_err(|_| {
                    format!("--threads needs a positive integer, got {v:?}\n{USAGE}")
                })?;
                if n == 0 {
                    return Err(format!("--threads must be at least 1\n{USAGE}"));
                }
                parsed.threads = Some(n);
            }
            "--trace" => {
                parsed.trace = Some(PathBuf::from(it.next().ok_or_else(|| missing("--trace"))?));
            }
            "--help" | "-h" => return Ok(ArgsOutcome::Help),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(ArgsOutcome::Parsed(parsed))
}

/// Parses `std::env::args`: prints the usage and exits 0 on `--help`,
/// prints the full usage and exits 2 on any malformed or unknown
/// argument.
pub fn parse_args() -> Args {
    match parse_args_from(std::env::args().skip(1)) {
        Ok(ArgsOutcome::Parsed(args)) => args,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// The sharded runner configured by `args` (`--threads`, then
/// `SPARCH_THREADS`, then all cores).
pub fn runner(args: &Args) -> ParallelRunner {
    ParallelRunner::new(ShardPool::with_override(args.threads))
}

/// Shards `f` over the suite entries: each worker builds its entry's
/// surrogate at `args.scale` and maps it to a record. Records come back
/// in `entries` order regardless of the thread count.
pub fn run_suite<R, F>(entries: &[SuiteEntry], args: &Args, f: F) -> Vec<R>
where
    R: Serialize + Send,
    F: Fn(&SuiteEntry, Csr) -> R + Sync,
{
    let f = &f;
    let scale = args.scale;
    let jobs: Vec<_> = entries
        .iter()
        .map(|&entry| {
            FnWorkload::new(
                entry.name,
                move || entry.build(scale),
                move |a| f(&entry, a),
            )
        })
        .collect();
    runner(args).run_all(&jobs)
}

/// Geometric mean, the paper's aggregate for speedups/savings.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                s.push_str(&format!("  {:>width$}", cell, width = widths[i]));
            }
        }
        s
    };
    println!("{}", line(headers.iter().map(|h| h.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Writes `value` as pretty JSON to `path` if given.
///
/// # Panics
///
/// Panics on serialization or I/O failure (benchmarks want loud errors).
pub fn dump_json<T: Serialize>(path: &Option<PathBuf>, value: &T) {
    if let Some(path) = path {
        let json = serde_json::to_string_pretty(value).expect("serialize results");
        std::fs::write(path, json).expect("write json results");
        eprintln!("results written to {}", path.display());
    }
}

/// Writes the Chrome trace-event export of `trace` to `path` if given.
///
/// # Panics
///
/// Panics on I/O failure (benchmarks want loud errors).
pub fn dump_trace(path: &Option<PathBuf>, trace: &sparch_obs::Trace) {
    if let Some(path) = path {
        std::fs::write(path, sparch_obs::chrome_trace_json(trace)).expect("write trace");
        eprintln!("trace written to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        match parse_args_from(args.iter().map(|s| s.to_string()))? {
            ArgsOutcome::Parsed(a) => Ok(a),
            ArgsOutcome::Help => panic!("unexpected --help outcome"),
        }
    }

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            &["matrix", "speedup"],
            &[
                vec!["wiki-Vote".into(), "3.96".into()],
                vec!["cit-Patents".into(), "3.93".into()],
            ],
        );
    }

    #[test]
    fn default_args() {
        let a = Args::default();
        assert!(a.scale > 0.0 && a.scale <= 1.0);
        assert!(a.json.is_none());
        assert!(a.threads.is_none());
    }

    #[test]
    fn parses_every_flag() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--json",
            "out.json",
            "--sweep",
            "line",
            "--threads",
            "8",
            "--trace",
            "trace.json",
        ])
        .unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.json, Some(PathBuf::from("out.json")));
        assert_eq!(a.sweep.as_deref(), Some("line"));
        assert_eq!(a.threads, Some(8));
        assert!(a.scale_explicit);
        assert_eq!(a.trace, Some(PathBuf::from("trace.json")));
    }

    #[test]
    fn help_is_a_value_not_an_exit() {
        let outcome = parse_args_from(["--help".to_string()]).unwrap();
        assert_eq!(outcome, ArgsOutcome::Help);
        let outcome = parse_args_from(["-h".to_string()]).unwrap();
        assert_eq!(outcome, ArgsOutcome::Help);
    }

    #[test]
    fn scale_as_a_value_is_not_explicit_scale() {
        // "--scale" appearing as another flag's value must not count as
        // an explicit scale setting.
        let a = parse(&["--sweep", "--scale"]).unwrap();
        assert_eq!(a.sweep.as_deref(), Some("--scale"));
        assert!(!a.scale_explicit);
    }

    #[test]
    fn empty_args_are_defaults() {
        assert_eq!(parse(&[]).unwrap(), Args::default());
    }

    #[test]
    fn unknown_flag_reports_full_usage() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("unknown argument \"--bogus\""), "{err}");
        assert!(err.contains("--threads N"), "full usage missing: {err}");
        assert!(err.contains("--scale X"), "full usage missing: {err}");
    }

    #[test]
    fn missing_value_reports_full_usage() {
        let err = parse(&["--threads"]).unwrap_err();
        assert!(err.contains("--threads needs a value"), "{err}");
        assert!(err.contains("options:"), "{err}");
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale", "1.5"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "-2"]).is_err());
    }

    #[test]
    fn run_suite_preserves_catalog_order() {
        let entries: Vec<SuiteEntry> = crate::suite::catalog().into_iter().take(3).collect();
        let args = Args {
            scale: 0.001,
            threads: Some(2),
            ..Args::default()
        };
        let names = run_suite(&entries, &args, |e, a| {
            assert!(a.rows() >= 512);
            e.name.to_string()
        });
        let expected: Vec<String> = entries.iter().map(|e| e.name.to_string()).collect();
        assert_eq!(names, expected);
    }
}
