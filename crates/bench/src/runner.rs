//! Measurement and reporting helpers shared by the per-figure binaries.

use serde::Serialize;
use std::path::PathBuf;

/// Command-line options common to all figure binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Linear scale applied to the suite matrices (default 0.04 keeps the
    /// whole suite tractable on a laptop; raise toward 1.0 for fidelity).
    pub scale: f64,
    /// Optional path to dump machine-readable JSON results.
    pub json: Option<PathBuf>,
    /// Free-form sub-selector (e.g. `--sweep buffer` for fig17).
    pub sweep: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 0.04,
            json: None,
            sweep: None,
        }
    }
}

/// Parses `--scale X`, `--json PATH` and `--sweep NAME` from `std::env`.
///
/// # Panics
///
/// Panics with a usage message on malformed arguments.
pub fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                args.scale = v.parse().expect("--scale needs a number");
                assert!(
                    args.scale > 0.0 && args.scale <= 1.0,
                    "--scale must be in (0, 1]"
                );
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().expect("--json needs a path")));
            }
            "--sweep" => {
                args.sweep = Some(it.next().expect("--sweep needs a name"));
            }
            "--help" | "-h" => {
                println!("options: --scale <0..1]  --json <path>  --sweep <name>");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?} (try --help)"),
        }
    }
    args
}

/// Geometric mean, the paper's aggregate for speedups/savings.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                s.push_str(&format!("  {:>width$}", cell, width = widths[i]));
            }
        }
        s
    };
    println!("{}", line(headers.iter().map(|h| h.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Writes `value` as pretty JSON to `path` if given.
///
/// # Panics
///
/// Panics on serialization or I/O failure (benchmarks want loud errors).
pub fn dump_json<T: Serialize>(path: &Option<PathBuf>, value: &T) {
    if let Some(path) = path {
        let json = serde_json::to_string_pretty(value).expect("serialize results");
        std::fs::write(path, json).expect("write json results");
        eprintln!("results written to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            &["matrix", "speedup"],
            &[
                vec!["wiki-Vote".into(), "3.96".into()],
                vec!["cit-Patents".into(), "3.93".into()],
            ],
        );
    }

    #[test]
    fn default_args() {
        let a = Args::default();
        assert!(a.scale > 0.0 && a.scale <= 1.0);
        assert!(a.json.is_none());
    }
}
