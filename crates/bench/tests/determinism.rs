//! The determinism guard: sharded sweep output is bit-identical no
//! matter how many worker threads run it.
//!
//! Only model-driven metrics are compared (cycles, traffic, result
//! sizes, GFLOPS from the simulator's own cost model); the software
//! baselines wall-clock the host and are inherently noisy.

use sparch_bench::{catalog, run_suite, Args, SuiteEntry};
use sparch_core::{SpArchConfig, SpArchSim};

/// A small, fast suite subset (the smallest published shapes).
fn subset() -> Vec<SuiteEntry> {
    let names = ["facebook", "wiki-Vote", "p2p-Gnutella31", "ca-CondMat"];
    let picked: Vec<SuiteEntry> = catalog()
        .into_iter()
        .filter(|e| names.contains(&e.name))
        .collect();
    assert_eq!(picked.len(), names.len());
    picked
}

/// Runs the subset on `threads` workers and serializes every
/// model-driven metric to JSON.
fn sweep_json(threads: usize) -> String {
    let args = Args {
        scale: 0.002,
        threads: Some(threads),
        ..Args::default()
    };
    let rows = run_suite(&subset(), &args, |entry, a| {
        let r = SpArchSim::new(SpArchConfig::default().with_tree_layers(3)).run(&a, &a);
        (
            entry.name.to_string(),
            r.perf.cycles,
            r.perf.gflops,
            (r.perf.output_nnz, r.traffic.total_bytes()),
            r.prefetch.line_misses,
        )
    });
    serde_json::to_string_pretty(&rows).expect("serialize sweep rows")
}

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let t1 = sweep_json(1);
    let t2 = sweep_json(2);
    let t8 = sweep_json(8);
    assert_eq!(t1, t2, "1 vs 2 threads");
    assert_eq!(t1, t8, "1 vs 8 threads");
    // Sanity: the records actually carry signal.
    assert!(t1.contains("facebook") && t1.len() > 100);
}
