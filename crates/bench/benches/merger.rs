//! Criterion micro-benches for the merge hardware models: flat vs
//! hierarchical comparator mergers and the full merge tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparch_engine::{ComparatorMerger, HierarchicalMerger, MergeItem, MergeTree, MergeTreeConfig};

fn stream(n: usize, offset: u64, stride: u64) -> Vec<MergeItem> {
    (0..n as u64)
        .map(|i| MergeItem {
            coord: offset + i * stride,
            value: 1.0,
        })
        .collect()
}

fn bench_binary_mergers(c: &mut Criterion) {
    let a = stream(8192, 0, 2);
    let b = stream(8192, 1, 2);
    let mut group = c.benchmark_group("binary_merger");
    group.throughput(Throughput::Elements(16384));
    for width in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("flat", width), &width, |bench, &w| {
            bench.iter(|| ComparatorMerger::new(w).merge(&a, &b))
        });
        group.bench_with_input(
            BenchmarkId::new("hierarchical", width),
            &width,
            |bench, &w| {
                let chunk = if w >= 16 { 4 } else { 2 };
                bench.iter(|| HierarchicalMerger::new(w, chunk).merge(&a, &b))
            },
        );
    }
    group.finish();
}

fn bench_merge_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_tree");
    for layers in [2usize, 4, 6] {
        let ways = 1usize << layers;
        let inputs: Vec<Vec<MergeItem>> = (0..ways)
            .map(|k| stream(2048, k as u64, ways as u64))
            .collect();
        group.throughput(Throughput::Elements((2048 * ways) as u64));
        group.bench_with_input(
            BenchmarkId::new("layers", layers),
            &inputs,
            |bench, inputs| {
                let tree = MergeTree::new(MergeTreeConfig {
                    layers,
                    ..Default::default()
                });
                bench.iter(|| tree.merge(inputs.clone()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_binary_mergers, bench_merge_tree);
criterion_main!(benches);
