//! Criterion micro-benches for the Huffman scheduler and the
//! windowed-Bélády prefetch buffer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparch_core::prefetch::{PrefetchConfig, RowPrefetcher};
use sparch_core::{MergePlan, SchedulerKind};
use sparch_sparse::gen;

fn bench_schedulers(c: &mut Criterion) {
    let weights: Vec<u64> = (0..2000).map(|i| (i * 7919 + 13) % 5000 + 1).collect();
    let mut group = c.benchmark_group("scheduler_2000_leaves");
    for kind in [
        SchedulerKind::Huffman,
        SchedulerKind::Sequential,
        SchedulerKind::Random(3),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| b.iter(|| MergePlan::build(kind, &weights, 64)),
        );
    }
    group.finish();
}

fn bench_prefetcher(c: &mut Criterion) {
    let b = gen::rmat_graph500(8192, 8, 5);
    let a = gen::rmat_graph500(8192, 8, 6);
    let mut accesses = Vec::new();
    for r in 0..a.rows() {
        let (cols, _) = a.row(r);
        accesses.extend(cols.iter().copied());
    }
    let mut group = c.benchmark_group("belady_buffer");
    group.throughput(Throughput::Elements(accesses.len() as u64));
    group.sample_size(10);
    for lookahead in [1024usize, 8192] {
        group.bench_with_input(
            BenchmarkId::from_parameter(lookahead),
            &lookahead,
            |bench, &lookahead| {
                let cfg = PrefetchConfig {
                    lookahead,
                    ..Default::default()
                };
                bench.iter(|| {
                    let mut p = RowPrefetcher::new(&b, &cfg, accesses.clone());
                    p.run_to_end()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_prefetcher);
criterion_main!(benches);
