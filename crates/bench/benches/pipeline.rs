//! Criterion end-to-end benches of the SpArch simulator and the
//! OuterSPACE model on small suite surrogates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparch_baselines::OuterSpaceModel;
use sparch_bench::catalog;
use sparch_core::{SpArchConfig, SpArchSim};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparch_sim");
    group.sample_size(10);
    for entry in catalog().into_iter().take(4) {
        let a = entry.build(0.01);
        group.bench_with_input(BenchmarkId::from_parameter(entry.name), &a, |b, a| {
            let sim = SpArchSim::new(SpArchConfig::default());
            b.iter(|| sim.run(a, a))
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let a = catalog()[0].build(0.01);
    let mut group = c.benchmark_group("sparch_ablation");
    group.sample_size(10);
    for (name, config) in SpArchConfig::ablation_ladder() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            let sim = SpArchSim::new(config.clone());
            b.iter(|| sim.run(&a, &a))
        });
    }
    group.bench_function("outerspace_model", |b| {
        let model = OuterSpaceModel::default();
        b.iter(|| model.run(&a, &a))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_ablations);
criterion_main!(benches);
