//! Criterion micro-benches for the software SpGEMM algorithm classes —
//! the kernels behind the paper's MKL / cuSPARSE / CUSP / HeapSpGEMM
//! baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparch_sparse::{algo, gen};

fn bench_algorithms(c: &mut Criterion) {
    let a = gen::rmat_graph500(4096, 8, 1);
    let flops = 2 * algo::multiply_flops(&a, &a);
    let mut group = c.benchmark_group("spgemm_rmat4k_x8");
    group.throughput(Throughput::Elements(flops));
    group.sample_size(10);
    group.bench_function("gustavson (MKL class)", |b| {
        b.iter(|| algo::gustavson(&a, &a))
    });
    group.bench_function("hash (cuSPARSE class)", |b| {
        b.iter(|| algo::hash_spgemm(&a, &a))
    });
    group.bench_function("sort_merge (CUSP class)", |b| {
        b.iter(|| algo::sort_merge(&a, &a))
    });
    group.bench_function("heap (HeapSpGEMM class)", |b| {
        b.iter(|| algo::heap_spgemm(&a, &a))
    });
    group.bench_function("outer_product (OuterSPACE dataflow)", |b| {
        b.iter(|| algo::outer_product(&a, &a))
    });
    group.finish();
}

fn bench_density_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("gustavson_density");
    group.sample_size(10);
    for degree in [4usize, 16, 32] {
        let a = gen::rmat_graph500(2048, degree, 2);
        group.throughput(Throughput::Elements(2 * algo::multiply_flops(&a, &a)));
        group.bench_with_input(BenchmarkId::from_parameter(degree), &a, |b, a| {
            b.iter(|| algo::gustavson(a, a))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_density_sweep);
criterion_main!(benches);
