//! The [`Workload`] contract and the [`ParallelRunner`] that shards
//! workloads over a [`ShardPool`](crate::ShardPool).

use crate::pool::ShardPool;
use serde::Serialize;
use std::marker::PhantomData;
use std::time::Instant;

/// One independent unit of an evaluation sweep.
///
/// A workload names itself (for progress and reporting), builds its own
/// inputs (so the expensive surrogate-matrix generation also runs on the
/// worker, off the submitting thread), and runs to a serializable record.
/// `build` and `run` must be pure functions of `self` — that is what
/// makes a sharded sweep's output independent of the worker count.
pub trait Workload: Sync {
    /// What `build` produces and `run` consumes (e.g. a matrix).
    type Input: Send;
    /// The serializable result record.
    type Record: Serialize + Send;

    /// Display name, used for progress lines and timing records.
    fn name(&self) -> String;

    /// Materializes the workload's inputs.
    fn build(&self) -> Self::Input;

    /// Runs the workload to its record.
    fn run(&self, input: Self::Input) -> Self::Record;
}

/// A [`Workload`] assembled from two closures — the way the figure
/// binaries define their sweeps without a bespoke struct each.
///
/// # Example
///
/// ```
/// use sparch_exec::{FnWorkload, ParallelRunner, ShardPool, Workload};
///
/// let jobs: Vec<_> = (0..4u64)
///     .map(|n| FnWorkload::new(format!("job-{n}"), move || n, |n| n * n))
///     .collect();
/// let squares = ParallelRunner::new(ShardPool::new(2)).quiet().run_all(&jobs);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
pub struct FnWorkload<I, R, B, F>
where
    B: Fn() -> I + Sync,
    F: Fn(I) -> R + Sync,
{
    name: String,
    build: B,
    run: F,
    _marker: PhantomData<fn() -> (I, R)>,
}

impl<I, R, B, F> FnWorkload<I, R, B, F>
where
    B: Fn() -> I + Sync,
    F: Fn(I) -> R + Sync,
{
    /// A workload called `name` that runs `run(build())`.
    pub fn new(name: impl Into<String>, build: B, run: F) -> Self {
        FnWorkload {
            name: name.into(),
            build,
            run,
            _marker: PhantomData,
        }
    }
}

impl<I, R, B, F> Workload for FnWorkload<I, R, B, F>
where
    I: Send,
    R: Serialize + Send,
    B: Fn() -> I + Sync,
    F: Fn(I) -> R + Sync,
{
    type Input = I;
    type Record = R;

    fn name(&self) -> String {
        self.name.clone()
    }

    fn build(&self) -> I {
        (self.build)()
    }

    fn run(&self, input: I) -> R {
        (self.run)(input)
    }
}

/// A workload record paired with its wall-clock measurement.
#[derive(Debug, Clone)]
pub struct Timed<R> {
    /// The workload's name.
    pub name: String,
    /// Wall-clock seconds for `build`.
    pub build_seconds: f64,
    /// Wall-clock seconds for `run`.
    pub run_seconds: f64,
    /// The workload's record.
    pub record: R,
}

// Hand-written: the vendored serde derive does not support generics.
impl<R: Serialize> Serialize for Timed<R> {
    fn to_json(&self) -> serde::Json {
        serde::Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("build_seconds".into(), self.build_seconds.to_json()),
            ("run_seconds".into(), self.run_seconds.to_json()),
            ("record".into(), self.record.to_json()),
        ])
    }
}

/// Shards a batch of [`Workload`]s across a [`ShardPool`], returning the
/// records in submission order regardless of the worker count.
///
/// This replaces the figure binaries' copy-pasted
/// `for entry in catalog() { … eprintln!("done {}") }` loops: progress
/// still goes to stderr (suppress with [`ParallelRunner::quiet`]), the
/// records come back in catalog order, and the sweep uses every core the
/// pool has.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    pool: ShardPool,
    progress: bool,
}

impl ParallelRunner {
    /// A runner over `pool`, with progress lines on stderr.
    pub fn new(pool: ShardPool) -> Self {
        ParallelRunner {
            pool,
            progress: true,
        }
    }

    /// Suppresses the per-workload `done <name>` progress lines.
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// The underlying worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Runs every workload, returning records in submission order.
    pub fn run_all<W: Workload>(&self, workloads: &[W]) -> Vec<W::Record> {
        self.pool.scoped_map(workloads, |_, w| {
            let record = w.run(w.build());
            if self.progress {
                eprintln!("done {}", w.name());
            }
            record
        })
    }

    /// Runs every workload, timing each `build` and `run` on its worker.
    /// Records come back in submission order.
    pub fn run_all_timed<W: Workload>(&self, workloads: &[W]) -> Vec<Timed<W::Record>> {
        self.pool.scoped_map(workloads, |_, w| {
            let t0 = Instant::now();
            let input = w.build();
            let t1 = Instant::now();
            let record = w.run(input);
            let t2 = Instant::now();
            if self.progress {
                eprintln!("done {}", w.name());
            }
            Timed {
                name: w.name(),
                build_seconds: (t1 - t0).as_secs_f64(),
                run_seconds: (t2 - t1).as_secs_f64(),
                record,
            }
        })
    }
}

impl Default for ParallelRunner {
    fn default() -> Self {
        ParallelRunner::new(ShardPool::from_env())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler(u64);

    impl Workload for Doubler {
        type Input = u64;
        type Record = u64;

        fn name(&self) -> String {
            format!("double-{}", self.0)
        }

        fn build(&self) -> u64 {
            self.0
        }

        fn run(&self, input: u64) -> u64 {
            input * 2
        }
    }

    #[test]
    fn trait_workloads_run_in_order() {
        let jobs: Vec<Doubler> = (0..20).map(Doubler).collect();
        for threads in [1, 2, 8] {
            let out = ParallelRunner::new(ShardPool::new(threads))
                .quiet()
                .run_all(&jobs);
            assert_eq!(out, (0..20).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn timed_records_carry_names_and_times() {
        let jobs: Vec<Doubler> = (0..3).map(Doubler).collect();
        let out = ParallelRunner::new(ShardPool::new(2))
            .quiet()
            .run_all_timed(&jobs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].name, "double-1");
        assert_eq!(out[1].record, 2);
        assert!(out
            .iter()
            .all(|t| t.build_seconds >= 0.0 && t.run_seconds >= 0.0));
    }

    #[test]
    fn fn_workloads_capture_environment() {
        let scale = 3u64;
        let jobs: Vec<_> = (0..4u64)
            .map(|n| FnWorkload::new(format!("n{n}"), move || n, move |n| n * scale))
            .collect();
        let out = ParallelRunner::new(ShardPool::new(4))
            .quiet()
            .run_all(&jobs);
        assert_eq!(out, vec![0, 3, 6, 9]);
    }
}
