//! The scoped worker pool.
//!
//! Std-only by design: the build environment is offline, so no rayon /
//! crossbeam — `std::thread::scope` gives us borrowing workers, an atomic
//! cursor gives us dynamic load balancing, and indexed result slots give
//! us submission-ordered output no matter which worker finishes first.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "SPARCH_THREADS";

/// A fixed-width pool of scoped worker threads.
///
/// `ShardPool` shards a list of independent items across its workers and
/// returns the results **in submission order**, so output is bit-identical
/// regardless of the worker count (the determinism guard in
/// `crates/bench/tests/determinism.rs` pins this end to end).
///
/// # Example
///
/// ```
/// use sparch_exec::ShardPool;
///
/// let squares = ShardPool::new(4).scoped_map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPool {
    threads: usize,
}

impl ShardPool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ShardPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized from the environment: `SPARCH_THREADS` if set to a
    /// positive integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        ShardPool::new(env_threads().unwrap_or_else(available_parallelism))
    }

    /// A pool honoring an explicit override (e.g. a `--threads N` flag):
    /// `Some(n)` wins over the environment, `None` falls back to
    /// [`ShardPool::from_env`].
    pub fn with_override(threads: Option<usize>) -> Self {
        match threads {
            Some(n) => ShardPool::new(n),
            None => ShardPool::from_env(),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs exactly `threads` scoped workers, each executing
    /// `f(worker_index)` to completion, and blocks until all of them
    /// return. Unlike [`ShardPool::scoped_map`], the work arrives however
    /// `f` wants it to — the streaming pipeline's multiply stage drives
    /// this with workers that pull panel pairs from a bounded channel
    /// until the producing stage closes it.
    ///
    /// With one thread, `f(0)` runs on the calling thread (no spawn).
    ///
    /// # Panics
    ///
    /// Propagates a panic raised inside any worker.
    pub fn scoped_workers<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            f(0);
            return;
        }
        std::thread::scope(|scope| {
            for w in 0..self.threads {
                let f = &f;
                scope.spawn(move || f(w));
            }
        });
    }

    /// Applies `f` to every item (receiving `(index, &item)`), sharding
    /// across the pool's workers, and returns the results in submission
    /// order.
    ///
    /// Items are claimed dynamically (an atomic cursor), so a few slow
    /// items don't idle the rest of the pool. When the batch is much
    /// larger than the pool — the serving layer fans out thousands of
    /// small requests — workers claim short contiguous *runs* of indices
    /// per atomic operation instead of one, amortizing cursor contention;
    /// results are still written to per-index slots, so the output stays
    /// submission-ordered and thread-count-invariant. `f` must be pure
    /// with respect to the item for that invariance to hold — which every
    /// [`crate::Workload`] is by contract.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`.
    pub fn scoped_map<I, R, F>(&self, items: &[I], f: F) -> Vec<R>
    where
        I: Sync,
        R: Send,
        F: Fn(usize, &I) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        // Claim-run length: 1 while the batch is small (best balance for
        // a handful of slow sweeps), growing once there are ≥16 items per
        // worker so huge batches of cheap items don't serialize on the
        // cursor's cache line. Capped so stragglers can't strand work.
        let chunk = (items.len() / (workers * 16)).clamp(1, 64);
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    for (i, item) in items.iter().enumerate().take(start + chunk).skip(start) {
                        let result = f(i, item);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }
}

impl Default for ShardPool {
    fn default() -> Self {
        ShardPool::from_env()
    }
}

/// A counting permit gate — the std-only stand-in for a semaphore.
///
/// Producer stages acquire a permit before publishing a result into an
/// unbounded queue and the consumer releases it when the result is
/// consumed, which restores the backpressure a bounded channel would
/// have provided while leaving the queue itself select-free: the
/// streaming pipeline funnels several producer kinds into one event
/// channel and bounds each producer with its own `Permits`.
#[derive(Debug)]
pub struct Permits {
    state: Mutex<usize>,
    cv: Condvar,
}

impl Permits {
    /// A gate holding `n` permits.
    pub fn new(n: usize) -> Self {
        Permits {
            state: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a permit is free, then takes it.
    pub fn acquire(&self) {
        let mut available = self.state.lock().expect("permit gate poisoned");
        while *available == 0 {
            available = self.cv.wait(available).expect("permit gate poisoned");
        }
        *available -= 1;
    }

    /// Returns a permit, waking one waiting producer.
    pub fn release(&self) {
        *self.state.lock().expect("permit gate poisoned") += 1;
        self.cv.notify_one();
    }
}

/// Parses `SPARCH_THREADS`; `None` if unset, empty, zero or malformed.
pub fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_submission_ordered() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = ShardPool::new(threads).scoped_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 10
            });
            assert_eq!(
                out,
                (0..100).map(|x| x * 10).collect::<Vec<_>>(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make early items the slowest so completion order inverts
        // submission order under any real parallelism.
        let items: Vec<u64> = (0..16).collect();
        let out = ShardPool::new(8).scoped_map(&items, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 4 * x));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn chunked_claiming_covers_large_batches_in_order() {
        // Batches big enough to trigger multi-item claim runs (> 16 items
        // per worker) must still produce submission-ordered, complete
        // output at any worker count.
        for (len, threads) in [(1000, 2), (1000, 8), (4097, 3), (130, 4)] {
            let items: Vec<usize> = (0..len).collect();
            let out = ShardPool::new(threads).scoped_map(&items, |i, &x| {
                assert_eq!(i, x);
                x + 1
            });
            assert_eq!(
                out,
                (1..=len).collect::<Vec<_>>(),
                "len {len} threads {threads}"
            );
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ShardPool::new(0).threads(), 1);
    }

    #[test]
    fn scoped_workers_run_once_each_and_share_a_queue() {
        use std::sync::atomic::AtomicUsize;
        for threads in [1, 2, 5] {
            let pool = ShardPool::new(threads);
            let started = AtomicUsize::new(0);
            let cursor = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            pool.scoped_workers(|w| {
                assert!(w < threads);
                started.fetch_add(1, Ordering::Relaxed);
                // Channel-style consumption: claim items until exhausted.
                while cursor.fetch_add(1, Ordering::Relaxed) < 40 {
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(started.load(Ordering::Relaxed), threads);
            assert_eq!(done.load(Ordering::Relaxed), 40, "threads {threads}");
        }
    }

    #[test]
    fn scoped_workers_borrow_caller_state() {
        let data = [1u64, 2, 3];
        let sum = std::sync::Mutex::new(0u64);
        ShardPool::new(3).scoped_workers(|w| {
            *sum.lock().unwrap() += data[w];
        });
        assert_eq!(*sum.lock().unwrap(), 6);
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<u32> = ShardPool::new(4).scoped_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_override_beats_environment() {
        assert_eq!(ShardPool::with_override(Some(3)).threads(), 3);
        assert!(ShardPool::with_override(None).threads() >= 1);
    }

    #[test]
    fn permits_bound_outstanding_work() {
        // With 2 permits and 4 producers, at most 2 unconsumed items can
        // exist at any instant; every item still flows through.
        let gate = Permits::new(2);
        let outstanding = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10 {
                        gate.acquire();
                        let now = outstanding.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                    }
                });
            }
            scope.spawn(|| {
                while consumed.load(Ordering::SeqCst) < 40 {
                    if outstanding
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                        .is_ok()
                    {
                        consumed.fetch_add(1, Ordering::SeqCst);
                        gate.release();
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert_eq!(consumed.load(Ordering::SeqCst), 40);
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate over-admitted");
    }

    #[test]
    fn borrows_captured_state() {
        // The scoped pool must let `f` borrow from the caller's stack.
        let offset = 7u64;
        let items = [1u64, 2, 3];
        let out = ShardPool::new(2).scoped_map(&items, |_, &x| x + offset);
        assert_eq!(out, vec![8, 9, 10]);
    }
}
