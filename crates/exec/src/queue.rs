//! The worker-side job-claiming protocol shared by pool stages.
//!
//! Every place [`ShardPool::scoped_workers`](crate::ShardPool) workers
//! pull jobs from a channel follows the same discipline: the receiver
//! lives behind a mutex so any worker can claim the next job, the lock is
//! held only for the claim (claiming serializes, compute parallelizes),
//! and the owner can *close* the queue — dropping the receiver so a
//! blocked producer unblocks — even while workers still hold claims.
//! The streaming pipeline's multiply and merge stages and the
//! distributed shard worker all speak this protocol; this type is the
//! one implementation of it.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

/// A multi-worker job queue over one `mpsc::Receiver`.
///
/// Cheap to share by reference into scoped worker closures. [`claim`]
/// blocks until a job arrives and returns `None` once the queue is
/// closed — either the sender hung up or [`close`] dropped the receiver.
///
/// [`claim`]: SharedQueue::claim
/// [`close`]: SharedQueue::close
#[derive(Debug)]
pub struct SharedQueue<T> {
    rx: Mutex<Option<Receiver<T>>>,
}

impl<T> SharedQueue<T> {
    /// Wraps a receiver for shared claiming.
    pub fn new(rx: Receiver<T>) -> Self {
        SharedQueue {
            rx: Mutex::new(Some(rx)),
        }
    }

    /// Claims the next job, blocking while the queue is open but empty.
    /// Returns `None` when no job can ever arrive: every sender is gone
    /// or the queue was closed. A poisoning panic in another claimant
    /// does not wedge the queue — the claim proceeds on the inner value.
    pub fn claim(&self) -> Option<T> {
        let guard = self.rx.lock().unwrap_or_else(|e| e.into_inner());
        guard.as_ref()?.recv().ok()
    }

    /// Drops the receiver, unblocking any producer mid-send and making
    /// every subsequent [`claim`](SharedQueue::claim) return `None`.
    /// Idempotent. Call it once the stage's claimants have exited (the
    /// pipeline pattern: close after the worker scope joins) — a
    /// claimant parked inside [`claim`](SharedQueue::claim) holds the
    /// claim lock, so closing under it would wait for that claim to
    /// resolve first.
    pub fn close(&self) {
        drop(self.rx.lock().unwrap_or_else(|e| e.into_inner()).take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardPool;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn workers_drain_the_queue_exactly_once_each() {
        let (tx, rx) = channel();
        for n in 0..100u64 {
            tx.send(n).unwrap();
        }
        drop(tx);
        let queue = SharedQueue::new(rx);
        let sum = AtomicU64::new(0);
        let claims = AtomicU64::new(0);
        ShardPool::new(4).scoped_workers(|_| {
            while let Some(n) = queue.claim() {
                sum.fetch_add(n, Ordering::Relaxed);
                claims.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(claims.load(Ordering::Relaxed), 100);
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn close_unblocks_a_blocked_producer() {
        let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(1);
        let queue = SharedQueue::new(rx);
        std::thread::scope(|scope| {
            let producer = scope.spawn(move || {
                tx.send(1).unwrap(); // fills the bound
                tx.send(2) // blocks until the close disconnects it
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            queue.close();
            assert!(
                producer.join().unwrap().is_err(),
                "close must disconnect a producer parked mid-send"
            );
        });
        // After close, claims return None forever.
        assert_eq!(queue.claim(), None);
        queue.close(); // idempotent
    }

    #[test]
    fn claimants_drain_then_observe_sender_hangup() {
        let (tx, rx) = channel::<u64>();
        tx.send(7).unwrap();
        let queue = SharedQueue::new(rx);
        assert_eq!(queue.claim(), Some(7));
        drop(tx);
        assert_eq!(queue.claim(), None);
    }
}
