//! Parallel sharded execution for the SpArch reproduction.
//!
//! The paper's evaluation is embarrassingly parallel: 20 suite matrices ×
//! ablations × design-space points, every simulation independent of the
//! rest. This crate is the execution layer that turns those sweeps into
//! sharded multi-core runs with **deterministic, submission-ordered
//! results** — the figure binaries produce bit-identical numbers at
//! `--threads 1` and `--threads 8`.
//!
//! Four pieces:
//!
//! * [`ShardPool`] — a std-only scoped worker pool (the build environment
//!   is offline, so no rayon): dynamic work claiming over an atomic
//!   cursor, results returned by submission index,
//! * [`SharedQueue`] — the worker-side job-claiming protocol for pools
//!   fed by a channel (the streaming pipeline's stages and the
//!   distributed shard worker both speak it),
//! * [`Workload`] — the unit of a sweep: a name, a `build` producing the
//!   inputs on the worker, and a pure `run` to a serializable record
//!   ([`FnWorkload`] assembles one from closures),
//! * [`ParallelRunner`] — shards a batch of workloads over a pool, with
//!   per-workload progress and optional wall-clock timing ([`Timed`]).
//!
//! Worker counts come from (in priority order) an explicit override such
//! as a `--threads N` flag, the `SPARCH_THREADS` environment variable,
//! then the machine's available parallelism.
//!
//! # Example
//!
//! ```
//! use sparch_exec::{FnWorkload, ParallelRunner, ShardPool};
//!
//! let sweep: Vec<_> = (1u64..=5)
//!     .map(|n| FnWorkload::new(format!("point-{n}"), move || n, |n| n * n))
//!     .collect();
//! let records = ParallelRunner::new(ShardPool::with_override(Some(2)))
//!     .quiet()
//!     .run_all(&sweep);
//! assert_eq!(records, vec![1, 4, 9, 16, 25]);
//! ```

pub mod pool;
pub mod queue;
pub mod workload;

pub use pool::{env_threads, Permits, ShardPool, THREADS_ENV};
pub use queue::SharedQueue;
pub use workload::{FnWorkload, ParallelRunner, Timed, Workload};
